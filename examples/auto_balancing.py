"""Scheduler-initiated migration (§III-A's "easily extended" outlook).

The paper's migrations are explicit calls; this example runs the
:class:`LoadBalancer` extension as a daemon that notices all the work
piled onto one node and spreads it across the rack — threads only opt in
by calling ``ctx.checkpoint()`` at their loop heads.

Run:  python examples/auto_balancing.py
"""

from repro import DexCluster
from repro.core import LoadBalancer


def run(balanced: bool):
    cluster = DexCluster(num_nodes=4)
    proc = cluster.create_process()
    gate = cluster.engine.event()

    def worker(ctx, idx):
        # a naive launcher sent every thread to node 1
        yield from ctx.migrate(1)
        yield gate
        for _ in range(60):
            yield from ctx.compute(cpu_us=120.0)
            yield from ctx.checkpoint()  # safe point for auto-migration
        node = ctx.node
        yield from ctx.migrate_back()
        return node

    threads = [proc.spawn_thread(worker, i) for i in range(16)]
    balancer = LoadBalancer(proc)
    if balanced:
        cluster.engine.process(
            balancer.run(interval_us=2_000.0, until=1_000_000.0)
        )

    def main(ctx):
        yield ctx.engine.timeout(10_000.0)  # everyone parked on node 1
        start = ctx.now
        gate.succeed()
        nodes = yield from proc.join_all(threads)
        return ctx.now - start, nodes

    elapsed, nodes = cluster.simulate(main, proc)
    return elapsed, nodes, balancer.rebalances


def main():
    piled_time, piled_nodes, _ = run(balanced=False)
    print(f"without balancer: {piled_time / 1000:7.2f} ms  "
          f"(threads finished on nodes {sorted(set(piled_nodes))})")
    spread_time, spread_nodes, rebalances = run(balanced=True)
    print(f"with balancer:    {spread_time / 1000:7.2f} ms  "
          f"(threads finished on nodes {sorted(set(spread_nodes))}, "
          f"{rebalances} rebalance rounds)")
    print(f"\nspeedup from automatic migration: "
          f"{piled_time / spread_time:.1f}x — 16 threads on one 8-core node "
          "were oversubscribed 2:1; the daemon noticed and spread them.")
    assert spread_time < piled_time
    assert len(set(spread_nodes)) > 1


if __name__ == "__main__":
    main()
