"""Quickstart: distribute a process's threads over a simulated rack.

Demonstrates the core DeX promise: threads of one process migrate to other
machines with a single call, keep accessing the same address space through
plain reads/writes, and synchronize with ordinary mutexes — no distributed
programming model anywhere.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DexCluster
from repro.runtime import MemoryAllocator, Mutex
from repro.runtime.array import alloc_array


def main():
    cluster = DexCluster(num_nodes=4)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)

    # one shared array and one shared counter, like any threaded program
    results = alloc_array(alloc, np.float64, 4, name="results",
                          page_aligned=True)
    counter_addr = alloc.alloc_global(8, tag="counter")
    lock = Mutex(alloc, name="lock")

    def worker(ctx, node):
        # ---- the one added line: relocate this thread to another machine
        yield from ctx.migrate(node)

        # compute with the remote node's CPU...
        yield from ctx.compute(cpu_us=500.0)

        # ...write results through the SAME shared memory...
        yield from results.set(ctx, node, node * 1.5, site="worker:result")

        # ...and use ordinary synchronization, regardless of location
        yield from lock.lock(ctx)
        yield from ctx.atomic_add_i64(counter_addr, 1)
        yield from lock.unlock(ctx)

        # ---- and the second added line: come home
        yield from ctx.migrate_back()
        return node

    threads = [proc.spawn_thread(worker, n) for n in range(4)]

    def coordinator(ctx):
        finished = yield from proc.join_all(threads)
        values = yield from results.read(ctx)
        count = yield from ctx.read_i64(counter_addr)
        return finished, values, count

    finished, values, count = cluster.simulate(coordinator, proc)

    print(f"threads finished: {finished}")
    print(f"shared results:   {values}")
    print(f"shared counter:   {count}")
    print(f"simulated time:   {cluster.now:.1f} us")
    stats = proc.stats
    print(f"migrations: {len(stats.migrations)}, "
          f"page faults: {stats.total_faults}, "
          f"pages moved: {stats.pages_transferred}")
    assert count == 4 and list(values) == [0.0, 1.5, 3.0, 4.5]
    print("OK")


if __name__ == "__main__":
    main()
