"""The §IV workflow: profile page faults, find false sharing, fix it.

A deliberately bad multi-threaded histogram: every thread's partial
counters live on ONE page (bump-allocated together), so on DeX the page
ping-pongs between all nodes.  We:

1. run it with the fault tracer attached,
2. let the trace analysis point at the guilty page and call sites,
3. apply the paper's fix — page-aligned per-thread counters with local
   staging — and measure the difference.

Run:  python examples/profile_and_optimize.py
"""

import numpy as np

from repro import DexCluster
from repro.runtime import Barrier, MemoryAllocator
from repro.runtime.array import alloc_array
from repro.tools import FaultTracer, TraceAnalysis

NODES = 4
THREADS = 16
ITEMS_PER_THREAD = 150
BINS = 8


def run_variant(page_aligned: bool):
    cluster = DexCluster(num_nodes=NODES)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    tracer = FaultTracer()
    proc.attach_tracer(tracer)

    if page_aligned:
        # the fix: each thread's counters own their pages; one merge at
        # the end (the §IV-C local-staging recipe)
        shared = alloc_array(alloc, np.int64, BINS, name="hist",
                             segment="globals", page_aligned=True)
    else:
        # the bug: one shared counter page everyone hammers
        shared = alloc_array(alloc, np.int64, BINS, name="hist",
                             segment="globals")

    start_gate = Barrier(alloc, THREADS, name="start", page_aligned=True)

    def worker(ctx, wid):
        rng = np.random.default_rng(wid)
        yield from ctx.migrate(wid * NODES // THREADS)
        yield from start_gate.wait(ctx)  # start together, like real workers
        local = np.zeros(BINS, dtype=np.int64)
        for i in range(ITEMS_PER_THREAD):
            yield from ctx.compute(cpu_us=2.0)
            bin_idx = int(rng.integers(0, BINS))
            if page_aligned:
                local[bin_idx] += 1          # stage locally
            else:
                yield from shared.add(ctx, bin_idx, 1, site="histogram:add")
        if page_aligned:
            for b in range(BINS):
                if local[b]:
                    yield from shared.add(ctx, b, int(local[b]),
                                          site="histogram:merge")
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, i) for i in range(THREADS)]

    def main(ctx):
        start = ctx.now
        yield from proc.join_all(threads)
        elapsed = ctx.now - start
        hist = yield from shared.read(ctx)
        return elapsed, hist

    elapsed, hist = cluster.simulate(main, proc)
    assert hist.sum() == THREADS * ITEMS_PER_THREAD
    return elapsed, tracer


def main():
    print("== step 1: run the naive version under the fault profiler ==")
    slow_elapsed, tracer = run_variant(page_aligned=False)
    print(f"naive version: {slow_elapsed / 1000:.2f} ms "
          f"({len(tracer)} trace events)\n")

    print("== step 2: what does the trace say? ==")
    analysis = TraceAnalysis(tracer)
    print(analysis.report(top=3))
    flagged = analysis.false_sharing_candidates(top=1)
    assert flagged, "the profiler must flag the histogram page"
    page = flagged[0]
    print(f"\n-> page {page.vpn:#x} is written from nodes "
          f"{list(page.writer_nodes)}: classic cross-node interference.\n")

    print("== step 3: apply the fix (page-aligned + local staging) ==")
    fast_elapsed, _ = run_variant(page_aligned=True)
    print(f"optimized version: {fast_elapsed / 1000:.2f} ms")
    print(f"speedup from the fix: {slow_elapsed / fast_elapsed:.1f}x")
    assert fast_elapsed < slow_elapsed
    print("OK")


if __name__ == "__main__":
    main()
