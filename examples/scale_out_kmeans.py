"""Scale a real application beyond one machine: k-means on 1..8 nodes.

Uses the packaged KMN application (§V) to show the end-to-end story: the
same program, converted with two migration lines, first *degrades* when
distributed naively and then scales once the §IV layout fixes are applied.
Every run's centroids are verified against a single-threaded reference.

Run:  python examples/scale_out_kmeans.py
"""

from repro.apps import kmeans

N_POINTS = 120_000
MAX_ITERS = 2


def main():
    baseline = kmeans.run(num_nodes=1, variant="unmodified",
                          n_points=N_POINTS, max_iters=MAX_ITERS)
    assert baseline.correct
    print(f"single machine (8 threads): {baseline.elapsed_us / 1000:.1f} ms\n")
    print(f"{'nodes':>5s} {'initial port':>14s} {'optimized port':>15s}")
    for nodes in (1, 2, 4, 8):
        row = [f"{nodes:5d}"]
        for variant in ("initial", "optimized"):
            result = kmeans.run(num_nodes=nodes, variant=variant,
                                n_points=N_POINTS, max_iters=MAX_ITERS)
            assert result.correct, "distributed run computed wrong centroids!"
            speedup = baseline.elapsed_us / result.elapsed_us
            row.append(f"{speedup:13.2f}x")
        print(" ".join(row))
    print("\n(initial = just the two migration lines; optimized = plus the")
    print(" page-alignment and local-staging fixes of §IV. All centroids")
    print(" checked against the single-threaded reference.)")


if __name__ == "__main__":
    main()
