"""Relocating computation near data (§VII's outlook scenario).

Shards of a dataset live on different nodes (each shard was written by a
thread on its node, so those pages are owned there).  A query thread then
either (a) stays home and pulls every shard's pages across the network, or
(b) *migrates to each shard in turn* and computes locally — the paper's
"relocating the computation near data".  Same API, same result; the
migrating plan moves kilobytes of context instead of megabytes of data.

Run:  python examples/compute_follows_data.py
"""

import numpy as np

from repro import DexCluster
from repro.runtime import MemoryAllocator
from repro.runtime.array import alloc_array

NODES = 4
SHARD_ELEMS = 64_000  # 500 KB per shard


def build_cluster():
    cluster = DexCluster(num_nodes=NODES)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    shards = [
        alloc_array(alloc, np.float64, SHARD_ELEMS, name=f"shard{k}",
                    page_aligned=True)
        for k in range(NODES)
    ]

    def loader(ctx, k):
        # each shard is produced on its node, so its pages live there
        yield from ctx.migrate(k)
        rng = np.random.default_rng(k)
        yield from shards[k].write(ctx, 0, rng.uniform(0, 1, SHARD_ELEMS))
        yield from ctx.compute(cpu_us=200.0)
        yield from ctx.migrate_back()

    loaders = [proc.spawn_thread(loader, k) for k in range(NODES)]

    def wait(ctx):
        yield from proc.join_all(loaders)

    cluster.simulate(wait, proc)
    return cluster, proc, shards


def query(ctx, shards, move_compute):
    total = 0.0
    start = ctx.now
    for k, shard in enumerate(shards):
        if move_compute:
            yield from ctx.migrate(k)  # go to the data
        data = yield from shard.read(ctx, site="query:scan")
        yield from ctx.compute(cpu_us=200.0, mem_bytes=shard.nbytes)
        total += float(data.sum())
    if move_compute:
        yield from ctx.migrate_back()
    return total, ctx.now - start


def main():
    results = {}
    for move_compute, label in ((False, "data-to-compute"),
                                (True, "compute-to-data")):
        cluster, proc, shards = build_cluster()
        thread = proc.spawn_thread(query, shards, move_compute, name="query")

        def wait(ctx):
            result = yield from proc.join_all([thread])
            return result[0]

        total, elapsed = cluster.simulate(wait, proc)
        moved = proc.stats.pages_transferred
        results[label] = (total, elapsed, moved)
        print(f"{label:16s}: sum={total:12.1f}  time={elapsed/1000:7.2f} ms  "
              f"pages moved={moved}")

    pull_total, pull_time, _ = results["data-to-compute"]
    go_total, go_time, _ = results["compute-to-data"]
    assert abs(pull_total - go_total) < 1e-6, "answers must agree"
    print(f"\nmigrating the thread to the data is "
          f"{pull_time / go_time:.1f}x faster here — the execution context "
          f"is far smaller than the shards.")


if __name__ == "__main__":
    main()
