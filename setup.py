"""Shim for environments without the `wheel` package, where modern
PEP-517 editable installs (`pip install -e .`) cannot build an editable
wheel.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
