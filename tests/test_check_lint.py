"""The repo-specific lint pass: the repo itself must be clean, and each
fixture must trip exactly its intended rule (with a location)."""

import os
import subprocess
import sys
from pathlib import Path

from repro.check.lint import RULES, lint_paths, lint_repo

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]


def rules_of(violations):
    return sorted({v.rule for v in violations})


def test_rule_registry_is_complete():
    assert RULES == (
        "unhandled-message-type",
        "directory-encapsulation",
        "sim-nondeterminism",
        "yield-discipline",
        "span-discipline",
        "slots-discipline",
        "retry-discipline",
    )


def test_repo_is_lint_clean():
    violations = lint_repo()
    assert violations == [], "\n".join(v.format() for v in violations)


def test_unhandled_message_type_fixture():
    violations = lint_paths([FIXTURES / "fixture_unhandled_message.py"])
    assert rules_of(violations) == ["unhandled-message-type"]
    (v,) = violations
    assert "MsgType.ORPHAN" in v.message
    assert v.line > 0
    assert "fixture_unhandled_message.py" in v.path


def test_directory_encapsulation_fixture():
    violations = lint_paths([FIXTURES / "fixture_directory_touch.py"])
    assert rules_of(violations) == ["directory-encapsulation"]
    touched = {v.message.split("'")[1] for v in violations}
    assert touched == {".directory_shard", "._lru"}


def test_nondeterminism_fixture():
    violations = lint_paths([FIXTURES / "fixture_nondeterminism.py"])
    assert rules_of(violations) == ["sim-nondeterminism"]
    messages = " | ".join(v.message for v in violations)
    assert "import of the unseeded 'random' module" in messages
    assert "random.random()" in messages
    assert "time.time()" in messages


def test_yield_discipline_fixture():
    violations = lint_paths([FIXTURES / "fixture_bad_yield.py"])
    assert rules_of(violations) == ["yield-discipline"]
    shown = {v.message.split(":")[0] for v in violations}
    assert shown == {"bare yield", "yield 5"}


def test_span_discipline_fixture():
    violations = lint_paths([FIXTURES / "fixture_span_discipline.py"])
    assert rules_of(violations) == ["span-discipline"]
    messages = " | ".join(v.message for v in violations)
    # both un-with'd open forms flagged ...
    assert "'tracer.span(...)'" in messages
    assert "'maybe_span(...)'" in messages
    # ... and all three smuggled-id dict keys
    for key in ("trace_id", "parent_span", "span_id"):
        assert f"dict key {key!r}" in messages
    assert len(violations) == 5  # the sanctioned with-forms are not flagged


def test_slots_discipline_fixture():
    fixture = FIXTURES / "sim" / "fixture_missing_slots.py"
    violations = lint_paths([fixture])
    assert rules_of(violations) == ["slots-discipline"]
    flagged = {v.message.split()[1] for v in violations}
    # plain class and slot-less dataclass are flagged; the slotted class,
    # the dataclass(slots=True), the enum, and the exception are not
    assert flagged == {"BadEvent", "BadRecord"}
    assert all(v.line > 0 for v in violations)


def test_slots_discipline_scope_is_engine_core_paths():
    # the same slot-less class outside sim/ (and not net/messages.py)
    # is not this rule's business
    fixture = FIXTURES / "plain_module.py"
    fixture.write_text("class SlotLess:\n    def __init__(self):\n"
                       "        self.x = 1\n")
    try:
        assert lint_paths([fixture]) == []
    finally:
        fixture.unlink()
    # ... but a net/messages.py is
    net_dir = FIXTURES / "net"
    net_dir.mkdir(exist_ok=True)
    fixture = net_dir / "messages.py"
    fixture.write_text("class SlotLess:\n    def __init__(self):\n"
                       "        self.x = 1\n")
    try:
        assert rules_of(lint_paths([fixture])) == ["slots-discipline"]
    finally:
        fixture.unlink()
        net_dir.rmdir()


def test_retry_discipline_fixture():
    violations = lint_paths([FIXTURES / "fixture_retry_discipline.py"])
    assert rules_of(violations) == ["retry-discipline"]
    assert len(violations) == 2
    messages = " | ".join(v.message for v in violations)
    # the undeclared message is caught through the msg = Message(...) binding
    assert "MsgType.NAK" in messages
    assert "MsgType.SYN" not in messages  # declared → clean
    # the hand-rolled loop is flagged; the constant-delay loop is not
    assert "retransmit loop scales its own delay" in messages
    lines = sorted(v.line for v in violations)
    source = (FIXTURES / "fixture_retry_discipline.py").read_text().splitlines()
    assert "net.request(msg)" in source[lines[0] - 1]
    assert source[lines[1] - 1].strip().startswith("while True:")


def test_span_discipline_repo_mode_exempts_obs():
    obs_dir = FIXTURES / "obs"
    obs_dir.mkdir(exist_ok=True)
    fixture = obs_dir / "machinery.py"
    fixture.write_text(
        "def serialize(s):\n    return {'trace_id': s.trace_id}\n"
    )
    try:
        assert rules_of(lint_paths([fixture])) == ["span-discipline"]
        assert lint_paths([fixture], repo_mode=True) == []
    finally:
        fixture.unlink()
        obs_dir.rmdir()


def test_repo_mode_exempts_offline_tooling():
    # tools/ reads no wall clocks today, but the exemption is what lets
    # e.g. bench harnesses time themselves; a fixture under a "tools"
    # directory demonstrates it
    tools_dir = FIXTURES / "tools"
    tools_dir.mkdir(exist_ok=True)
    fixture = tools_dir / "offline.py"
    fixture.write_text("import time\n\ndef stamp():\n    return time.time()\n")
    try:
        assert rules_of(lint_paths([fixture])) == ["sim-nondeterminism"]
        assert lint_paths([fixture], repo_mode=True) == []
    finally:
        fixture.unlink()
        tools_dir.rmdir()


def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.check", "--lint", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )


def test_cli_clean_on_repo():
    result = _run_cli()
    assert result.returncode == 0, result.stdout + result.stderr
    assert "lint: clean" in result.stdout


def test_cli_nonzero_on_fixture():
    result = _run_cli(str(FIXTURES / "fixture_nondeterminism.py"))
    assert result.returncode == 1
    assert "[sim-nondeterminism]" in result.stdout
    assert "fixture_nondeterminism.py" in result.stdout
    assert "violation(s)" in result.stderr


def test_cli_list_rules():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.check", "--list-rules"],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert result.returncode == 0
    assert set(result.stdout.split()) == set(RULES)
