"""The bench document's append-only trajectory: ``update_bench_doc`` is
pure, so the append/cap/replace behaviour is tested without running a
single benchmark."""

from repro.bench.perf import TRAJECTORY_CAP, update_bench_doc
from repro.obs.diff import diff_trajectory


def _points(rate):
    return {"dispatch_storm": {"wall_s": 1.0, "events_per_sec": rate}}


def test_fresh_document_shape():
    doc = update_bench_doc(None, "quick", _points(1000.0), 0.0)
    assert doc["schema"] == 1 and doc["mode"] == "quick"
    assert doc["points"] == _points(1000.0)
    assert len(doc["trajectory"]) == 1
    entry = doc["trajectory"][0]
    assert entry["ts"] == 0.0
    assert entry["date"] == "1970-01-01 00:00:00Z"  # UTC, stable
    assert entry["mode"] == "quick"
    assert entry["points"] == _points(1000.0)


def test_appends_without_overwriting_history():
    doc = update_bench_doc(None, "quick", _points(1000.0), 0.0)
    doc = update_bench_doc(doc, "full", _points(2000.0), 60.0)
    assert len(doc["trajectory"]) == 2
    # the top-level point set is the newest run (existing consumers),
    # the history keeps both
    assert doc["mode"] == "full" and doc["points"] == _points(2000.0)
    assert doc["trajectory"][0]["points"] == _points(1000.0)
    assert doc["trajectory"][1]["mode"] == "full"


def test_extra_keys_survive():
    existing = {
        "reference": {"pre_refactor": {"x": 1}},
        "quick_points": {"q": {"wall_s": 0.5}},
        "trajectory": [{"ts": 0.0, "mode": "quick", "points": _points(1.0)}],
    }
    doc = update_bench_doc(existing, "quick", _points(2.0), 5.0)
    assert doc["reference"] == existing["reference"]
    assert doc["quick_points"] == existing["quick_points"]
    assert len(doc["trajectory"]) == 2
    # pure: the input document was not mutated
    assert len(existing["trajectory"]) == 1


def test_trajectory_capped_oldest_dropped():
    doc = None
    for i in range(TRAJECTORY_CAP + 5):
        doc = update_bench_doc(doc, "quick", _points(float(i)), float(i))
    assert len(doc["trajectory"]) == TRAJECTORY_CAP
    assert doc["trajectory"][0]["ts"] == 5.0  # the 5 oldest fell off
    assert doc["trajectory"][-1]["ts"] == float(TRAJECTORY_CAP + 4)


def test_trajectory_feeds_the_trend_guard():
    """End-to-end through the pure layer: perf appends, obs diff reads."""
    doc = update_bench_doc(None, "quick", _points(1000.0), 0.0)
    doc = update_bench_doc(doc, "quick", _points(950.0), 1.0)
    regressed, msg = diff_trajectory(doc, threshold=0.25)
    assert not regressed and "dispatch_storm" in msg
    doc = update_bench_doc(doc, "quick", _points(200.0), 2.0)
    regressed, _ = diff_trajectory(doc, threshold=0.25)
    assert regressed
