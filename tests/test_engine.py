"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, Event, Interrupt, Process, SimulationError, Timeout


def test_timeout_advances_clock():
    eng = Engine()

    def body():
        yield eng.timeout(5.0)
        yield eng.timeout(2.5)
        return "done"

    assert eng.run_process(body()) == "done"
    assert eng.now == 7.5


def test_zero_timeout_is_legal():
    eng = Engine()

    def body():
        yield eng.timeout(0.0)
        return eng.now

    assert eng.run_process(body()) == 0.0


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.timeout(-1.0)


def test_timeout_carries_value():
    eng = Engine()

    def body():
        value = yield eng.timeout(1.0, value="payload")
        return value

    assert eng.run_process(body()) == "payload"


def test_event_wakes_waiter_with_value():
    eng = Engine()
    evt = eng.event()

    def waiter():
        value = yield evt
        return value

    def trigger():
        yield eng.timeout(3.0)
        evt.succeed(42)

    proc = eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert proc.value == 42
    assert eng.now == 3.0


def test_event_double_trigger_rejected():
    eng = Engine()
    evt = eng.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_value_before_trigger_rejected():
    eng = Engine()
    evt = eng.event()
    with pytest.raises(SimulationError):
        _ = evt.value


def test_failed_event_raises_in_waiter():
    eng = Engine()
    evt = eng.event()

    def waiter():
        try:
            yield evt
        except ValueError as err:
            return f"caught:{err}"
        return "not raised"

    proc = eng.process(waiter())
    evt.fail(ValueError("boom"))
    eng.run()
    assert proc.value == "caught:boom"


def test_process_exception_propagates_to_joiner():
    eng = Engine()

    def crasher():
        yield eng.timeout(1.0)
        raise RuntimeError("crash")

    def joiner():
        try:
            yield eng.process(crasher())
        except RuntimeError:
            return "saw crash"
        return "missed"

    assert eng.run_process(joiner()) == "saw crash"


def test_process_return_value_via_join():
    eng = Engine()

    def child():
        yield eng.timeout(2.0)
        return 99

    def parent():
        result = yield eng.process(child())
        return result

    assert eng.run_process(parent()) == 99


def test_yielding_non_event_fails_process():
    eng = Engine()

    def bad():
        yield 42

    proc = eng.process(bad())
    eng.run()
    assert proc.triggered and not proc.ok
    with pytest.raises(SimulationError):
        _ = proc.value


def test_all_of_waits_for_every_child():
    eng = Engine()

    def child(delay, value):
        yield eng.timeout(delay)
        return value

    def parent():
        procs = [eng.process(child(d, d * 10)) for d in (3.0, 1.0, 2.0)]
        values = yield eng.all_of(procs)
        return values

    assert eng.run_process(parent()) == [30.0, 10.0, 20.0]
    assert eng.now == 3.0


def test_all_of_empty_triggers_immediately():
    eng = Engine()

    def parent():
        values = yield eng.all_of([])
        return values

    assert eng.run_process(parent()) == []


def test_interrupt_reaches_waiting_process():
    eng = Engine()

    def sleeper():
        try:
            yield eng.timeout(100.0)
        except Interrupt as intr:
            return f"interrupted:{intr.cause}@{eng.now}"
        return "slept"

    def interrupter(target):
        yield eng.timeout(1.0)
        target.interrupt("wakeup")

    proc = eng.process(sleeper())
    eng.process(interrupter(proc))
    eng.run()
    # the process saw the interrupt at t=1; the abandoned timeout still
    # drains from the queue afterwards, which is fine
    assert proc.value == "interrupted:wakeup@1.0"


def test_stale_event_after_interrupt_is_ignored():
    eng = Engine()
    log = []

    def sleeper():
        try:
            yield eng.timeout(10.0)
            log.append("timeout fired in body")
        except Interrupt:
            log.append("interrupted")
        yield eng.timeout(50.0)
        log.append("second sleep done")

    proc = eng.process(sleeper())

    def interrupter():
        yield eng.timeout(1.0)
        proc.interrupt()

    eng.process(interrupter())
    eng.run()
    assert log == ["interrupted", "second sleep done"]
    assert eng.now == 51.0


def test_run_until_stops_clock():
    eng = Engine()

    def body():
        yield eng.timeout(100.0)

    eng.process(body())
    eng.run(until=30.0)
    assert eng.now == 30.0
    eng.run()
    assert eng.now == 100.0


def test_deterministic_ordering_fifo_at_same_time():
    """Events scheduled for the same instant fire in scheduling order."""
    eng = Engine()
    order = []

    def maker(tag):
        def body():
            yield eng.timeout(5.0)
            order.append(tag)

        return body

    for tag in range(10):
        eng.process(maker(tag)())
    eng.run()
    assert order == list(range(10))


def test_run_process_detects_deadlock():
    eng = Engine()
    evt = eng.event()

    def stuck():
        yield evt

    with pytest.raises(SimulationError, match="did not finish"):
        eng.run_process(stuck())


def test_max_events_guard():
    eng = Engine()

    def spinner():
        while True:
            yield eng.timeout(0.0)

    eng.process(spinner())
    with pytest.raises(SimulationError, match="max_events"):
        eng.run(max_events=1000)


def test_schedule_in_past_rejected():
    eng = Engine()

    def body():
        yield eng.timeout(5.0)
        eng._schedule_at(1.0, lambda: None)

    proc = eng.process(body())
    eng.run()
    assert not proc.ok
