"""Tests for the §IV optimization advisor and the tools CLI."""

import numpy as np

from repro.runtime import MemoryAllocator
from repro.runtime.array import alloc_array
from repro.tools import FaultTracer, TraceAnalysis
from repro.tools.suggestions import OptimizationAdvisor, Suggestion
from repro.tools.tracer import FaultEvent

from conftest import make_cluster


def synthetic_trace(events):
    tracer = FaultTracer()
    for e in events:
        tracer.record(*e)
    return TraceAnalysis(tracer)


def test_split_page_rule():
    """Multiple writer nodes + multiple sites on one page -> split."""
    events = []
    for i in range(20):
        node = 1 + i % 3
        events.append((float(i), node, node, "write", f"site{node}",
                       0x5000 + node * 64, "heap"))
    advisor = OptimizationAdvisor(synthetic_trace(events), min_faults=5)
    kinds = {s.kind for s in advisor.suggest()}
    assert "split_page" in kinds


def test_stage_locally_rule():
    """One site, many writer nodes -> a global counter: stage locally."""
    events = [
        (float(i), 1 + i % 4, i % 8, "write", "counter:add", 0x9000, "globals")
        for i in range(30)
    ]
    advisor = OptimizationAdvisor(synthetic_trace(events), min_faults=5)
    kinds = {s.kind for s in advisor.suggest()}
    assert "stage_locally" in kinds


def test_separate_read_only_rule():
    """Many reader nodes, one writer -> move read-mostly data away."""
    events = [(float(i), 1 + i % 4, i, "read", "params", 0x7000, "globals")
              for i in range(24)]
    events += [(100.0 + i, 5, 0, "write", "bookkeeping", 0x7010, "globals")
               for i in range(6)]
    advisor = OptimizationAdvisor(synthetic_trace(events), min_faults=5)
    kinds = {s.kind for s in advisor.suggest()}
    assert "separate_read_only" in kinds


def test_hoist_stack_rule():
    events = [(float(i), 1 + i % 3, i, "read", "region_args", 0xA000,
               "stack:master") for i in range(15)]
    advisor = OptimizationAdvisor(synthetic_trace(events), min_faults=5)
    kinds = {s.kind for s in advisor.suggest()}
    assert "hoist_stack" in kinds


def test_quiet_trace_yields_nothing():
    advisor = OptimizationAdvisor(synthetic_trace([]), min_faults=5)
    assert advisor.suggest() == []
    assert "no optimization opportunities" in advisor.report()


def test_suggestions_sorted_by_severity():
    events = [(float(i), 1 + i % 2, i, "write", "hot", 0x1000, "heap")
              for i in range(40)]
    events += [(float(i), 1 + i % 2, i, "write", "warm", 0x2000, "heap")
               for i in range(10)]
    # two sites per page so split_page fires on both pages
    events += [(500.0, 2, 0, "write", "hot2", 0x1040, "heap"),
               (501.0, 1, 0, "write", "warm2", 0x2040, "heap")]
    advisor = OptimizationAdvisor(synthetic_trace(events), min_faults=5)
    severities = [s.severity for s in advisor.suggest()]
    assert severities == sorted(severities, reverse=True)


def test_advisor_on_real_contended_run():
    """End-to-end: a real contended run must produce a stage_locally or
    split_page suggestion for the hot counter page."""
    cluster = make_cluster()
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    tracer = FaultTracer()
    proc.attach_tracer(tracer)
    counter = alloc.alloc_global(8, tag="counter")
    gate = cluster.engine.event()

    def worker(ctx, node):
        yield from ctx.migrate(node)
        yield gate
        for _ in range(10):
            yield from ctx.atomic_add_i64(counter, 1, site="hot:add")
            yield from ctx.compute(cpu_us=3.0)
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, n) for n in range(4)]

    def main(ctx):
        yield ctx.engine.timeout(6_000.0)
        gate.succeed()
        yield from proc.join_all(threads)

    cluster.simulate(main, proc)
    advisor = OptimizationAdvisor(TraceAnalysis(tracer), min_faults=4)
    suggestions = advisor.suggest()
    assert suggestions, "the hot counter page must be flagged"
    assert suggestions[0].kind in ("stage_locally", "split_page")
    assert "§IV" in str(suggestions[0]) or "stage" in str(suggestions[0])


def test_cli_roundtrip(tmp_path, capsys):
    """python -m repro.tools on a saved trace prints the analyses."""
    from repro.tools.__main__ import main as tools_main

    tracer = FaultTracer()
    for i in range(12):
        tracer.record(float(i * 100), 1 + i % 2, i, "write", "x:add",
                      0x3000, "heap")
    path = str(tmp_path / "trace.csv")
    tracer.save_csv(path)
    assert tools_main([path]) == 0
    out = capsys.readouterr().out
    assert "fault trace: 12 events" in out
    assert "fault rate over time" in out
    assert "suggestion" in out
