"""Satellite sweep: drop each request-class control message exactly once
over the two-node pagefault micro, under both directory backends.  Every
run must finish with the exact counter value; when the rule found a message
to drop, the transport must have retransmitted."""

import pytest

from repro.chaos import run_pagefault_micro
from repro.chaos.scenario import ChaosRule, ChaosScenario
from repro.core.directory import DIRECTORY_BACKENDS
from repro.net.messages import TIMEOUT_CLASSES

#: every request-class message the micro can put on the wire (PING is
#: benchmark-only traffic and never sent here)
SWEEP_TYPES = sorted(
    m.value for m in TIMEOUT_CLASSES if m.value != "ping"
)

#: types that only exist on the sharded backend's wire
SHARDED_ONLY = {"page_home_lookup"}


@pytest.mark.parametrize("directory", DIRECTORY_BACKENDS)
@pytest.mark.parametrize("msg_type", SWEEP_TYPES)
def test_drop_each_request_type_once(msg_type, directory):
    rule = ChaosRule(kind="drop", msg_type=msg_type, nth=1)
    scenario = ChaosScenario(rules=[rule], seed=1).validate()
    out = run_pagefault_micro(scenario, directory=directory)
    assert out["ok"], (msg_type, directory, out)
    report = out["report"]
    if msg_type in SHARDED_ONLY and directory != "sharded":
        assert rule.fired == 0, "origin backend has no home lookups"
        return
    # the micro exercises every request class: each rule finds its target
    assert rule.fired == 1, (msg_type, directory, report["events"])
    assert report["injections"] == {"drop": 1}
    assert report["retransmissions"] >= 1


@pytest.mark.parametrize("directory", DIRECTORY_BACKENDS)
def test_drop_every_type_in_one_run(directory):
    """All single-drop rules at once still converge to the exact count."""
    rules = [
        ChaosRule(kind="drop", msg_type=t, nth=1)
        for t in SWEEP_TYPES
    ]
    scenario = ChaosScenario(rules=rules, seed=2).validate()
    out = run_pagefault_micro(scenario, directory=directory)
    assert out["ok"], (directory, out)
    fired = sum(r.fired for r in rules)
    expected = len(SWEEP_TYPES) - (0 if directory == "sharded"
                                   else len(SHARDED_ONLY))
    assert fired == expected
