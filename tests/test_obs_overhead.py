"""The diagnostics-off zero-cost guarantee, guarded three ways:

1. structurally — with ``DEX_TRACE`` unset no tracer object exists, hot
   paths see ``proc.obs is None``, the engine runs with empty hooks, and
   messages carry no trace context; the same single-attribute shape holds
   for the chaos (``cluster.chaos is None``), check
   (``proc.sanitizer``/``proc.deadlocks is None``), and scope
   (``cluster.scope``/``net.scope is None``, no sampler registered)
   layers;
2. semantically — tracing on/off yields bit-identical simulated time and
   fault counts (instrumentation must never perturb the model);
3. a microbound — the entire per-fault off-mode cost of all three
   diagnostic layers (a generous over-count of guard evaluations times
   the measured cost of each real guard) must stay under 3% of the
   measured per-fault wall time.

CI's ``check`` job runs this file explicitly with ``DEX_TRACE`` unset.
"""

import timeit
from time import perf_counter

import pytest

from repro import DexCluster, SimParams
from repro.net.messages import Message, MsgType
from repro.runtime import MemoryAllocator

#: generous over-estimate of instrumented guard sites evaluated per fault
#: (fault + acquire + request/send/wire/rdma legs + grant + revoke + rx
#: adoption + the surrounding compute calls)
GUARDS_PER_FAULT = 64


def _run_workload(trace, lens="", scope=""):
    """A contended 2-node ping-pong; sanitize, lens, and scope off
    explicitly so the check matrix's DEX_SANITIZE=1 / DEX_LENS=1 /
    DEX_SCOPE=1 cannot add hooks of their own."""
    cluster = DexCluster(
        num_nodes=2,
        params=SimParams(trace=trace, sanitize="", lens=lens, scope=scope))
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    var = alloc.alloc_global(8, tag="hot")

    def hammer(ctx, dest, rounds):
        if dest is not None:
            yield from ctx.migrate(dest)
        for _ in range(rounds):
            yield from ctx.atomic_add_i64(var, 1, site="h")
            yield from ctx.compute(cpu_us=0.5)

    t1 = proc.spawn_thread(hammer, None, 40)
    t2 = proc.spawn_thread(hammer, 1, 40)

    def main(ctx):
        yield from proc.join_all([t1, t2])

    cluster.simulate(main, proc)
    return cluster, proc


def test_off_mode_is_structurally_zero_cost(monkeypatch):
    monkeypatch.delenv("DEX_TRACE", raising=False)
    cluster, proc = _run_workload(trace=None)  # None defers to the env
    assert cluster.tracer is None
    assert cluster.engine.tracer is None
    assert proc.obs is None
    assert cluster.engine.hooks == []  # nothing on the per-step hot path
    # scope off: no sampler registered, the run loop compares one float
    # against +inf per dispatch, and the fabric never times the wire
    assert cluster.scope is None
    assert cluster.net.scope is None
    assert cluster.engine._hooks_sample == []
    assert cluster.engine._next_sample == float("inf")
    # messages default to carrying no trace context
    msg = Message(MsgType.PAGE_REQUEST, src=0, dst=1)
    assert msg.trace_id is None and msg.parent_span is None


def test_chaos_and_check_off_paths_are_single_attribute(monkeypatch):
    """With every diagnostic layer off, each dispatch-adjacent guard is one
    attribute load against None (or a flag snapshotted at construction) —
    no object graphs, no hook lists, no getattr probing."""
    monkeypatch.delenv("DEX_TRACE", raising=False)
    cluster, proc = _run_workload(trace=None)
    assert cluster.chaos is None
    assert proc.sanitizer is None
    assert proc.deadlocks is None
    eng = cluster.engine
    assert eng.hooks == []
    # the pre-bound per-kind hook lists the dispatch sites iterate
    assert eng._hooks_created == [] and eng._hooks_waiting == []
    assert eng._hooks_finished == []
    assert eng._hooks_pool_stall == [] and eng._hooks_pool_resume == []
    # chaos-off collapses message recycling to one snapshotted flag
    assert cluster.net._recycle is True


def test_trace_knob_resolution(monkeypatch):
    monkeypatch.delenv("DEX_TRACE", raising=False)
    monkeypatch.delenv("DEX_LENS", raising=False)  # the lens implies a tracer
    assert DexCluster(num_nodes=2, params=SimParams(trace="")).tracer is None
    assert DexCluster(num_nodes=2, params=SimParams(trace="1")).tracer is not None
    monkeypatch.setenv("DEX_TRACE", "1")
    assert DexCluster(num_nodes=2).tracer is not None
    monkeypatch.setenv("DEX_TRACE", "0")
    assert DexCluster(num_nodes=2).tracer is None
    with pytest.raises(ValueError):
        DexCluster(num_nodes=2, params=SimParams(trace="bogus"))


def test_scope_knob_resolution(monkeypatch):
    monkeypatch.delenv("DEX_TRACE", raising=False)
    monkeypatch.delenv("DEX_LENS", raising=False)
    monkeypatch.delenv("DEX_SCOPE", raising=False)
    assert DexCluster(num_nodes=2, params=SimParams(scope="")).scope is None
    cluster = DexCluster(num_nodes=2, params=SimParams(scope="1"))
    assert cluster.scope is not None
    assert cluster.net.scope is cluster.scope  # the fabric's wire guard
    assert len(cluster.engine._hooks_sample) == 1
    monkeypatch.setenv("DEX_SCOPE", "1")
    assert DexCluster(num_nodes=2).scope is not None
    monkeypatch.setenv("DEX_SCOPE", "0")
    assert DexCluster(num_nodes=2).scope is None
    with pytest.raises(ValueError):
        DexCluster(num_nodes=2, params=SimParams(scope="bogus"))


def test_tracing_does_not_perturb_the_simulation():
    off_cluster, off_proc = _run_workload(trace="")
    on_cluster, on_proc = _run_workload(trace="1")
    assert on_cluster.engine.now == off_cluster.engine.now  # bit-identical
    assert on_proc.stats.total_faults == off_proc.stats.total_faults
    assert on_proc.stats.fault_retries == off_proc.stats.fault_retries
    assert on_cluster.tracer.spans and off_cluster.tracer is None
    # with the lens off the tracer's sink lists stay empty: the span-close
    # path is one truthiness test on a pre-bound empty list
    assert on_cluster.lens is None
    assert on_cluster.tracer._sinks == []
    assert on_cluster.tracer._sink_close == []
    assert on_cluster.tracer._sink_msg == []


def test_off_mode_guard_cost_within_three_percent(monkeypatch):
    monkeypatch.delenv("DEX_TRACE", raising=False)
    start = perf_counter()
    cluster, proc = _run_workload(trace=None)
    wall = perf_counter() - start
    faults = proc.stats.total_faults
    assert faults > 0
    per_fault_wall = wall / faults
    # the off-mode cost per instrumented site is one attribute load plus a
    # None check; measure the real primitives on the real objects, one per
    # diagnostic layer (obs, check's sanitizer + deadlock detector, chaos)
    n = 20_000
    guards = (
        lambda: proc.obs is None,
        lambda: proc.sanitizer is None,
        lambda: proc.deadlocks is None,
        lambda: cluster.chaos is None,
        lambda: cluster.net.scope is None,
    )
    guard_cost = sum(
        min(timeit.repeat(guard, number=n, repeat=5)) / n for guard in guards
    ) / len(guards)
    assert guard_cost * GUARDS_PER_FAULT <= 0.03 * per_fault_wall, (
        f"off-mode guards cost {guard_cost * GUARDS_PER_FAULT * 1e6:.2f}us "
        f"per fault, over 3% of the {per_fault_wall * 1e6:.1f}us per-fault "
        f"wall time"
    )


def test_scope_sampling_cost_within_three_percent(monkeypatch):
    """The DexScope acceptance bound: with DEX_SCOPE=1 the hot loop pays
    one float compare per dispatch plus one read-only sweep per grid
    interval.  Measured as a microbound (like the off-mode guard test):
    real primitives on a real sampled cluster, amortized over the
    dispatches each firing covers, against the unsampled run's measured
    per-dispatch wall time."""
    from repro.bench.runner import run_point
    from repro.obs import scope as scope_mod

    workload = {"n_points": 10_000, "max_iters": 2}
    wall = min(
        _timed(lambda: run_point(
            "KMN", "initial", 4, params=SimParams(scope=""), **workload
        ))
        for _ in range(2)
    )
    scope_mod.reset_recent()
    run_point("KMN", "initial", 4, params=SimParams(scope="1"), **workload)
    (scope,) = scope_mod.recent_scopes()
    engine = scope.cluster.engine
    assert scope.samples > 1
    # determinism (test_obs_scope) guarantees both runs dispatched the
    # same event stream, so the sampled run's counts price the off run
    dispatched = engine.events_dispatched
    per_dispatch_wall = wall / dispatched
    dispatches_per_sample = dispatched / scope.samples

    n = 20_000
    compare_cost = min(timeit.repeat(
        lambda: engine.now >= engine._next_sample, number=n, repeat=5
    )) / n
    t = engine.now
    sweep_cost = min(timeit.repeat(
        lambda: scope.on_sample(t), number=200, repeat=3
    )) / 200
    overhead = compare_cost + sweep_cost / dispatches_per_sample
    assert overhead <= 0.03 * per_dispatch_wall, (
        f"DEX_SCOPE=1 costs {overhead * 1e9:.0f}ns per dispatch "
        f"({compare_cost * 1e9:.0f}ns compare + {sweep_cost * 1e6:.1f}us "
        f"sweep / {dispatches_per_sample:.0f} dispatches), over 3% of the "
        f"{per_dispatch_wall * 1e6:.2f}us per-dispatch wall time"
    )


def _timed(fn):
    start = perf_counter()
    fn()
    return perf_counter() - start
