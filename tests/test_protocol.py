"""Tests for the memory-consistency protocol: correctness of data movement,
ownership invariants, transfer skipping, and sequential consistency."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SegmentationFault
from repro.memory.page_table import PageState
from repro.runtime import MemoryAllocator

from conftest import make_cluster

GLOBALS = 0x1000_0000


def run(cluster, main, *args):
    proc = cluster.create_process()
    result = cluster.simulate(main, proc, *args)
    return result, proc


def test_single_node_access_is_protocol_free():
    cluster = make_cluster()

    def main(ctx):
        yield from ctx.write_i64(GLOBALS, 7)
        value = yield from ctx.read_i64(GLOBALS)
        return value

    value, proc = run(cluster, main)
    assert value == 7
    assert proc.stats.total_faults == 0
    assert len(proc.protocol.directory) == 0  # no entries materialized


def test_remote_read_sees_origin_data():
    cluster = make_cluster()

    def main(ctx):
        yield from ctx.write(GLOBALS, b"hello world")
        yield from ctx.migrate(2)
        data = yield from ctx.read(GLOBALS, 11)
        return data

    data, proc = run(cluster, main)
    assert data == b"hello world"
    assert proc.stats.faults_read == 1
    # wire transfers depend on where the page's metadata lives: with the
    # home at the origin (flush is local) or at the requester (grant is
    # local) the data crosses the wire once; a third-party home relays it
    home = proc.protocol.directory.home(GLOBALS // cluster.params.page_size)
    assert proc.stats.pages_transferred == (1 if home in (0, 2) else 2)


def test_remote_write_flows_back_to_origin():
    cluster = make_cluster()

    def main(ctx):
        yield from ctx.migrate(1)
        yield from ctx.write(GLOBALS, b"from node 1")
        yield from ctx.migrate_back()
        data = yield from ctx.read(GLOBALS, 11)
        return data

    data, proc = run(cluster, main)
    assert data == b"from node 1"
    proc.protocol.check_invariants()


def test_write_invalidates_readers():
    """After a writer takes a page exclusively, a previous reader must
    re-fault and see the new data."""
    cluster = make_cluster()
    proc = cluster.create_process()
    seen = {}

    def reader(ctx, phase_done, write_done):
        yield from ctx.migrate(1)
        first = yield from ctx.read_i64(GLOBALS)
        seen["before"] = first
        phase_done.succeed()
        yield write_done
        second = yield from ctx.read_i64(GLOBALS)
        seen["after"] = second
        yield from ctx.migrate_back()

    def writer(ctx, phase_done, write_done):
        yield from ctx.migrate(2)
        yield phase_done
        yield from ctx.write_i64(GLOBALS, 1234)
        write_done.succeed()
        yield from ctx.migrate_back()

    phase_done = cluster.engine.event()
    write_done = cluster.engine.event()
    t1 = proc.spawn_thread(reader, phase_done, write_done)
    t2 = proc.spawn_thread(writer, phase_done, write_done)

    def main(ctx):
        yield from proc.join_all([t1, t2])

    cluster.simulate(main, proc)
    assert seen["before"] == 0
    assert seen["after"] == 1234
    assert proc.stats.invalidations_sent >= 1
    proc.protocol.check_invariants()


def test_shared_readers_coexist():
    """Multiple nodes reading the same page all become owners; the
    directory records them all."""
    cluster = make_cluster()
    proc = cluster.create_process()

    def reader(ctx, node):
        yield from ctx.migrate(node)
        value = yield from ctx.read_i64(GLOBALS)
        return value

    threads = [proc.spawn_thread(reader, n) for n in (1, 2, 3)]

    def main(ctx):
        yield from ctx.write_i64(GLOBALS, 55)
        results = yield from proc.join_all(threads)
        return results

    results = cluster.simulate(main, proc)
    assert results == [55, 55, 55]
    vpn = GLOBALS // cluster.params.page_size
    entry = proc.protocol.directory.lookup(vpn)
    assert entry.owners >= {1, 2, 3}
    assert entry.writer is None
    proc.protocol.check_invariants()


def test_transfer_skip_on_upgrade():
    """A shared owner upgrading to write already holds current data, so the
    exclusive grant carries no page payload (§III-B's traffic
    optimization)."""
    cluster = make_cluster()

    def main(ctx):
        yield from ctx.write_i64(GLOBALS, 41)
        yield from ctx.migrate(1)
        value = yield from ctx.read_i64(GLOBALS)   # shared replica, 1 transfer
        yield from ctx.write_i64(GLOBALS, value + 1)  # upgrade: no transfer
        result = yield from ctx.read_i64(GLOBALS)
        return result

    value, proc = run(cluster, main)
    assert value == 42
    home = proc.protocol.directory.home(GLOBALS // cluster.params.page_size)
    if home == 1:
        # the requester hosts the page's entry, so grants are local: there
        # is no wire transfer for the skip optimization to save
        assert proc.stats.transfers_skipped == 0
        assert proc.stats.pages_transferred == 1  # the origin's flush
    else:
        assert proc.stats.transfers_skipped >= 1
        assert proc.stats.pages_transferred == (1 if home == 0 else 2)
    proc.protocol.check_invariants()


def test_transfer_skip_ablation_forces_transfers():
    def run_mode(enable_skip):
        # pinned to the origin backend: the ablation compares wire-transfer
        # counts for remote grants, which requires the requester not to be
        # the page's home
        cluster = make_cluster(enable_transfer_skip=enable_skip,
                               directory="origin")

        def main(ctx):
            yield from ctx.write_i64(GLOBALS, 1)
            yield from ctx.migrate(1)
            _ = yield from ctx.read_i64(GLOBALS)
            yield from ctx.write_i64(GLOBALS, 2)  # upgrade
            return None

        _, proc = run(cluster, main)
        return proc.stats

    with_skip = run_mode(True)
    without = run_mode(False)
    assert with_skip.transfers_skipped > 0
    assert without.pages_transferred > with_skip.pages_transferred


def test_atomic_counter_from_all_nodes():
    """The canonical DSM correctness test: concurrent atomic increments
    from every node must all land."""
    cluster = make_cluster()
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    counter = alloc.alloc_global(8, tag="counter")
    increments = 25

    def worker(ctx, node):
        yield from ctx.migrate(node)
        for _ in range(increments):
            yield from ctx.atomic_add_i64(counter, 1)
            yield from ctx.compute(cpu_us=0.3)
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, n) for n in range(cluster.num_nodes)]

    def main(ctx):
        yield from proc.join_all(threads)
        value = yield from ctx.read_i64(counter)
        return value

    value = cluster.simulate(main, proc)
    assert value == increments * cluster.num_nodes
    proc.protocol.check_invariants()


def test_sequential_consistency_migrating_walker():
    """A single thread hopping across nodes must always read its own most
    recent write (per-location sequential consistency)."""
    cluster = make_cluster()

    def main(ctx):
        expected = {}
        rng_values = [(n % 4, i) for i, n in enumerate(range(24))]
        for i, (node, val) in enumerate(rng_values):
            yield from ctx.migrate(node)
            addr = GLOBALS + (i % 6) * 8
            yield from ctx.write_i64(addr, val)
            expected[addr] = val
            got = yield from ctx.read_i64(addr)
            assert got == val, f"read-own-write failed at step {i}"
        yield from ctx.migrate_back()
        final = {}
        for addr, val in expected.items():
            final[addr] = (yield from ctx.read_i64(addr))
        return expected, final

    (expected, final), proc = run(cluster, main)
    assert final == expected
    proc.protocol.check_invariants()


@settings(max_examples=15, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # node
            st.integers(min_value=0, max_value=9),   # slot
            st.integers(min_value=0, max_value=1),   # 0=read 1=write
            st.integers(min_value=-(2**31), max_value=2**31),  # value
        ),
        min_size=1,
        max_size=40,
    )
)
def test_protocol_matches_flat_memory_model(steps):
    """Property: a migrating thread performing arbitrary reads/writes
    through the protocol observes exactly what a flat byte array would
    give, and the directory invariants hold afterwards."""
    cluster = make_cluster()

    def main(ctx):
        model = {}
        for node, slot, is_write, value in steps:
            yield from ctx.migrate(node)
            addr = GLOBALS + slot * 8
            if is_write:
                yield from ctx.write_i64(addr, value)
                model[slot] = value
            else:
                got = yield from ctx.read_i64(addr)
                assert got == model.get(slot, 0)
        return True

    ok, proc = run(cluster, main)
    assert ok
    proc.protocol.check_invariants()


def test_segfault_on_unmapped_remote_access():
    cluster = make_cluster()

    def main(ctx):
        yield from ctx.migrate(1)
        try:
            yield from ctx.read(0xDEAD0000, 8)
        except SegmentationFault as err:
            return ("segv", err.node)
        return ("no fault", None)

    result, _ = run(cluster, main)
    assert result == ("segv", 1)


def test_segfault_on_unmapped_origin_access():
    cluster = make_cluster()

    def main(ctx):
        try:
            # force the slow path by touching an address with no VMA: the
            # origin implicit-exclusive fast path only covers mapped pages
            # once a directory entry exists, so fault it via a remote first
            yield from ctx.migrate(1)
            yield from ctx.migrate_back()
            yield from ctx.fault_in(0xDEAD0000, 8, write=True)
        except SegmentationFault:
            return "segv"
        return "no fault"

    result, _ = run(cluster, main)
    # at the origin, an unmapped address with no directory entry is
    # implicitly owned, so a plain access does not trap; the distributed
    # SIGSEGV surface is the remote one (previous test).  Here we only
    # check it does not corrupt protocol state.
    assert result in ("segv", "no fault")


def test_page_state_after_exclusive_grant():
    cluster = make_cluster()

    def main(ctx):
        yield from ctx.migrate(3)
        yield from ctx.write_i64(GLOBALS, 9)
        return None

    _, proc = run(cluster, main)
    vpn = GLOBALS // cluster.params.page_size
    entry = proc.protocol.directory.lookup(vpn)
    assert entry.writer == 3
    assert entry.owners == {3}
    origin_pte = proc.node_state(0).page_table.lookup(vpn)
    assert origin_pte.state is PageState.INVALID


def test_struct_layout_preserved_across_nodes():
    """Mixed-type data written remotely reads back bit-exact."""
    cluster = make_cluster()
    payload = struct.pack("<dIq7s", 3.14159, 42, -7, b"deXrepr")

    def main(ctx):
        yield from ctx.migrate(2)
        yield from ctx.write(GLOBALS + 100, payload)
        yield from ctx.migrate(1)
        data = yield from ctx.read(GLOBALS + 100, len(payload))
        yield from ctx.migrate_back()
        return data

    data, proc = run(cluster, main)
    assert data == payload
    assert struct.unpack("<dIq7s", data)[0] == pytest.approx(3.14159)


def test_cross_page_write_spans_pages():
    cluster = make_cluster()
    page = cluster.params.page_size
    blob = bytes(range(256)) * 32  # 8 KB

    def main(ctx):
        yield from ctx.migrate(1)
        addr = GLOBALS + page - 100  # straddles a page boundary
        yield from ctx.write(addr, blob)
        yield from ctx.migrate(2)
        data = yield from ctx.read(addr, len(blob))
        return data

    data, proc = run(cluster, main)
    assert data == blob
    assert proc.stats.pages_transferred >= 3
