"""Tests for the experiment harness itself: runner, reporting, CLIs."""

import pytest

from repro.bench.experiments import PAPER_TABLE1, figure2_summary, table1
from repro.bench.reporting import (
    render_ablation,
    render_figure2,
    render_table1,
)
from repro.bench.runner import SCALE_PRESETS, ScalingPoint, run_point, run_scaling

TINY = {"text_size": 256 * 1024, "plant_every": 2000}


def test_run_point_applies_overrides():
    result = run_point("GRP", "initial", 1, scale="small", **TINY)
    assert result.correct
    assert result.num_nodes == 1


def test_run_scaling_normalizes_to_baseline():
    points = run_scaling("GRP", node_counts=(1,), variants=("initial",),
                         **TINY)
    assert points[0].variant == "unmodified"
    assert points[0].normalized == 1.0
    initial = [p for p in points if p.variant == "initial"]
    assert len(initial) == 1
    # initial on one node == baseline plus only migration overhead
    assert 0.5 < initial[0].normalized <= 1.05


def test_scale_presets_cover_all_apps():
    for scale in ("small", "paper"):
        assert set(SCALE_PRESETS[scale]) == set(PAPER_TABLE1)


def test_table1_rows_complete():
    rows = table1()
    assert len(rows) == 8
    text = render_table1(rows)
    assert "GRP" in text and "total changed LoC" in text


def test_figure2_summary_counts_scalers():
    points = [
        ScalingPoint("A", "unmodified", 1, 100.0, 1.0, True, 0, 0),
        ScalingPoint("A", "optimized", 8, 25.0, 4.0, True, 0, 0),
        ScalingPoint("B", "optimized", 8, 200.0, 0.5, True, 0, 0),
    ]
    summary = figure2_summary(points)
    assert summary["apps_beyond_single_machine"] == ["A"]
    assert summary["count_beyond"] == 1
    assert summary["peak_speedup"] == 4.0
    assert summary["all_correct"]


def test_render_figure2_layout():
    points = [
        ScalingPoint("A", "unmodified", 1, 100.0, 1.0, True, 0, 0),
        ScalingPoint("A", "initial", 2, 50.0, 2.0, True, 5, 1),
        ScalingPoint("A", "optimized", 2, 40.0, 2.5, True, 4, 0),
    ]
    text = render_figure2(points)
    assert "A" in text and "2.00" in text and "2.50" in text


def test_render_ablation_mixed_values():
    text = render_ablation("t", {"a": 1.5, "b": {"x": 2.0}})
    assert "t" in text and "x=2.0" in text


def test_bench_cli_table1(capsys):
    from repro.bench.__main__ import main as bench_main

    assert bench_main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out


def test_apps_cli_runs_and_reports(capsys):
    from repro.apps.__main__ import main as apps_main

    assert apps_main(["EP", "--nodes", "1"]) == 0
    out = capsys.readouterr().out
    assert "EP" in out and "correct=True" in out


def test_apps_cli_rejects_unknown_app():
    from repro.apps.__main__ import main as apps_main

    with pytest.raises(SystemExit):
        apps_main(["XYZ"])


def test_run_scaling_rejects_bad_nodes():
    # node counts beyond 8 simply grow the simulated rack; zero is illegal
    with pytest.raises(ValueError):
        run_point("GRP", "initial", 0, **TINY)
