"""Tests for scheduler-initiated automatic migration (the §III-A
extension: balancer policies + ctx.checkpoint())."""

import numpy as np

from repro.core.balancer import AffinityBalancer, LoadBalancer
from repro.runtime import MemoryAllocator
from repro.runtime.array import alloc_array
from repro.tools import FaultTracer

from conftest import make_cluster

GLOBALS = 0x1000_0000


def test_checkpoint_without_hint_is_noop():
    cluster = make_cluster()
    proc = cluster.create_process()

    def main(ctx):
        moved = yield from ctx.checkpoint()
        return moved, ctx.node

    assert cluster.simulate(main, proc) == (None, 0)
    assert proc.stats.migrations == []


def test_checkpoint_honours_posted_hint():
    cluster = make_cluster()
    proc = cluster.create_process()

    def main(ctx):
        proc.migration_hints.post(ctx.tid, 2)
        moved = yield from ctx.checkpoint()
        node_after = ctx.node
        # hint consumed: next checkpoint does nothing
        again = yield from ctx.checkpoint()
        return moved, node_after, again

    assert cluster.simulate(main, proc) == (2, 2, None)
    assert len(proc.stats.migrations) == 1


def test_load_balancer_evens_out_threads():
    cluster = make_cluster()
    proc = cluster.create_process()
    gate = cluster.engine.event()

    def worker(ctx):
        # everyone starts piled up on node 1
        yield from ctx.migrate(1)
        yield gate
        for _ in range(40):
            yield from ctx.compute(cpu_us=50.0)
            yield from ctx.checkpoint()
        return ctx.node

    threads = [proc.spawn_thread(worker) for _ in range(8)]
    balancer = LoadBalancer(proc)

    def main(ctx):
        yield ctx.engine.timeout(8_000.0)  # everyone parked on node 1
        assert balancer.imbalance() >= 8
        posted = balancer.rebalance()
        assert posted > 0
        gate.succeed()
        results = yield from proc.join_all(threads)
        return results

    final_nodes = cluster.simulate(main, proc)
    # started all on node 1; the balancer spread them out
    assert len(set(final_nodes)) > 1
    assert balancer.imbalance() <= max(1, 8 - balancer.hints.pending())


def test_load_balancer_daemon_runs_periodically():
    cluster = make_cluster()
    proc = cluster.create_process()
    gate = cluster.engine.event()

    def worker(ctx):
        yield from ctx.migrate(1)
        yield gate
        for _ in range(60):
            yield from ctx.compute(cpu_us=40.0)
            yield from ctx.checkpoint()
        return ctx.node

    threads = [proc.spawn_thread(worker) for _ in range(6)]
    balancer = LoadBalancer(proc)
    cluster.engine.process(balancer.run(interval_us=1_000.0, until=60_000.0))

    def main(ctx):
        yield ctx.engine.timeout(8_000.0)
        gate.succeed()
        results = yield from proc.join_all(threads)
        return results

    final_nodes = cluster.simulate(main, proc)
    assert balancer.rebalances >= 1
    assert len(set(final_nodes)) > 1


def test_affinity_balancer_moves_thread_to_its_data():
    """A thread at the origin hammering pages owned by node 2 should be
    steered to node 2."""
    cluster = make_cluster()
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    tracer = FaultTracer()
    proc.attach_tracer(tracer)
    data = alloc_array(alloc, np.int64, 4096, name="remote_data",
                       page_aligned=True)
    balancer = AffinityBalancer(proc, min_faults=3)

    def owner(ctx):
        # node 2 produces the data, becoming its exclusive owner
        yield from ctx.migrate(2)
        yield from data.write(ctx, 0, np.arange(4096, dtype=np.int64))
        yield from ctx.migrate_back()

    def consumer(ctx, start_evt):
        yield start_evt
        total = 0
        for rounds in range(3):
            arr = yield from data.read(ctx, site="consumer")
            total += int(arr.sum())
            yield from ctx.compute(cpu_us=50.0)
            # let the policy look at the trace and maybe move us
            balancer.observe_trace(tracer)
            balancer.steer()
            moved = yield from ctx.checkpoint()
            if moved is not None:
                break
        return ctx.node

    start_evt = cluster.engine.event()
    t_owner = proc.spawn_thread(owner)
    t_consumer = proc.spawn_thread(consumer, start_evt)

    def main(ctx):
        yield t_owner.sim_process
        start_evt.succeed()
        results = yield from proc.join_all([t_consumer])
        return results[0]

    # consumer's faults pull pages owned by node 2 -> steered there
    final_node = cluster.simulate(main, proc)
    assert final_node == 2
