"""Unit tests for the interconnect: verbs, RDMA paths, pools, ordering."""

import pytest

from repro.net import Message, MsgType, Network
from repro.net.verbs import RouterError
from repro.params import SimParams
from repro.sim import Engine


def make_net(num_nodes=2, **overrides):
    params = SimParams(**overrides) if overrides else SimParams()
    eng = Engine()
    return eng, Network(eng, num_nodes, params), params


def test_request_reply_roundtrip():
    eng, net, params = make_net()

    def handler(msg):
        yield from net.send(msg.make_reply(MsgType.PONG, {"echo": msg.payload["x"]}))

    net.router(1).register(MsgType.PING, handler)

    def client():
        reply = yield from net.request(
            Message(MsgType.PING, 0, 1, payload={"x": 7})
        )
        return reply.payload["echo"], eng.now

    echo, rtt = eng.run_process(client())
    assert echo == 7
    # at least two wire latencies plus processing
    assert rtt > 2 * params.wire_latency


def test_self_send_rejected():
    eng, net, _ = make_net()
    with pytest.raises(ValueError):
        net.connection(0, 0)


def test_same_node_request_is_loopback():
    """src == dst bypasses connections, pools, and the wire entirely:
    delivery is synchronous kernel-local dispatch at zero simulated cost."""
    eng, net, _ = make_net()

    def handler(msg):
        yield from net.send(msg.make_reply(MsgType.PONG, {"echo": 1}))

    net.router(0).register(MsgType.PING, handler)

    def client():
        start = eng.now
        reply = yield from net.request(Message(MsgType.PING, 0, 0))
        return reply.payload["echo"], eng.now - start

    echo, elapsed = eng.run_process(client())
    assert echo == 1
    assert elapsed == 0.0                 # no wire latency charged
    assert net.loopback_deliveries == 2   # request and reply
    assert net.messages_sent == 2
    # no pool slot was ever taken for the loopback traffic
    assert all(
        conn.send_pool.acquisitions == 0 for conn in net.connections.values()
    )


def test_unhandled_message_type_raises():
    eng, net, _ = make_net()
    net.post(Message(MsgType.PING, 0, 1))
    with pytest.raises(RouterError):
        eng.run()


def test_page_data_takes_longer_than_control():
    """A grant with 4KB payload must cost more wire time than a bare one."""

    def measure(attach_data: bool) -> float:
        eng, net, _ = make_net()

        def handler(msg):
            data = bytes(4096) if attach_data else None
            yield from net.send(
                msg.make_reply(MsgType.PAGE_GRANT, {"outcome": "grant"}, page_data=data)
            )

        net.router(1).register(MsgType.PAGE_REQUEST, handler)

        def client():
            yield from net.request(
                Message(MsgType.PAGE_REQUEST, 0, 1, payload={})
            )
            return eng.now

        return eng.run_process(client())

    assert measure(True) > measure(False) + 1.0


def test_transfer_mode_cost_ordering():
    """The paper's hybrid beats both verb-only and per-page registration."""

    def measure(mode: str) -> float:
        eng, net, _ = make_net(page_transfer_mode=mode)

        def handler(msg):
            yield from net.send(
                msg.make_reply(
                    MsgType.PAGE_GRANT, {"outcome": "grant"}, page_data=bytes(4096)
                )
            )

        net.router(1).register(MsgType.PAGE_REQUEST, handler)

        def client():
            yield from net.request(Message(MsgType.PAGE_REQUEST, 0, 1))
            return eng.now

        return eng.run_process(client())

    hybrid = measure("rdma_sink")
    verb = measure("verb")
    register = measure("rdma_register")
    assert hybrid < verb
    assert hybrid < register
    # dynamic region registration is the worst, as §III-E argues
    assert register > verb


def test_unknown_transfer_mode_rejected():
    eng, net, _ = make_net(page_transfer_mode="bogus")

    def handler(msg):
        yield from net.send(
            msg.make_reply(MsgType.PAGE_GRANT, {}, page_data=bytes(4096))
        )

    net.router(1).register(MsgType.PAGE_REQUEST, handler)

    def client():
        yield from net.request(Message(MsgType.PAGE_REQUEST, 0, 1))

    eng.process(client())
    # the handler's send fails; handler failures are surfaced loudly
    with pytest.raises(ValueError, match="page_transfer_mode"):
        eng.run()


def test_in_order_delivery_despite_size_skew():
    """A big page message posted first must be dispatched before a small
    control message posted right after it (RC ordering)."""
    eng, net, _ = make_net()
    arrivals = []

    def grant_handler(msg):
        arrivals.append("big")
        yield eng.timeout(0)

    def ping_handler(msg):
        arrivals.append("small")
        yield eng.timeout(0)

    net.router(1).register(MsgType.PAGE_GRANT, grant_handler)
    net.router(1).register(MsgType.PING, ping_handler)

    def sender():
        yield from net.send(
            Message(MsgType.PAGE_GRANT, 0, 1, page_data=bytes(4096))
        )
        yield from net.send(Message(MsgType.PING, 0, 1))

    eng.run_process(sender())
    eng.run()
    assert arrivals == ["big", "small"]


def test_send_pool_backpressure():
    """With a single-chunk send pool, many simultaneous posts serialize and
    the pool records stalls."""
    eng, net, _ = make_net(send_pool_chunks=1)
    received = []

    def handler(msg):
        received.append(msg.payload["i"])
        yield eng.timeout(0)

    net.router(1).register(MsgType.PING, handler)

    def sender(i):
        yield from net.send(Message(MsgType.PING, 0, 1, payload={"i": i}))

    for i in range(5):
        eng.process(sender(i))
    eng.run()
    assert sorted(received) == list(range(5))
    conn = net.connection(0, 1)
    assert conn.send_pool.stalls > 0


def test_rdma_sink_backpressure():
    eng, net, _ = make_net(rdma_sink_chunks=1)
    received = []

    def handler(msg):
        received.append(msg.msg_id)
        yield eng.timeout(0)

    net.router(1).register(MsgType.PAGE_GRANT, handler)

    def sender():
        yield from net.send(
            Message(MsgType.PAGE_GRANT, 0, 1, page_data=bytes(4096))
        )

    for _ in range(4):
        eng.process(sender())
    eng.run()
    assert len(received) == 4
    assert net.connection(0, 1).rdma_sink.stalls > 0


def test_fair_sharing_on_link():
    """Two concurrent page sends from one node share the link: together
    they take roughly twice as long as one."""

    def measure(count: int) -> float:
        eng, net, _ = make_net(num_nodes=3)
        done = []

        def handler(msg):
            done.append(eng.now)
            yield eng.timeout(0)

        net.router(1).register(MsgType.PAGE_GRANT, handler)
        net.router(2).register(MsgType.PAGE_GRANT, handler)

        def sender(dst):
            # large enough that wire time dominates fixed overheads
            yield from net.send(
                Message(MsgType.PAGE_GRANT, 0, dst, page_data=bytes(1024 * 1024))
            )

        for i in range(count):
            eng.process(sender(1 + i % 2))
        eng.run()
        return max(done)

    one = measure(1)
    two = measure(2)
    assert two > one * 1.5


def test_message_repr_and_sizes():
    msg = Message(MsgType.PAGE_GRANT, 0, 1, page_data=bytes(4096))
    assert msg.data_bytes == 4096
    assert 0 < msg.control_bytes < 256
    assert "page_grant" in repr(msg)


def test_reply_correlation_ids():
    request = Message(MsgType.PING, 0, 1)
    reply = request.make_reply(MsgType.PONG)
    assert reply.reply_to == request.msg_id
    assert reply.src == 1 and reply.dst == 0


def test_pool_pressure_summary():
    eng, net, _ = make_net()
    stats = net.pool_pressure()
    assert stats == {"send": 0, "recv": 0, "sink": 0}
