"""Tests for on-demand VMA synchronization (§III-D)."""

from repro.core.errors import SegmentationFault
from repro.memory.vma import Protection

from conftest import make_cluster

GLOBALS = 0x1000_0000


def test_remote_learns_vma_on_demand():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(1)
        value = yield from ctx.read_i64(GLOBALS)  # replica miss -> query
        return value

    assert cluster.simulate(main, proc) == 0
    assert proc.stats.vma_queries == 1
    replica = proc.node_state(1).vma_map
    assert replica.find(GLOBALS) is not None
    assert replica.find(GLOBALS).tag == "globals"


def test_vma_replica_reused_no_requery():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(1)
        yield from ctx.read_i64(GLOBALS)
        yield from ctx.read_i64(GLOBALS + 8192)  # same VMA, other page
        return None

    cluster.simulate(main, proc)
    assert proc.stats.vma_queries == 1


def test_mmap_visible_remotely_without_broadcast():
    """Permissive operations are not broadcast; remotes pick them up
    lazily."""
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        start = yield from ctx.mmap(8192, tag="fresh")
        yield from ctx.write_i64(start, 5)
        yield from ctx.migrate(1)
        value = yield from ctx.read_i64(start)
        return value

    assert cluster.simulate(main, proc) == 5
    assert proc.stats.vma_shrink_broadcasts == 0


def test_remote_mmap_via_delegation():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(1)
        start = yield from ctx.mmap(4096, tag="remote_alloc")
        yield from ctx.write_i64(start, 11)
        yield from ctx.migrate_back()
        value = yield from ctx.read_i64(start)
        return value

    assert cluster.simulate(main, proc) == 11
    assert proc.stats.delegations >= 1


def test_munmap_broadcast_drops_remote_state():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        start = yield from ctx.mmap(4096, tag="doomed")
        yield from ctx.migrate(1)
        yield from ctx.write_i64(start, 3)       # node 1 owns the page
        yield from ctx.migrate_back()
        yield from ctx.munmap(start, 4096)       # eager shrink broadcast
        return start

    start = cluster.simulate(main, proc)
    assert proc.stats.vma_shrink_broadcasts == 1
    vpn = start // cluster.params.page_size
    remote = proc.node_state(1)
    assert remote.vma_map.find(start) is None
    assert remote.page_table.lookup(vpn) is None
    assert vpn not in remote.frames
    assert proc.protocol.directory.lookup(vpn) is None


def test_access_after_munmap_segfaults_remotely():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        start = yield from ctx.mmap(4096, tag="gone")
        yield from ctx.migrate(1)
        yield from ctx.write_i64(start, 1)
        yield from ctx.migrate_back()
        yield from ctx.munmap(start, 4096)
        yield from ctx.migrate(1)
        try:
            yield from ctx.read_i64(start)
        except SegmentationFault:
            return "segv"
        return "survived"

    assert cluster.simulate(main, proc) == "segv"


def test_mprotect_downgrade_broadcast_and_enforcement():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        start = yield from ctx.mmap(4096, tag="ro_later")
        yield from ctx.migrate(1)
        yield from ctx.write_i64(start, 1)
        yield from ctx.migrate_back()
        yield from ctx.mprotect(start, 4096, int(Protection.READ))
        yield from ctx.migrate(1)
        value = yield from ctx.read_i64(start)   # reads still fine
        try:
            yield from ctx.write_i64(start, 2)   # writes must trap
        except SegmentationFault:
            return ("segv", value)
        return ("survived", value)

    result = cluster.simulate(main, proc)
    assert result == ("segv", 1)
    assert proc.stats.vma_shrink_broadcasts == 1


def test_mprotect_upgrade_not_broadcast():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        start = yield from ctx.mmap(4096, prot=int(Protection.READ), tag="up")
        yield from ctx.migrate(1)
        _ = yield from ctx.read_i64(start)
        yield from ctx.migrate_back()
        yield from ctx.mprotect(start, 4096, int(Protection.READ_WRITE))
        return None

    cluster.simulate(main, proc)
    assert proc.stats.vma_shrink_broadcasts == 0
