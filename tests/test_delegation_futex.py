"""Tests for work delegation (§III-A) and the distributed futex."""

import pytest

from repro.core.errors import DexError
from repro.runtime import MemoryAllocator

from conftest import make_cluster

GLOBALS = 0x1000_0000


def test_delegated_noop_roundtrip():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(1)
        result = yield from proc.delegation.call(ctx.node, ctx.tid, "noop")
        yield from ctx.migrate_back()
        return result

    assert cluster.simulate(main, proc) == "ok"
    assert proc.stats.delegations == 1


def test_delegation_at_origin_is_direct():
    cluster = make_cluster()
    proc = cluster.create_process()

    def main(ctx):
        result = yield from proc.delegation.call(ctx.node, ctx.tid, "noop")
        return result

    assert cluster.simulate(main, proc) == "ok"
    assert proc.stats.delegations == 0  # no message needed


def test_unknown_op_rejected_locally():
    cluster = make_cluster()
    proc = cluster.create_process()

    def main(ctx):
        try:
            yield from proc.delegation.call(ctx.node, ctx.tid, "fly")
        except DexError:
            return "rejected"

    assert cluster.simulate(main, proc) == "rejected"


def test_duplicate_op_registration_rejected():
    cluster = make_cluster()
    proc = cluster.create_process()
    with pytest.raises(DexError):
        proc.delegation.register("noop", lambda ctx: None)


def test_custom_delegated_op():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()
    log = []

    def audit(origin_ctx, message):
        log.append(message)
        yield proc.cluster.engine.timeout(1.0)
        return len(log)

    proc.delegation.register("audit", audit)

    def main(ctx):
        yield from ctx.migrate(1)
        n = yield from proc.delegation.call(ctx.node, ctx.tid, "audit",
                                            message="hello")
        return n

    assert cluster.simulate(main, proc) == 1
    assert log == ["hello"]


# ---------------------------------------------------------------------------
# futex
# ---------------------------------------------------------------------------


def test_futex_wait_eagain_when_value_changed():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.write_u32(GLOBALS, 7)
        yield from ctx.migrate(1)
        result = yield from ctx.futex_wait(GLOBALS, expected=3)
        return result

    assert cluster.simulate(main, proc) == "eagain"


def test_futex_wake_with_no_waiters_returns_zero():
    cluster = make_cluster()
    proc = cluster.create_process()

    def main(ctx):
        woken = yield from ctx.futex_wake(GLOBALS, 5)
        return woken

    assert cluster.simulate(main, proc) == 0


def test_futex_cross_node_wait_wake():
    """A remote thread sleeps on a futex word; another remote thread on a
    different node wakes it — both via delegation to the origin."""
    cluster = make_cluster(num_nodes=3)
    proc = cluster.create_process()
    events = []

    def sleeper(ctx):
        yield from ctx.migrate(1)
        result = yield from ctx.futex_wait(GLOBALS, expected=0)
        events.append(("woken", ctx.now))
        return result

    def waker(ctx):
        yield from ctx.migrate(2)
        yield ctx.engine.timeout(3000.0)
        yield from ctx.write_u32(GLOBALS, 1)
        woken = yield from ctx.futex_wake(GLOBALS, 1)
        events.append(("wake_sent", ctx.now))
        return woken

    t1 = proc.spawn_thread(sleeper)
    t2 = proc.spawn_thread(waker)

    def main(ctx):
        results = yield from proc.join_all([t1, t2])
        return results

    results = cluster.simulate(main, proc)
    assert results == ["woken", 1]
    assert proc.stats.futex_waits == 1
    assert proc.stats.futex_wakes == 1


def test_futex_wake_count_limits_wakeups():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()
    woken_order = []

    def sleeper(ctx, tag):
        result = yield from ctx.futex_wait(GLOBALS, expected=0)
        woken_order.append(tag)
        return result

    sleepers = [proc.spawn_thread(sleeper, i) for i in range(3)]

    def main(ctx):
        yield ctx.engine.timeout(100.0)
        woken = yield from ctx.futex_wake(GLOBALS, 2)
        yield ctx.engine.timeout(100.0)
        assert woken == 2
        assert len(woken_order) == 2
        # wake the last one so the simulation can finish
        yield from ctx.futex_wake(GLOBALS, 10)
        yield from proc.join_all(sleepers)
        return woken_order

    assert cluster.simulate(main, proc) == [0, 1, 2]  # FIFO wake order


def test_futex_pulls_word_through_protocol():
    """The futex value check reads through the DSM at the origin: if a
    remote node holds the word exclusively, the check must see that value
    (the page is pulled back)."""
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(1)
        yield from ctx.write_u32(GLOBALS, 9)  # node 1 exclusive
        # futex compare runs at the origin and must observe 9
        result = yield from ctx.futex_wait(GLOBALS, expected=5)
        return result

    assert cluster.simulate(main, proc) == "eagain"
    # the origin had to fault the page back for the compare
    vpn = GLOBALS // cluster.params.page_size
    entry = proc.protocol.directory.lookup(vpn)
    assert 0 in entry.owners
