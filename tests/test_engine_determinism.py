"""Differential determinism: the DexSpeed fast paths are optimisations,
not semantics.  Every Figure-2 app must produce a bit-identical run —
same simulated time, same fault statistics — with each fast path
disabled: the same-time FIFO fast lane, the inline-resume collapse, and
the message freelist.  Both coherence-directory backends are covered.

The workloads are scaled far below the bench presets: the goal is to
drive every protocol path through both engine configurations, not to
measure anything.
"""

import pytest

from repro.bench.runner import run_point
from repro.net import messages

#: tiny per-app workloads (the differential needs coverage, not load)
APP_OVERRIDES = {
    "GRP": {"text_size": 256 * 1024},
    "KMN": {"n_points": 10_000, "max_iters": 2},
    "BT": {"grid_cells": 32_768, "iters": 1},
    "EP": {"n_pairs": 60_000},
    "FT": {"rows": 64, "cols": 64, "iters": 1},
    "BLK": {"n_options": 20_000},
    "BFS": {"n_vertices": 2_048, "n_edges": 8_000},
    "BP": {"n_vertices": 8_192, "n_edges": 120_000, "iters": 1},
}


def run_digest(app, backend):
    """One n=4 run -> every stable behavioural observable we track."""
    result = run_point(app, "initial", 4, directory=backend,
                       **APP_OVERRIDES[app])
    stats = result.stats
    return {
        "elapsed_us": result.elapsed_us,
        "correct": bool(result.correct),
        "faults": stats.total_faults,
        "retries": stats.fault_retries,
        "coalesced": stats.faults_coalesced,
        "latency_sum_us": round(
            sum(r.latency_us for r in stats.fault_latencies), 6
        ),
        "migrations": len(stats.migrations),
    }


@pytest.mark.parametrize("backend", ["origin", "sharded"])
@pytest.mark.parametrize("app", sorted(APP_OVERRIDES))
def test_fast_paths_are_behaviour_preserving(app, backend, monkeypatch):
    reference = run_digest(app, backend)

    # fast lane and inline resume off (the pre-refactor dispatch shape)
    monkeypatch.setenv("DEX_ENGINE_FASTLANE", "0")
    monkeypatch.setenv("DEX_ENGINE_INLINE", "0")
    assert run_digest(app, backend) == reference, \
        f"{app}/{backend}: engine fast paths changed behaviour"
    monkeypatch.delenv("DEX_ENGINE_FASTLANE")
    monkeypatch.delenv("DEX_ENGINE_INLINE")

    # message freelist off (every message freshly allocated)
    monkeypatch.setattr(messages, "FREELIST_DEFAULT", False)
    assert run_digest(app, backend) == reference, \
        f"{app}/{backend}: message freelist changed behaviour"


def test_freelist_knob_reaches_network(monkeypatch):
    """The Network snapshots the freelist default at construction."""
    from repro import DexCluster

    assert DexCluster(num_nodes=2).net._recycle is True
    monkeypatch.setattr(messages, "FREELIST_DEFAULT", False)
    assert DexCluster(num_nodes=2).net._recycle is False


def test_recycled_messages_get_fresh_ids():
    """Freelist reuse must never recycle a message identity: msg_id always
    comes from the global counter, so reply matching and the transport's
    dedup window keep working."""
    messages._freelist.clear()  # earlier runs may have filled it to cap
    msg = messages.obtain_message(messages.MsgType.PING, src=0, dst=1)
    first_id = msg.msg_id
    messages.recycle_message(msg)
    again = messages.obtain_message(messages.MsgType.PING, src=0, dst=1)
    assert again is msg  # actually reused ...
    assert again.msg_id > first_id  # ... under a fresh identity
    assert again.payload == {} and again.page_data is None
