"""The subsystem's standing bargain: with chaos off, nothing changes.
No controller is built, the single-shot request path runs, and sim time is
bit-identical run to run; cancellable timeouts never advance the clock."""

import pytest

from repro.chaos import resolve_chaos_mode, run_pagefault_micro
from repro.core import DexCluster
from repro.sim import Engine


@pytest.fixture(autouse=True)
def chaos_env_unset(monkeypatch):
    monkeypatch.delenv("DEX_CHAOS", raising=False)


def test_cluster_has_no_controller_by_default():
    cluster = DexCluster(num_nodes=2)
    assert cluster.chaos is None
    assert cluster.net.chaos is None


def test_resolve_chaos_mode_off_values():
    for off in ("", "0", "off", "none", "false", "no", "OFF"):
        assert resolve_chaos_mode(off) is None
    assert resolve_chaos_mode("1") == "on"
    assert resolve_chaos_mode("scenario.json") == "scenario.json"


def test_chaos_off_sim_time_is_bit_identical():
    a = run_pagefault_micro(None)
    b = run_pagefault_micro(None)
    assert a["ok"] and b["ok"]
    assert a["report"] is None and b["report"] is None
    assert a["elapsed_us"] == b["elapsed_us"]


def test_chaos_off_matches_with_pinned_seed():
    """The engine seed changes workload RNG draws, never event timing of a
    deterministic run: two different seeds agree on the micro's sim time
    (nothing in the micro draws randomness)."""
    a = run_pagefault_micro(None, seed=1)
    b = run_pagefault_micro(None, seed=2)
    assert a["elapsed_us"] == b["elapsed_us"]


def test_cancelled_timeout_does_not_advance_clock():
    """An abandoned deadline must not distort final sim time when run()
    drains the queue — the transport cancels retry deadlines that lost
    their race."""
    engine = Engine()
    keep = engine.timeout(50.0)
    abandoned = engine.timeout(10_000.0)
    abandoned.cancel()
    engine.run()
    assert keep.triggered
    assert engine.now == 50.0
    assert engine._cancelled_entries == 0


def test_cancel_after_trigger_is_a_no_op():
    engine = Engine()
    timeout = engine.timeout(5.0)
    engine.run()
    assert engine.now == 5.0
    timeout.cancel()  # already fired: nothing to skip
    assert engine._cancelled_entries == 0


def test_double_cancel_counts_once():
    engine = Engine()
    timeout = engine.timeout(100.0)
    timeout.cancel()
    timeout.cancel()
    assert engine._cancelled_entries == 1
    engine.run()
    assert engine.now == 0.0
    assert engine._cancelled_entries == 0
