"""Unit + property tests for the ownership-directory radix tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.radix_tree import RadixTree

KEY = st.integers(min_value=0, max_value=(1 << 48) - 1)


def test_insert_and_get():
    tree = RadixTree()
    tree.insert(0, "zero")
    tree.insert(12345, "v")
    assert tree.get(0) == "zero"
    assert tree.get(12345) == "v"
    assert tree.get(99) is None
    assert tree.get(99, default="d") == "d"
    assert len(tree) == 2


def test_overwrite_does_not_grow():
    tree = RadixTree()
    tree.insert(7, "a")
    tree.insert(7, "b")
    assert tree.get(7) == "b"
    assert len(tree) == 1


def test_delete_and_prune():
    tree = RadixTree()
    tree.insert(1 << 40, "far")
    assert tree.delete(1 << 40)
    assert not tree.delete(1 << 40)
    assert len(tree) == 0
    # the root must have been pruned back to empty
    assert tree._root.count == 0


def test_none_value_rejected():
    tree = RadixTree()
    with pytest.raises(ValueError):
        tree.insert(1, None)


def test_key_out_of_range_rejected():
    tree = RadixTree()
    with pytest.raises(KeyError):
        tree.insert(1 << 48, "too big")
    with pytest.raises(KeyError):
        tree.get(-1)


def test_contains():
    tree = RadixTree()
    tree.insert(5, "v")
    assert 5 in tree
    assert 6 not in tree


def test_setdefault():
    tree = RadixTree()
    first = tree.setdefault(9, list)
    first.append(1)
    second = tree.setdefault(9, list)
    assert second == [1]
    assert first is second


def test_iter_range_ordered():
    tree = RadixTree()
    keys = [5, 100, 3, 70, 64, 65, 1 << 30]
    for k in keys:
        tree.insert(k, k * 2)
    assert [k for k, _ in tree.items()] == sorted(keys)
    assert [k for k, _ in tree.iter_range(64, 101)] == [64, 65, 70, 100]
    assert list(tree.iter_range(101, 64)) == []
    assert [k for k, _ in tree.iter_range(0, 4)] == [3]


def test_iter_range_boundaries_exclusive_stop():
    tree = RadixTree()
    tree.insert(10, "a")
    tree.insert(11, "b")
    assert [k for k, _ in tree.iter_range(10, 11)] == [10]


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "get"]), KEY),
        max_size=200,
    )
)
def test_matches_dict_model(ops):
    """Property: the radix tree behaves exactly like a dict, and ordered
    iteration matches sorted(dict)."""
    tree = RadixTree()
    model = {}
    for op, key in ops:
        if op == "insert":
            tree.insert(key, key)
            model[key] = key
        elif op == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    assert len(tree) == len(model)
    assert [k for k, _ in tree.items()] == sorted(model)


@settings(max_examples=30, deadline=None)
@given(keys=st.sets(KEY, max_size=50), lo=KEY, hi=KEY)
def test_range_scan_matches_model(keys, lo, hi):
    tree = RadixTree()
    for k in keys:
        tree.insert(k, str(k))
    expected = sorted(k for k in keys if lo <= k < hi)
    assert [k for k, _ in tree.iter_range(lo, hi)] == expected
