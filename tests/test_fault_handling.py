"""Tests for leader-follower fault coalescing (§III-C) and fault retries."""

from repro.runtime import MemoryAllocator

from conftest import make_cluster

GLOBALS = 0x1000_0000


def _same_page_readers(enable_coalescing: bool):
    """Eight threads on one remote node fault on the same cold page at the
    same instant."""
    cluster = make_cluster(
        num_nodes=2, enable_fault_coalescing=enable_coalescing
    )
    proc = cluster.create_process()
    gate = cluster.engine.event()

    def reader(ctx):
        yield from ctx.migrate(1)
        yield gate
        value = yield from ctx.read_i64(GLOBALS)
        return value

    threads = [proc.spawn_thread(reader) for _ in range(8)]

    def main(ctx):
        yield from ctx.write_i64(GLOBALS, 77)
        yield ctx.engine.timeout(5000.0)  # let everyone migrate and park
        gate.succeed()
        results = yield from proc.join_all(threads)
        return results

    results = cluster.simulate(main, proc)
    assert results == [77] * 8
    proc.protocol.check_invariants()
    return proc.stats


def test_followers_coalesce_into_one_protocol_request():
    stats = _same_page_readers(enable_coalescing=True)
    # one leader fault, seven followers
    assert stats.faults_coalesced == 7
    assert stats.pages_transferred == 1
    assert stats.fault_retries == 0


def test_coalescing_off_multiplies_protocol_traffic():
    on = _same_page_readers(enable_coalescing=True)
    off = _same_page_readers(enable_coalescing=False)
    assert off.faults_coalesced == 0
    # every thread runs the protocol itself; later ones are no-op grants
    # or retries, but each is a full round trip to the origin
    assert off.total_faults - off.faults_coalesced > 1
    assert (off.fault_retries + off.total_faults) > (
        on.fault_retries + on.total_faults - on.faults_coalesced
    )


def test_read_leader_does_not_cover_writer():
    """A thread needing write access must not follow a read leader; it
    re-faults for exclusive ownership afterwards."""
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()
    gate = cluster.engine.event()
    order = []

    def reader(ctx):
        yield from ctx.migrate(1)
        yield gate
        value = yield from ctx.read_i64(GLOBALS)
        order.append(("read", value))

    def writer(ctx):
        yield from ctx.migrate(1)
        yield gate
        yield from ctx.write_i64(GLOBALS, 5)
        order.append(("write", 5))

    t_r = proc.spawn_thread(reader)
    t_w = proc.spawn_thread(writer)

    def main(ctx):
        yield ctx.engine.timeout(5000.0)
        gate.succeed()
        yield from proc.join_all([t_r, t_w])
        final = yield from ctx.read_i64(GLOBALS)
        return final

    final = cluster.simulate(main, proc)
    assert final == 5
    vpn = GLOBALS // cluster.params.page_size
    entry = proc.protocol.directory.lookup(vpn)
    assert entry is not None
    proc.protocol.check_invariants()


def test_contended_page_produces_bimodal_latencies():
    """The §V-D microbenchmark shape: ping-ponging one variable between two
    nodes produces a fast mode and a contended (retried) mode roughly an
    order of magnitude slower."""
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    var = alloc.alloc_global(8, tag="shared")
    deadline = 30_000.0

    def hammer(ctx, dest):
        if dest is not None:
            yield from ctx.migrate(dest)
        count = 0
        while ctx.now < deadline:
            yield from ctx.atomic_add_i64(var, 1)
            yield from ctx.compute(cpu_us=0.1)
            count += 1
        return count

    t1 = proc.spawn_thread(hammer, None)
    t2 = proc.spawn_thread(hammer, 1)

    def main(ctx):
        counts = yield from proc.join_all([t1, t2])
        total = yield from ctx.read_i64(var)
        return counts, total

    (counts, total) = cluster.simulate(main, proc)
    assert total == sum(counts)  # no lost updates
    stats = proc.stats
    fast = [r.latency_us for r in stats.fault_latencies
            if r.retries == 0 and not r.coalesced]
    slow = [r.latency_us for r in stats.fault_latencies if r.retries > 0]
    assert len(fast) > 10 and len(slow) > 10
    mean_fast = sum(fast) / len(fast)
    mean_slow = sum(slow) / len(slow)
    assert 10.0 < mean_fast < 30.0          # paper: 19.3us
    assert 100.0 < mean_slow < 250.0        # paper: 158.8us
    assert mean_slow / mean_fast > 4.0      # clearly bimodal


def test_fault_latency_summary():
    cluster = make_cluster(num_nodes=2)

    def main(ctx):
        yield from ctx.migrate(1)
        yield from ctx.write_i64(GLOBALS, 1)
        yield from ctx.migrate_back()

    proc = cluster.create_process()
    cluster.simulate(main, proc)
    summary = proc.stats.latency_summary()
    assert summary["fast_path_count"] == 1
    assert summary["fast_path_mean_us"] > 5.0
