"""Process churn: a long-lived cluster that runs many short-lived
processes (the DexServe tenant pattern) must not accumulate per-process
state, and retiring processes must not perturb simulation determinism
— two clusters with the same seed produce bit-identical engine digests
after a thousand create/simulate/retire cycles."""

import gc
import weakref

import numpy as np
import pytest

from repro.core.cluster import DexCluster
from repro.core.errors import DexError
from repro.params import SimParams
from repro.runtime import MemoryAllocator
from repro.runtime.array import alloc_array

ROUNDS = 1_000
PAGES_EVERY = 25  # every Nth round also allocates and touches pages


def churn(seed):
    cluster = DexCluster(num_nodes=2, params=SimParams().copy(seed=seed))
    refs = []
    checksum = 0.0
    for i in range(ROUNDS):
        proc = cluster.create_process(name=f"churn-{i}")
        if i % PAGES_EVERY == 0:
            alloc = MemoryAllocator(proc)
            arr = alloc_array(alloc, np.float64, 512, name=f"a{i}",
                              page_aligned=True)

            def main(ctx, arr=arr, i=i):
                yield from arr.write(
                    ctx, 0, np.arange(512, dtype=np.float64) + i)
                got = yield from arr.read(ctx, 0, 512)
                yield from ctx.compute(cpu_us=1.0)
                return float(got.sum())

        else:

            def main(ctx):
                yield from ctx.compute(cpu_us=1.0)
                return 0.0

        checksum += cluster.simulate(main, proc)
        cluster.retire_process(proc)
        refs.append(weakref.ref(proc))
        del proc
    digest = (cluster.engine.now, cluster.engine._seq,
              cluster.engine.events_dispatched)
    return cluster, refs, digest, checksum


def test_churn_is_bounded_and_deterministic():
    cluster, refs, digest, checksum = churn(seed=21)
    # no per-process state left behind on the cluster
    assert len(cluster.processes) == 0
    # retired processes are actually collectable: nothing (engine,
    # nodes, frame stores) pins them once released
    gc.collect()
    alive = sum(1 for r in refs if r() is not None)
    assert alive <= 2, f"{alive} of {ROUNDS} retired processes still pinned"

    # same seed, same churn -> bit-identical engine digest and results
    cluster2, _, digest2, checksum2 = churn(seed=21)
    assert digest == digest2
    assert checksum == checksum2
    assert len(cluster2.processes) == 0


def test_retire_refuses_live_threads():
    cluster = DexCluster(num_nodes=2, params=SimParams().copy(seed=4))
    proc = cluster.create_process(name="undying")
    ev = cluster.engine.event(name="never")

    def parked(ctx):
        yield ev

    proc.spawn_thread(parked, name="parked")
    with pytest.raises(DexError, match="still alive"):
        cluster.retire_process(proc)
    # force sweeps it (the recovery path for fail-stopped processes)
    cluster.retire_process(proc, force=True)
    assert len(cluster.processes) == 0
    ev.succeed()  # let the engine drain the parked event
    cluster.run()


def test_release_clears_node_state():
    cluster = DexCluster(num_nodes=2, params=SimParams().copy(seed=5))
    proc = cluster.create_process(name="stateful")
    alloc = MemoryAllocator(proc)
    arr = alloc_array(alloc, np.float64, 256, name="s", page_aligned=True)

    def main(ctx):
        yield from arr.write(ctx, 0, np.zeros(256))
        yield from ctx.migrate(1)
        got = yield from arr.read(ctx, 0, 256)
        yield from ctx.migrate_back()
        return float(got.sum())

    assert cluster.simulate(main, proc) == 0.0
    assert len(proc._node_states) > 0
    cluster.retire_process(proc)
    assert len(proc._node_states) == 0
    assert len(proc.threads) == 0
    assert len(proc.nodes_with_worker) == 0
