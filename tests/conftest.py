"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import DexCluster, SimParams
from repro.runtime import MemoryAllocator


def make_cluster(num_nodes: int = 4, **param_overrides) -> DexCluster:
    """A cluster with optional SimParams field overrides."""
    params = SimParams(**param_overrides) if param_overrides else SimParams()
    return DexCluster(num_nodes=num_nodes, params=params)


def run_main(cluster: DexCluster, main, *args):
    """Run *main(ctx, *args)* in a fresh process; returns (result, proc)."""
    proc = cluster.create_process()
    result = cluster.simulate(main, proc, *args)
    return result, proc


@pytest.fixture
def cluster():
    return make_cluster()


@pytest.fixture
def cluster2():
    return make_cluster(num_nodes=2)


@pytest.fixture
def proc(cluster):
    return cluster.create_process()


@pytest.fixture
def alloc(proc):
    return MemoryAllocator(proc)
