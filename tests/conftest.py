"""Shared fixtures and helpers for the test suite.

Setting ``DEX_TEST_DIRECTORY=sharded`` in the environment runs every test
built through :func:`make_cluster` under the sharded coherence-directory
backend (the CI matrix exercises both), and an autouse fixture checks the
protocol invariants of every process at test teardown for whichever
backend ran.
"""

from __future__ import annotations

import os

import pytest

from repro import DexCluster, SimParams
from repro.runtime import MemoryAllocator

#: directory backend under test; "origin" unless the environment says so
TEST_DIRECTORY = os.environ.get("DEX_TEST_DIRECTORY", "origin")


def make_cluster(num_nodes: int = 4, **param_overrides) -> DexCluster:
    """A cluster with optional SimParams field overrides."""
    param_overrides.setdefault("directory", TEST_DIRECTORY)
    params = SimParams(**param_overrides)
    return DexCluster(num_nodes=num_nodes, params=params)


def run_main(cluster: DexCluster, main, *args):
    """Run *main(ctx, *args)* in a fresh process; returns (result, proc)."""
    proc = cluster.create_process()
    result = cluster.simulate(main, proc, *args)
    return result, proc


@pytest.fixture(autouse=True)
def check_protocol_invariants(monkeypatch):
    """Validate directory/PTE consistency for every cluster a test built.

    Every :class:`DexCluster` constructed during the test is recorded; at
    teardown, each of its processes gets a
    :meth:`ConsistencyProtocol.check_invariants` pass — but only when the
    cluster is quiescent (no pending events), since mid-operation state is
    legitimately inconsistent in tests that stop the engine early."""
    clusters = []
    original_init = DexCluster.__init__

    def recording_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        clusters.append(self)

    monkeypatch.setattr(DexCluster, "__init__", recording_init)
    yield
    for cluster in clusters:
        if cluster.engine._queue:
            continue
        for process in cluster.processes.values():
            process.protocol.check_invariants()


@pytest.fixture
def cluster():
    return make_cluster()


@pytest.fixture
def cluster2():
    return make_cluster(num_nodes=2)


@pytest.fixture
def proc(cluster):
    return cluster.create_process()


@pytest.fixture
def alloc(proc):
    return MemoryAllocator(proc)
