"""Causal span tracing: nesting, cross-process propagation, and the
acceptance scenario — one contended write fault rendering as a single
connected tree spanning requester -> home -> revoked victim."""

import pytest

from repro import DexCluster, SimParams
from repro.obs.export import check_trace_tree, cross_node_traces
from repro.obs.tracing import NULL_SPAN, Tracer, maybe_span
from repro.runtime import MemoryAllocator
from repro.sim import Engine


# -- in-process mechanics ------------------------------------------------------


def test_spans_nest_within_one_process():
    engine = Engine()
    tracer = Tracer(engine)

    def work():
        with tracer.span("outer", node=0, tid=1) as outer:
            yield engine.timeout(5)
            with tracer.span("inner", node=0, tid=1) as inner:
                yield engine.timeout(3)
            assert inner.end_us == 8.0
        assert outer.end_us == 8.0

    engine.process(work())
    engine.run()
    outer, inner = tracer.spans
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer.trace_id == outer.span_id
    assert outer.parent_id is None
    assert outer.start_us == 0.0 and inner.start_us == 5.0


def test_interleaved_processes_do_not_steal_parents():
    engine = Engine()
    tracer = Tracer(engine)

    def worker(name, delay):
        with tracer.span(name, node=0, tid=0):
            # interleave with the other process at every step
            for _ in range(3):
                yield engine.timeout(delay)

    engine.process(worker("a", 1.0))
    engine.process(worker("b", 1.5))
    engine.run()
    a = next(s for s in tracer.spans if s.name == "a")
    b = next(s for s in tracer.spans if s.name == "b")
    # both are roots of their own traces, not children of each other
    assert a.parent_id is None and b.parent_id is None
    assert a.trace_id != b.trace_id


def test_maybe_span_off_is_the_shared_null():
    assert maybe_span(None, "anything", node=3) is NULL_SPAN
    with maybe_span(None, "x") as span:
        assert span is None


def test_max_spans_cap_drops_and_counts():
    engine = Engine()
    tracer = Tracer(engine, max_spans=2)

    def work():
        for i in range(5):
            with tracer.span(f"s{i}"):
                yield engine.timeout(1)

    engine.process(work())
    engine.run()
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3


# -- the cross-node acceptance scenario ----------------------------------------


def _contended_write_run(backend):
    """Thread V writes a page from one node, then thread R writes it from
    another: R's fault goes to the home, which revokes V."""
    cluster = DexCluster(
        num_nodes=4, params=SimParams(trace="1", directory=backend))
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    var = alloc.alloc_global(8, tag="hot")
    home = proc.protocol.directory.home(var // cluster.params.page_size)
    victim, requester = [n for n in range(1, 4) if n != home][:2]

    def writer(ctx, dest):
        yield from ctx.migrate(dest)
        yield from ctx.write_u32(var, dest, site=f"w{dest}")
        yield from ctx.migrate_back()

    def main(ctx):
        t1 = ctx.spawn(writer, victim)
        yield from ctx.join(t1)
        t2 = ctx.spawn(writer, requester)
        yield from ctx.join(t2)

    cluster.simulate(main, proc)
    return cluster, victim, requester


@pytest.mark.parametrize("backend", ["origin", "sharded"])
def test_contended_write_fault_is_one_connected_tree(backend):
    cluster, victim, requester = _contended_write_run(backend)
    spans = cluster.tracer.spans
    fault = next(
        s for s in spans
        if s.name == "fault" and s.node == requester and s.attrs.get("write")
    )
    report = check_trace_tree(spans, fault.trace_id)
    assert report.connected, report.format()
    assert len(report.nodes) >= 3, report.format()
    names = {s.name for s in report.spans}
    assert {"fault", "fault.acquire", "protocol.grant",
            "protocol.revoke", "rx.page_invalidate"} <= names
    # the revocation leg really reached the victim node
    inval = next(s for s in report.spans if s.name == "rx.page_invalidate")
    assert inval.node == victim
    # and the tree is found by the CLI's cross-node query too
    assert any(r.trace_id == fault.trace_id
               for r in cross_node_traces(spans, min_nodes=3))


def test_all_spans_closed_after_quiescence():
    cluster, _, _ = _contended_write_run("origin")
    open_spans = [s for s in cluster.tracer.spans if s.end_us is None]
    assert open_spans == []


def test_seeded_bug_broken_link_is_detected():
    # corrupt one parent link of an otherwise-connected tree: the report
    # must flag the orphan instead of calling the tree connected
    cluster, _, requester = _contended_write_run("origin")
    spans = cluster.tracer.spans
    fault = next(
        s for s in spans
        if s.name == "fault" and s.node == requester and s.attrs.get("write")
    )
    members = [s for s in spans if s.trace_id == fault.trace_id]
    child = next(s for s in members if s.parent_id is not None)
    child.parent_id = 10**9  # dangling parent
    report = check_trace_tree(spans, fault.trace_id)
    assert not report.connected
    assert child in report.orphans


def test_seeded_bug_missing_injection_breaks_the_tree(monkeypatch):
    # simulate the regression the tree test exists for: trace context not
    # stamped onto outgoing messages -> every handler starts its own trace
    # and no connected tree crosses 3 nodes
    monkeypatch.setattr(Tracer, "inject", lambda self, msg: None)
    cluster, _, requester = _contended_write_run("origin")
    spans = cluster.tracer.spans
    fault = next(
        s for s in spans
        if s.name == "fault" and s.node == requester and s.attrs.get("write")
    )
    report = check_trace_tree(spans, fault.trace_id)
    assert len(report.nodes) < 3
    assert not any(
        any(s.name == "rx.page_invalidate" for s in r.spans)
        for r in cross_node_traces(spans, min_nodes=3)
    )
