"""Tests for file I/O through work delegation (§III-A)."""

import pytest

from repro.core.errors import DexError

from conftest import make_cluster


def test_read_preloaded_file_from_remote():
    """A remote thread reads a file staged at the origin; the read runs
    at the origin via delegation and the bytes come back intact."""
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()
    proc.files.preload("/data/input.txt", b"hello from the NFS share")

    def main(ctx):
        yield from ctx.migrate(1)
        fd = yield from ctx.fopen("/data/input.txt")
        assert fd >= 3
        first = yield from ctx.fread(fd, 5)
        rest = yield from ctx.fread(fd, 100)
        yield from ctx.fclose(fd)
        yield from ctx.migrate_back()
        return first, rest

    first, rest = cluster.simulate(main, proc)
    assert first == b"hello"
    assert rest == b" from the NFS share"
    assert proc.stats.delegations >= 4  # open/read/read/close went remote
    assert proc.files.ops >= 4


def test_missing_file_returns_enoent():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(1)
        fd = yield from ctx.fopen("/no/such/file")
        return fd

    assert cluster.simulate(main, proc) == -1


def test_write_from_remote_lands_at_origin():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(1)
        fd = yield from ctx.fopen("/out/result.bin", "w")
        written = yield from ctx.fwrite(fd, bytes(range(256)))
        yield from ctx.fclose(fd)
        yield from ctx.migrate_back()
        return written

    assert cluster.simulate(main, proc) == 256
    assert proc.files.contents("/out/result.bin") == bytes(range(256))


def test_append_and_seek():
    cluster = make_cluster()
    proc = cluster.create_process()
    proc.files.preload("/log", b"AAAA")

    def main(ctx):
        fd = yield from ctx.fopen("/log", "a")
        yield from ctx.fwrite(fd, b"BBBB")
        yield from ctx.fseek(fd, 0)
        head = yield from ctx.fread(fd, 8)
        yield from ctx.fclose(fd)
        return head

    assert cluster.simulate(main, proc) == b"AAAABBBB"


def test_sparse_write_zero_fills():
    cluster = make_cluster()
    proc = cluster.create_process()

    def main(ctx):
        fd = yield from ctx.fopen("/sparse", "w")
        yield from ctx.fseek(fd, 4)
        yield from ctx.fwrite(fd, b"XY")
        yield from ctx.fclose(fd)
        return None

    cluster.simulate(main, proc)
    assert proc.files.contents("/sparse") == b"\x00\x00\x00\x00XY"


def test_write_to_readonly_fd_rejected():
    cluster = make_cluster()
    proc = cluster.create_process()
    proc.files.preload("/ro", b"data")

    def main(ctx):
        fd = yield from ctx.fopen("/ro", "r")
        try:
            yield from ctx.fwrite(fd, b"nope")
        except DexError:
            return "rejected"
        return "accepted"

    assert cluster.simulate(main, proc) == "rejected"


def test_bad_fd_rejected():
    cluster = make_cluster()
    proc = cluster.create_process()

    def main(ctx):
        try:
            yield from ctx.fread(99, 4)
        except DexError:
            return "rejected"
        return "accepted"

    assert cluster.simulate(main, proc) == "rejected"


def test_bad_mode_rejected():
    cluster = make_cluster()
    proc = cluster.create_process()

    def main(ctx):
        try:
            yield from ctx.fopen("/x", "rb+")
        except DexError:
            return "rejected"
        return "accepted"

    assert cluster.simulate(main, proc) == "rejected"


def test_two_descriptors_independent_offsets():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()
    proc.files.preload("/shared", b"0123456789")

    def main(ctx):
        yield from ctx.migrate(1)
        fd1 = yield from ctx.fopen("/shared")
        fd2 = yield from ctx.fopen("/shared")
        a = yield from ctx.fread(fd1, 3)
        b = yield from ctx.fread(fd2, 5)
        c = yield from ctx.fread(fd1, 3)
        yield from ctx.fclose(fd1)
        yield from ctx.fclose(fd2)
        return a, b, c

    assert cluster.simulate(main, proc) == (b"012", b"01234", b"345")


def test_contents_of_unknown_file_raises():
    cluster = make_cluster()
    proc = cluster.create_process()
    with pytest.raises(DexError):
        proc.files.contents("/nowhere")
