"""Unit + property tests for VMAs and the address-space map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.vma import VMA, AddressSpaceMap, Protection, VMAError

PAGE = 4096


def test_empty_vma_rejected():
    with pytest.raises(VMAError):
        VMA(100, 100, Protection.READ)


def test_mmap_aligns_to_pages():
    space = AddressSpaceMap()
    vma = space.mmap(PAGE + 5, 10, Protection.READ_WRITE)
    assert vma.start == PAGE
    assert vma.end == 2 * PAGE


def test_mmap_overlap_rejected():
    space = AddressSpaceMap()
    space.mmap(0, PAGE, Protection.READ)
    with pytest.raises(VMAError):
        space.mmap(0, 10, Protection.READ)


def test_mmap_non_positive_length_rejected():
    space = AddressSpaceMap()
    with pytest.raises(VMAError):
        space.mmap(0, 0, Protection.READ)


def test_find():
    space = AddressSpaceMap()
    vma = space.mmap(2 * PAGE, 2 * PAGE, Protection.READ_WRITE, tag="heap")
    assert space.find(2 * PAGE) is vma
    assert space.find(4 * PAGE - 1) is vma
    assert space.find(4 * PAGE) is None
    assert space.find(0) is None


def test_munmap_middle_splits():
    space = AddressSpaceMap()
    space.mmap(0, 4 * PAGE, Protection.READ_WRITE, tag="big")
    removed = space.munmap(PAGE, PAGE)
    assert len(removed) == 1
    assert removed[0].start == PAGE and removed[0].end == 2 * PAGE
    assert space.find(0) is not None
    assert space.find(PAGE) is None
    assert space.find(2 * PAGE) is not None
    assert space.find(2 * PAGE).tag == "big"


def test_munmap_across_vmas():
    space = AddressSpaceMap()
    space.mmap(0, PAGE, Protection.READ)
    space.mmap(PAGE, PAGE, Protection.READ_WRITE)
    removed = space.munmap(0, 2 * PAGE)
    assert len(removed) == 2
    assert len(space) == 0


def test_mprotect_splits_and_changes():
    space = AddressSpaceMap()
    space.mmap(0, 3 * PAGE, Protection.READ_WRITE)
    changed = space.mprotect(PAGE, PAGE, Protection.READ)
    assert len(changed) == 1
    assert space.find(PAGE).prot == Protection.READ
    assert space.find(0).prot == Protection.READ_WRITE
    assert space.find(2 * PAGE).prot == Protection.READ_WRITE
    assert space.find(PAGE).version > 0


def test_mprotect_unmapped_rejected():
    space = AddressSpaceMap()
    space.mmap(0, PAGE, Protection.READ)
    with pytest.raises(VMAError):
        space.mprotect(0, 2 * PAGE, Protection.READ_WRITE)


def test_replace_displaces_overlap():
    space = AddressSpaceMap()
    space.mmap(0, 4 * PAGE, Protection.READ, tag="old")
    space.replace(VMA(PAGE, 3 * PAGE, Protection.READ_WRITE, tag="new", version=7))
    assert space.find(0).tag == "old"
    middle = space.find(PAGE)
    assert middle.tag == "new" and middle.version == 7
    assert space.find(3 * PAGE).tag == "old"


def test_total_mapped():
    space = AddressSpaceMap()
    space.mmap(0, PAGE, Protection.READ)
    space.mmap(8 * PAGE, 2 * PAGE, Protection.READ)
    assert space.total_mapped() == 3 * PAGE


def _non_overlapping(space: AddressSpaceMap) -> bool:
    vmas = list(space)
    for first, second in zip(vmas, vmas[1:]):
        if first.end > second.start:
            return False
    return True


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["mmap", "munmap", "mprotect"]),
            st.integers(min_value=0, max_value=63),  # page index
            st.integers(min_value=1, max_value=8),  # pages
        ),
        max_size=40,
    )
)
def test_random_ops_keep_map_sorted_and_disjoint(ops):
    """Property: after any sequence of manipulations the map stays sorted,
    non-overlapping, and page-aligned."""
    space = AddressSpaceMap()
    for op, page_idx, pages in ops:
        start, length = page_idx * PAGE, pages * PAGE
        try:
            if op == "mmap":
                space.mmap(start, length, Protection.READ_WRITE)
            elif op == "munmap":
                space.munmap(start, length)
            else:
                space.mprotect(start, length, Protection.READ)
        except VMAError:
            pass  # overlap / unmapped: legal rejections
        assert _non_overlapping(space)
        for vma in space:
            assert vma.start % PAGE == 0 and vma.end % PAGE == 0
            assert vma.start < vma.end
