"""Correctness tests for the eight applications.

Every app must compute the same answer as its single-threaded reference in
every variant and at every node count — the distributed shared memory is
the only channel the data travels through, so these tests are end-to-end
checks of the whole stack.  Workloads are tiny; the performance *shapes*
are asserted by the benchmark suite instead.
"""

import numpy as np
import pytest

from repro.apps import APP_NAMES, get_app
from repro.apps import workloads
from repro.apps.common import VARIANTS, AdaptationInfo

#: tiny workloads: fast, still crossing every protocol path
TINY = {
    "GRP": {"text_size": 256 * 1024, "plant_every": 2000},
    "KMN": {"n_points": 6_000, "k": 4, "max_iters": 2},
    "BT": {"grid_cells": 8_192, "iters": 1},
    "EP": {"n_pairs": 64_000},
    "FT": {"rows": 64, "cols": 64, "iters": 1},
    "BLK": {"n_options": 8_000},
    "BFS": {"n_vertices": 2_048, "n_edges": 8_000},
    "BP": {"n_vertices": 2_048, "n_edges": 10_000, "iters": 2},
}


@pytest.mark.parametrize("app", APP_NAMES)
@pytest.mark.parametrize("variant", ["initial", "optimized"])
def test_app_correct_distributed(app, variant):
    """Each app, each variant, on two nodes: output must be correct."""
    result = get_app(app).run(num_nodes=2, variant=variant, **TINY[app])
    assert result.correct, f"{app}/{variant} computed a wrong answer"
    assert result.app == app
    assert result.num_threads == 16
    assert result.elapsed_us > 0


@pytest.mark.parametrize("app", APP_NAMES)
def test_app_correct_single_node_unmodified(app):
    result = get_app(app).run(num_nodes=1, variant="unmodified", **TINY[app])
    assert result.correct
    # unmodified = no migration at all
    assert len(result.stats.migrations) == 0


@pytest.mark.parametrize("app", APP_NAMES)
def test_app_migrates_when_distributed(app):
    result = get_app(app).run(num_nodes=2, variant="initial", **TINY[app])
    forwards = [m for m in result.stats.migrations if m.kind == "forward"]
    assert forwards, f"{app} never migrated a thread"
    assert any(m.dst == 1 for m in forwards)


@pytest.mark.parametrize("app", APP_NAMES)
def test_adaptation_metadata(app):
    info = get_app(app).ADAPTATION
    assert isinstance(info, AdaptationInfo)
    assert info.multithread_impl in ("pthread", "openmp")
    assert 0 < info.initial_loc <= info.optimized_loc
    if info.multithread_impl == "openmp":
        assert info.regions and info.regions > 0


def test_get_app_rejects_unknown():
    with pytest.raises(ValueError):
        get_app("NOPE")


def test_variant_validation():
    with pytest.raises(ValueError):
        get_app("GRP").run(num_nodes=1, variant="bogus", **TINY["GRP"])


def test_app_four_nodes_spot_check():
    """One heavier spot check: KMN across 4 nodes stays correct."""
    result = get_app("KMN").run(num_nodes=4, variant="optimized",
                                **TINY["KMN"])
    assert result.correct
    assert result.num_nodes == 4


# ---------------------------------------------------------------------------
# workload generators
# ---------------------------------------------------------------------------


def test_text_corpus_deterministic_and_planted():
    a = workloads.text_corpus(64 * 1024, seed=1)
    b = workloads.text_corpus(64 * 1024, seed=1)
    assert a == b
    counts = workloads.count_occurrences(a, workloads.DEFAULT_KEYS)
    assert all(c > 0 for c in counts)
    assert workloads.text_corpus(64 * 1024, seed=2) != a


def test_clustered_points_shape():
    pts = workloads.clustered_points(1000, 5)
    assert pts.shape == (1000, 3)
    assert pts.dtype == np.float64


def test_option_batch():
    batch = workloads.option_batch(100)
    assert len(batch) == 100
    prices = workloads.black_scholes_reference(batch)
    assert (prices >= -1e-9).all()  # option prices are non-negative
    # put-call parity spot check on the first call option
    call_idx = int(np.argmax(batch.is_call))
    assert prices[call_idx] > 0


def test_rmat_graph_structure():
    indptr, indices = workloads.rmat_graph(1024, 5000, seed=3)
    n = len(indptr) - 1
    assert n == 1024  # power of two preserved
    assert indptr[0] == 0
    assert indptr[-1] == len(indices)
    assert (np.diff(indptr) >= 0).all()
    assert indices.min() >= 0 and indices.max() < n
    # symmetrized: every edge has its reverse
    edge_set = set()
    for u in range(n):
        for v in indices[indptr[u]:indptr[u + 1]]:
            edge_set.add((u, int(v)))
    assert all((v, u) in edge_set for (u, v) in edge_set)


def test_rmat_graph_deterministic():
    g1 = workloads.rmat_graph(512, 2000, seed=9)
    g2 = workloads.rmat_graph(512, 2000, seed=9)
    assert (g1[0] == g2[0]).all() and (g1[1] == g2[1]).all()


def test_bfs_reference_simple_chain():
    # 0-1-2 chain
    indptr = np.array([0, 1, 3, 4])
    indices = np.array([1, 0, 2, 1])
    dist = workloads.bfs_reference(indptr, indices, 0)
    assert list(dist) == [0, 1, 2]
