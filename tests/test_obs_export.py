"""Exporters: per-phase attribution, Chrome trace JSON, and the CLI."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import DexCluster, SimParams
from repro.obs.export import (
    attribution,
    chrome_trace,
    phase_of,
    phase_totals,
    render_attribution,
    render_timeline,
    render_top_spans,
    write_chrome_trace,
)
from repro.obs.tracing import Span, load_spans
from repro.runtime import MemoryAllocator

REPO_ROOT = Path(__file__).resolve().parents[1]


def S(name, sid, trace, parent, node, tid, start, end, **attrs):
    return Span(name, sid, trace, parent, node, tid, start, end, attrs)


def _traced_run():
    """A 2-node run with migrations and remote write faults."""
    cluster = DexCluster(num_nodes=2, params=SimParams(trace="1"))
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    var = alloc.alloc_global(8, tag="hot")

    def worker(ctx):
        yield from ctx.migrate(1)
        for i in range(4):
            yield from ctx.atomic_add_i64(var, 1, site="w")
            yield from ctx.compute(cpu_us=2.0)
        yield from ctx.migrate_back()

    def main(ctx):
        t = ctx.spawn(worker)
        for i in range(4):
            yield from ctx.atomic_add_i64(var, 1, site="m")
            yield from ctx.compute(cpu_us=2.0)
        yield from ctx.join(t)

    cluster.simulate(main, proc)
    return cluster, proc


# -- attribution ---------------------------------------------------------------


def test_phase_of_mapping():
    assert phase_of("fault") == ("fault_wait", 4)
    assert phase_of("fault.acquire") == ("fault_wait", 4)
    assert phase_of("futex.wait") == ("futex", 5)
    assert phase_of("migration.forward") == ("migration", 3)
    assert phase_of("delegation.call") == ("delegation", 2)
    assert phase_of("compute") == ("compute", 1)
    assert phase_of("net.send") is None
    assert phase_of("rx.page_request") is None


def test_attribution_priority_sweep_avoids_double_counting():
    spans = [
        S("compute", 1, 1, None, 0, 1, 0.0, 100.0),
        S("fault", 2, 1, 1, 0, 1, 10.0, 30.0),
        S("futex.wait", 3, 1, 2, 0, 1, 15.0, 20.0),
    ]
    per_tid = attribution(spans)
    row = per_tid[1]
    assert row["futex"] == pytest.approx(5.0)
    assert row["fault_wait"] == pytest.approx(15.0)
    assert row["compute"] == pytest.approx(80.0)
    assert sum(row.values()) == pytest.approx(100.0)  # no double counting


def test_attribution_excludes_service_spans():
    spans = [
        S("compute", 1, 1, None, 0, 1, 0.0, 10.0),
        S("migration.remote_worker", 2, 1, 1, 1, -1, 0.0, 500.0),
        S("unclosed", 3, 1, 1, 0, 1, 0.0, None),
    ]
    totals = phase_totals(spans)
    assert totals["migration"] == 0.0  # tid=-1 service work not attributed
    assert totals["compute"] == pytest.approx(10.0)


def test_migration_attribution_agrees_with_records():
    # the ISSUE acceptance bar: attributed migration time within 1% of the
    # MigrationRecord ground truth (Table II's source)
    cluster, proc = _traced_run()
    assert proc.stats.migrations
    expected = sum(r.total_us for r in proc.stats.migrations)
    attributed = phase_totals(cluster.tracer.spans)["migration"]
    assert attributed == pytest.approx(expected, rel=0.01)


# -- terminal renders ----------------------------------------------------------


def test_terminal_renders_are_nonempty():
    cluster, _ = _traced_run()
    spans = cluster.tracer.spans
    assert "timeline for trace" in render_timeline(spans)
    assert "top spans by total time" in render_top_spans(spans)
    text = render_attribution(spans)
    assert "fault_wait" in text and "migration" in text


# -- Chrome trace JSON ---------------------------------------------------------


def test_chrome_trace_structure():
    cluster, _ = _traced_run()
    spans = cluster.tracer.spans
    doc = chrome_trace(spans)
    events = doc["traceEvents"]
    # one process_name metadata record per node
    names = {e["pid"]: e["args"]["name"]
             for e in events if e["name"] == "process_name"}
    assert names == {0: "node 0", 1: "node 1"}
    slices = [e for e in events if e["ph"] == "X"]
    assert len(slices) == len(spans)
    for e in slices:
        assert e["dur"] >= 0.0
        assert e["pid"] in (0, 1)
        assert "trace" in e["args"] and "span" in e["args"]
    # app threads on their tid lanes, service work on lanes >= 1000
    lanes = {e["tid"] for e in slices}
    assert lanes & {0, 1}
    assert any(lane >= 1000 for lane in lanes)


def test_chrome_trace_flow_arrows_pair_up():
    cluster, _ = _traced_run()
    doc = chrome_trace(cluster.tracer.spans)
    starts = {e["id"]: e for e in doc["traceEvents"]
              if e["ph"] == "s" and e["cat"] == "flow"}
    finishes = {e["id"]: e for e in doc["traceEvents"]
                if e["ph"] == "f" and e["cat"] == "flow"}
    assert starts and set(starts) == set(finishes)
    for fid, s in starts.items():
        f = finishes[fid]
        assert s["pid"] != f["pid"]       # arrows only across nodes
        assert s["ts"] <= f["ts"] + 1e-9  # emission before arrival
        assert f["bp"] == "e"


def test_flow_start_clamped_into_parent_slice():
    parent = S("net.send", 1, 1, None, 0, -1, 0.0, 10.0)
    child = S("rx.page_request", 2, 1, 1, 1, -1, 12.0, 15.0)
    doc = chrome_trace([parent, child])
    (s,) = [e for e in doc["traceEvents"] if e["ph"] == "s"]
    (f,) = [e for e in doc["traceEvents"] if e["ph"] == "f"]
    assert s["ts"] == 10.0  # clamped to the parent's end
    assert f["ts"] == 12.0


def test_write_chrome_trace_roundtrip(tmp_path):
    cluster, _ = _traced_run()
    out = tmp_path / "trace.json"
    count = write_chrome_trace(str(out), cluster.tracer.spans, dropped=7)
    doc = json.loads(out.read_text())
    assert len(doc["traceEvents"]) == count
    assert doc["otherData"]["spans_dropped"] == 7


def test_span_log_roundtrip(tmp_path):
    cluster, _ = _traced_run()
    path = tmp_path / "spans.json"
    cluster.tracer.save_json(str(path))
    spans, meta = load_spans(str(path))
    assert len(spans) == len(cluster.tracer.spans)
    assert meta["dropped"] == 0
    first = cluster.tracer.spans[0]
    assert spans[0].to_dict() == first.to_dict()


# -- the CLI -------------------------------------------------------------------


def _cli(*args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *args],
        capture_output=True, text=True, env=env, cwd=cwd,
    )


def test_cli_export_pagefault(tmp_path):
    result = _cli(
        "export", "--app", "pagefault", "--duration-us", "1200",
        "--out", "pf.json", cwd=tmp_path,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "wrote" in result.stdout and "ui.perfetto.dev" in result.stdout
    doc = json.loads((tmp_path / "pf.json").read_text())
    assert doc["traceEvents"]
    assert "migration attribution: OK" in result.stdout


def test_cli_run_then_report_from_input(tmp_path):
    cluster, _ = _traced_run()
    path = tmp_path / "spans.json"
    cluster.tracer.save_json(str(path))
    result = _cli("report", "--input", str(path), cwd=tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "per-phase time attribution" in result.stdout
    assert "top spans by total time" in result.stdout
