"""Regression tests for protocol races found during development.

Each of these once produced silent data loss or a deadlock; they all stem
from the optimistic concurrency §III-C describes: multiple in-flight
faults for one page (coalescing disabled), grants crossing invalidations,
and stale retries arriving after the world changed.
"""

import numpy as np

from repro.memory.page_table import PageState
from repro.params import SimParams
from repro.runtime import MemoryAllocator

from conftest import make_cluster

GLOBALS = 0x1000_0000


def test_writer_read_rerequest_keeps_exclusivity():
    """A read request from the current exclusive writer (a stale retry)
    must reaffirm EXCLUSIVE, not downgrade-without-flush."""
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(1)
        yield from ctx.write_i64(GLOBALS, 77)  # node 1 becomes the writer
        # a read request from the writer node, as a stale retry would send
        vpn = GLOBALS // cluster.params.page_size
        outcome = yield from proc.protocol.handle_request(
            requester=1, vpn=vpn, write=False, known_version=-1
        )
        return outcome

    status, state, version, data = cluster.simulate(main, proc)
    assert status == "grant"
    assert state == PageState.EXCLUSIVE.value
    assert data is None
    entry = proc.protocol.directory.lookup(GLOBALS // cluster.params.page_size)
    assert entry.writer == 1  # still the writer; dirty data never stranded
    proc.protocol.check_invariants()


def test_writer_write_rerequest_does_not_bump_version():
    """A write request from the node that already holds the page
    exclusively (second in-flight leader) reaffirms without moving data;
    bumping the version would mark the origin copy stale forever."""
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(1)
        yield from ctx.write_i64(GLOBALS, 5)
        vpn = GLOBALS // cluster.params.page_size
        before = proc.protocol.directory.lookup(vpn).data_version
        outcome = yield from proc.protocol.handle_request(
            requester=1, vpn=vpn, write=True, known_version=0  # stale
        )
        after = proc.protocol.directory.lookup(vpn).data_version
        return outcome, before, after

    (status, state, version, data), before, after = cluster.simulate(main, proc)
    assert status == "grant" and state == PageState.EXCLUSIVE.value
    assert data is None
    assert before == after == version
    proc.protocol.check_invariants()


def test_kmeans_correct_without_coalescing():
    """End-to-end regression: k-means (barriers + hot accumulator page +
    many concurrent leaders per page) with leader-follower coalescing
    disabled.  This run once deadlocked via a grant/invalidate ordering
    race and a stale-retry flushless downgrade."""
    from repro.apps import kmeans

    result = kmeans.run(
        num_nodes=4,
        variant="initial",
        n_points=20_000,
        k=4,
        max_iters=2,
        params=SimParams(enable_fault_coalescing=False),
    )
    assert result.correct


def test_atomic_storm_without_coalescing():
    """Many threads per node hammering one page with coalescing off: no
    lost updates, invariants hold."""
    cluster = make_cluster(num_nodes=4, enable_fault_coalescing=False)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    var = alloc.alloc_global(8, tag="storm")
    per_thread = 20

    def worker(ctx, node):
        yield from ctx.migrate(node)
        for _ in range(per_thread):
            yield from ctx.atomic_add_i64(var, 1)
            yield from ctx.compute(cpu_us=0.4)
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, n % 4) for n in range(16)]

    def main(ctx):
        yield from proc.join_all(threads)
        value = yield from ctx.read_i64(var)
        return value

    assert cluster.simulate(main, proc) == 16 * per_thread
    proc.protocol.check_invariants()


def test_grant_posted_before_busy_clears():
    """The reply to a page request must enter the connection's in-order
    stream before the directory op completes, so a subsequent op's
    invalidation can never overtake the grant.  Reproduced here as a
    mixed read/write storm across four nodes with data verification."""
    cluster = make_cluster(num_nodes=4, enable_fault_coalescing=False)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    slots = alloc.alloc_global(64, tag="slots")

    def writer(ctx, node, slot):
        yield from ctx.migrate(node)
        for i in range(15):
            yield from ctx.write_i64(slots + slot * 8, i, site="w")
            got = yield from ctx.read_i64(slots + slot * 8)
            assert got == i  # read-own-write through all the churn
            yield from ctx.compute(cpu_us=0.7)
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(writer, n, n) for n in range(1, 4)]

    def main(ctx):
        for i in range(15):  # origin participates on its own slot
            yield from ctx.write_i64(slots, i)
            yield from ctx.compute(cpu_us=0.7)
        yield from proc.join_all(threads)
        values = []
        for s in range(4):
            values.append((yield from ctx.read_i64(slots + s * 8)))
        return values

    assert cluster.simulate(main, proc) == [14, 14, 14, 14]
    proc.protocol.check_invariants()
