"""Fail-stop recovery: lease-expiry detection, directory reclamation under
both exclusive-loss policies, dead-thread semantics ("fail loud, never
hang"), and the harness restart policy on a real application."""

import pytest

from repro.chaos import run_pagefault_micro, run_under_chaos
from repro.chaos.scenario import ChaosRule, ChaosScenario
from repro.core import DexCluster
from repro.core.errors import NodeFailedError
from repro.params import SimParams
from repro.runtime import MemoryAllocator


def _crash_scenario(node=1, at_us=None, policy="fail", **match):
    rule = ChaosRule(kind="crash", node=node, at_us=at_us, **match)
    return ChaosScenario(rules=[rule], seed=5,
                         on_exclusive_loss=policy).validate()


def test_crash_mid_run_fails_loud_within_lease_timeout():
    """A predicate crash mid-micro kills the remote thread; the joiner gets
    NodeFailedError (not a hang), and the origin detects the silence within
    one lease timeout plus a check period."""
    scenario = _crash_scenario(node=1, msg_type="delegate", nth=2)
    with pytest.raises(NodeFailedError) as exc_info:
        run_pagefault_micro(scenario)
    assert "node 1" in str(exc_info.value)
    controller = scenario.last_controller
    report = controller.report()
    assert report["crashed"] == [1] and report["failed"] == [1]
    assert report["lease_expiries"] >= 1
    crash_t = next(t for t, w in controller.events if "fail-stop" in w)
    detect_t = next(t for t, w in controller.events if "declared failed" in w)
    params = SimParams()
    budget = params.lease_timeout_us + 2 * params.lease_check_us
    assert detect_t - crash_t <= budget, controller.events


def _exclusive_loss_cluster(policy):
    """Remote thread writes v1, the origin reads it (downgrade-flush to the
    home), the remote writes v2 and is then crashed while holding the page
    exclusively — v2 is the version fail-stop loses."""
    scenario = _crash_scenario(node=1, at_us=6000.0, policy=policy)
    params = SimParams(chaos_scenario=scenario, sanitize="1", seed=5)
    cluster = DexCluster(num_nodes=2, params=params)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    var = alloc.alloc_global(8, tag="xloss")

    def remote(ctx):
        yield from ctx.migrate(1)
        yield from ctx.write_i64(var, 41, site="xloss:v1")
        yield from ctx.compute(cpu_us=1500)
        yield from ctx.write_i64(var, 42, site="xloss:v2")
        yield from ctx.compute(cpu_us=50_000)
        yield from ctx.migrate_back()

    thread = proc.spawn_thread(remote, name="remote")

    def main(ctx):
        yield from ctx.compute(cpu_us=1200)
        first = yield from ctx.read_i64(var)  # forces the downgrade flush
        yield from ctx.compute(cpu_us=8000)   # crash + detection land here
        second = yield from ctx.read_i64(var)
        return first, second

    return cluster, proc, scenario, main, thread


def test_exclusive_loss_rollback_restores_flushed_copy():
    cluster, proc, scenario, main, thread = _exclusive_loss_cluster("rollback")
    first, second = cluster.simulate(main, proc)
    assert first == 41
    # the lost exclusive version (42) rolled back to the flushed copy
    assert second == 41
    assert proc.failed is None
    assert thread.failed is not None  # the thread itself is dead, loudly
    report = scenario.last_controller.report()
    assert report["failed"] == [1]
    assert any("rolled back" in e or "recovered" in e
               for e in report["events"]), report["events"]


def test_exclusive_loss_fail_policy_fails_with_diagnostic():
    cluster, proc, scenario, main, _ = _exclusive_loss_cluster("fail")
    cluster.simulate(main, proc)
    assert proc.failed is not None
    diag = str(proc.failed)
    assert "exclusive at node 1" in diag
    assert "on_exclusive_loss=fail" in diag
    assert "version" in diag

    # every subsequent memory operation that reaches the fault path
    # refuses with the same diagnostic instead of computing on rolled-back
    # data
    alloc = MemoryAllocator(proc)
    fresh = alloc.alloc_global(8, tag="post-fail")

    def touch(ctx):
        yield from ctx.write_i64(fresh, 1, site="post-fail")

    with pytest.raises(NodeFailedError) as exc_info:
        cluster.simulate(touch, proc)
    assert "on_exclusive_loss=fail" in str(exc_info.value)


def test_shared_copy_reclaimed_transparently():
    """A dead node that only held *shared* copies costs nothing: the data
    survives at the home, the process does not fail, and a post-crash read
    at the origin sees the right value."""
    scenario = _crash_scenario(node=1, at_us=4000.0, policy="fail")
    params = SimParams(chaos_scenario=scenario, sanitize="1", seed=5)
    cluster = DexCluster(num_nodes=2, params=params)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    var = alloc.alloc_global(8, tag="shared")

    def remote(ctx):
        yield from ctx.migrate(1)
        value = yield from ctx.read_i64(var)  # shared replica only
        yield from ctx.compute(cpu_us=50_000)
        yield from ctx.migrate_back()
        return value

    proc.spawn_thread(remote, name="reader")

    def main(ctx):
        yield from ctx.write_i64(var, 7, site="shared:init")
        yield from ctx.compute(cpu_us=10_000)
        return (yield from ctx.read_i64(var))

    assert cluster.simulate(main, proc) == 7
    assert proc.failed is None
    report = scenario.last_controller.report()
    assert report["failed"] == [1]
    assert any("shared cop" in e for e in report["events"]), report["events"]


def test_futex_poisoned_after_thread_death():
    """Once a migrated thread dies, any further futex wait raises instead
    of sleeping for a wake that cannot come."""
    cluster, proc, scenario, main, _ = _exclusive_loss_cluster("rollback")
    cluster.simulate(main, proc)
    assert proc.futex.poisoned is not None
    with pytest.raises(NodeFailedError):
        raise proc.futex.poisoned


def test_kmeans_survives_mid_run_fail_stop_via_restart():
    """The acceptance scenario: a node fail-stops mid-kmeans on 4 nodes
    (on its own 10th keepalive, so it is provably hosting workers when it
    dies); attempt 1 dies loudly via lease expiry, the consumed crash rule
    does not re-fire, and the restarted run completes with correct output,
    sanitizer on."""
    scenario = ChaosScenario(
        rules=[ChaosRule(kind="crash", node=2, msg_type="lease_renew",
                         src=2, nth=10)],
        seed=4, on_exclusive_loss="rollback",
    ).validate()
    outcome = run_under_chaos(
        "KMN", "initial", num_nodes=4, scale="small",
        scenario=scenario, max_restarts=1,
        n_points=20_000, max_iters=2,
    )
    assert outcome.completed and outcome.correct
    assert len(outcome.attempts) == 2
    assert "lease expired" in outcome.attempts[0]
    assert "attempt 2: completed" in outcome.attempts[1]
    assert scenario.rules[0].fired == 1
