"""Unit tests for page tables and frame stores."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.frames import FrameStore
from repro.memory.page_table import PTE, PageState, PageTable


# ---------------------------------------------------------------------------
# PageTable
# ---------------------------------------------------------------------------


def test_default_pte_is_invalid():
    pte = PTE()
    assert not pte.readable and not pte.writable
    assert pte.data_version == -1


def test_state_permissions():
    assert PTE(PageState.SHARED).readable
    assert not PTE(PageState.SHARED).writable
    assert PTE(PageState.EXCLUSIVE).readable
    assert PTE(PageState.EXCLUSIVE).writable


def test_page_table_lookup_and_ensure():
    table = PageTable()
    assert table.lookup(5) is None
    pte = table.ensure(5)
    assert table.lookup(5) is pte
    assert len(table) == 1


def test_set_state_and_permits():
    table = PageTable()
    table.set_state(3, PageState.SHARED, data_version=2)
    assert table.permits(3, write=False)
    assert not table.permits(3, write=True)
    table.set_state(3, PageState.EXCLUSIVE)
    assert table.permits(3, write=True)
    assert table.lookup(3).data_version == 2  # version preserved


def test_permits_missing_page():
    table = PageTable()
    assert not table.permits(9, write=False)


def test_drop_range():
    table = PageTable()
    for vpn in range(10):
        table.set_state(vpn, PageState.SHARED)
    assert table.drop_range(3, 7) == 4
    assert table.lookup(3) is None
    assert table.lookup(7) is not None
    assert len(table) == 6


# ---------------------------------------------------------------------------
# FrameStore
# ---------------------------------------------------------------------------


def test_frames_zero_fill_on_first_touch():
    store = FrameStore(page_size=64)
    assert 5 not in store
    frame = store.frame(5)
    assert frame == bytearray(64)
    assert 5 in store
    assert store.pages_allocated == 1


def test_install_requires_full_page():
    store = FrameStore(page_size=64)
    with pytest.raises(ValueError):
        store.install(0, b"short")
    store.install(0, bytes(range(64)))
    assert store.peek(0)[:4] == bytearray([0, 1, 2, 3])


def test_read_untouched_pages_as_zeros():
    store = FrameStore(page_size=64)
    assert store.read(10, 8) == b"\x00" * 8


def test_write_read_roundtrip_cross_page():
    store = FrameStore(page_size=64)
    payload = bytes(range(200)) * 2  # 400 bytes, crosses several 64B pages
    store.write(30, payload)
    assert store.read(30, len(payload)) == payload
    # neighbours untouched
    assert store.read(0, 30) == b"\x00" * 30


def test_drop_range_frees_frames():
    store = FrameStore(page_size=64)
    for vpn in range(8):
        store.frame(vpn)
    assert store.drop_range(2, 5) == 3
    assert 2 not in store and 4 not in store and 5 in store


@settings(max_examples=50, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.binary(min_size=1, max_size=300),
        ),
        max_size=20,
    )
)
def test_frame_store_matches_flat_buffer(writes):
    """Property: the paged store behaves like one flat byte buffer."""
    store = FrameStore(page_size=64)
    flat = bytearray(2048)
    for addr, data in writes:
        store.write(addr, data)
        flat[addr : addr + len(data)] = data
    assert store.read(0, 2048) == bytes(flat)
