"""The wait-for deadlock detector: classic cycles are reported with
per-thread stacks, legitimate contention is not flagged, and a stuck
simulation gets a post-mortem report."""

import pytest

from repro.check import DeadlockError
from repro.core.errors import DexError
from repro.runtime import MemoryAllocator, Mutex

from conftest import make_cluster

GLOBALS = 0x1000_0000


def test_abba_deadlock_detected_with_stacks():
    """t1 holds A and wants B; t2 (remote, via delegation) holds B and
    wants A — the cycle is reported the moment it closes, with each
    member's block-frame stack."""
    cluster = make_cluster(num_nodes=2, sanitize="deadlock")
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    lock_a = Mutex(alloc, name="A")
    lock_b = Mutex(alloc, name="B")

    def holder_ab(ctx):
        yield from lock_a.lock(ctx)
        yield from ctx.sleep(5000)
        yield from lock_b.lock(ctx)

    def holder_ba(ctx):
        yield from ctx.migrate(1)
        yield from lock_b.lock(ctx)
        yield from ctx.sleep(5000)
        yield from lock_a.lock(ctx)

    def main(ctx):
        t1 = ctx.spawn(holder_ab, name="ab")
        t2 = ctx.spawn(holder_ba, name="ba")
        yield from proc.join_all([t1, t2])

    with pytest.raises(DeadlockError) as exc_info:
        cluster.simulate(main, proc)
    message = str(exc_info.value)
    assert "wait-for cycle detected" in message
    # both orientations of the two-cycle are the same cycle
    assert "t1 -> t2 -> t1" in message or "t2 -> t1 -> t2" in message
    assert "t1 blocked in:" in message and "t2 blocked in:" in message
    assert "futex(" in message
    # the remote locker's delegation round-trip shows up in its stack
    assert "delegation(futex_wait@node1)" in message


def test_self_deadlock_on_relock():
    """Relocking a held (non-recursive) mutex is a one-thread cycle."""
    cluster = make_cluster(num_nodes=2, sanitize="deadlock")
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    lock = Mutex(alloc, name="M")

    def main(ctx):
        yield from lock.lock(ctx)
        yield from lock.lock(ctx)

    with pytest.raises(DeadlockError) as exc_info:
        cluster.simulate(main, proc)
    assert "t0 -> t0" in str(exc_info.value)


def test_contended_mutex_is_not_flagged():
    """Heavy cross-node contention on one lock is progress, not a
    deadlock — and the lock-ordered critical sections satisfy the race
    sanitizer (futex wakes and the lock word's coherence carry the
    happens-before edges)."""
    cluster = make_cluster(num_nodes=2, sanitize="all")
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    lock = Mutex(alloc, name="M")
    counter = alloc.alloc_global(8, tag="counter")

    def worker(ctx, node):
        yield from ctx.migrate(node)
        for _ in range(3):
            yield from lock.lock(ctx)
            value = yield from ctx.read_i64(counter, site="cs:read")
            yield from ctx.compute(cpu_us=5.0)
            yield from ctx.write_i64(counter, value + 1, site="cs:write")
            yield from lock.unlock(ctx)
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, n % 2) for n in range(4)]

    def main(ctx):
        yield from proc.join_all(threads)
        total = yield from ctx.read_i64(counter)
        return total

    assert cluster.simulate(main, proc) == 12
    detector = proc.deadlocks
    assert detector._frames == {}
    assert detector._lock_holder == {}
    assert detector.edges_checked > 0


def test_stuck_simulation_report_names_the_waiter():
    """A futex wait nobody will ever wake is not a wait-for cycle, but
    the simulate() failure carries the detector's post-mortem."""
    cluster = make_cluster(num_nodes=2, sanitize="deadlock")
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.write_u32(GLOBALS, 0)
        yield from ctx.futex_wait(GLOBALS, expected=0)

    with pytest.raises(DexError) as exc_info:
        cluster.simulate(main, proc)
    message = str(exc_info.value)
    assert "simulation ended before the main thread finished" in message
    assert "wait-for state:" in message
    assert "t0 blocked in:" in message
    assert "futex(" in message


def test_exhausted_buffer_pool_appears_in_report():
    """A sender parked on buffer-pool back-pressure is a block frame too:
    the post-mortem names the exhausted pool, its size, and the waiters."""
    from repro.net.buffers import BufferPool

    cluster = make_cluster(num_nodes=2, sanitize="deadlock")
    proc = cluster.create_process()
    pool = BufferPool(cluster.engine, chunks=1, chunk_bytes=4096,
                      name="c0->1.send")
    cluster.engine.process(pool.acquire(), name="first")   # takes the chunk
    cluster.engine.process(pool.acquire(), name="second")  # stalls forever
    cluster.engine.run()
    assert pool.stalls == 1
    report = proc.deadlocks.report()
    assert "exhausted buffer pools:" in report
    assert "pool c0->1.send exhausted (1 chunks, 1 waiter(s))" in report
    assert "pending sim processes:" in report


def test_pool_stall_clears_on_release():
    from repro.net.buffers import BufferPool

    cluster = make_cluster(num_nodes=2, sanitize="deadlock")
    proc = cluster.create_process()
    pool = BufferPool(cluster.engine, chunks=1, chunk_bytes=4096, name="p")

    def cycle(engine):
        yield from pool.acquire()
        yield engine.timeout(5.0)
        pool.release()

    cluster.engine.process(cycle(cluster.engine), name="a")
    cluster.engine.process(cycle(cluster.engine), name="b")
    cluster.engine.run()
    assert pool.stalls == 1  # b waited for a's chunk once
    assert "exhausted buffer pools:" not in proc.deadlocks.report()
