"""Tests for the pluggable coherence-directory layer.

Unit coverage for home assignment, shard placement, the owner-hint LRU
(including stale-hint redirects), and the busy-retry attribution stats —
plus differential tests running the same workloads under the ``origin``
and ``sharded`` backends and comparing results.
"""

import numpy as np
import pytest

from repro.core.directory import (
    DIRECTORY_BACKENDS,
    OriginDirectory,
    OwnerHintCache,
    ShardedDirectory,
    _next_prime,
)
from repro.core.ownership import OwnershipDirectory
from repro.core.stats import DexStats
from repro.params import SimParams
from repro.bench.runner import run_point

from conftest import make_cluster

GLOBALS = 0x1000_0000


def run(cluster, main, *args):
    proc = cluster.create_process()
    result = cluster.simulate(main, proc, *args)
    return result, proc


# ---------------------------------------------------------------------------
# home assignment & shard placement
# ---------------------------------------------------------------------------


def test_origin_directory_homes_everything_at_origin():
    cluster = make_cluster(directory="origin")
    proc = cluster.create_process()
    directory = proc.protocol.directory
    assert isinstance(directory, OriginDirectory)
    for vpn in (0, 1, 65536, 123_456_789):
        assert directory.home(vpn) == proc.origin
    assert directory.shard_nodes() == [proc.origin]


def test_sharded_directory_spreads_homes():
    cluster = make_cluster(directory="sharded")
    proc = cluster.create_process()
    directory = proc.protocol.directory
    assert isinstance(directory, ShardedDirectory)
    # default shard count: smallest prime above the node count
    assert directory.nshards == _next_prime(cluster.num_nodes)
    homes = {directory.home(vpn) for vpn in range(directory.nshards)}
    assert homes == set(range(cluster.num_nodes))
    for vpn in (7, 65536, 99_991):
        home = directory.home(vpn)
        assert home == directory.shard_map[vpn % directory.nshards]
        assert directory.hosts(home, vpn)


def test_explicit_shard_count_and_unknown_backend():
    cluster = make_cluster(directory="sharded", directory_shards=3)
    proc = cluster.create_process()
    assert proc.protocol.directory.nshards == 3
    with pytest.raises(ValueError):
        make_cluster(directory="no_such_backend").create_process()
    assert DIRECTORY_BACKENDS == ("origin", "sharded")


def test_ownership_shim_still_points_at_origin_backend():
    # the pre-refactor import path keeps working
    assert OwnershipDirectory is OriginDirectory


def test_entries_live_at_their_home():
    cluster = make_cluster(directory="sharded")
    page = cluster.params.page_size

    def main(ctx):
        for node in range(1, cluster.num_nodes):
            yield from ctx.migrate(node)
            yield from ctx.write_i64(GLOBALS + node * page, node)
        yield from ctx.migrate_back()

    _, proc = run(cluster, main)
    directory = proc.protocol.directory
    assert len(directory) >= cluster.num_nodes - 1
    populated = [n for n in directory.shard_nodes() if len(directory.shard(n))]
    assert len(populated) > 1  # metadata is actually spread across nodes
    directory.check_invariants()  # every entry sits in its home's shard


# ---------------------------------------------------------------------------
# owner-hint cache
# ---------------------------------------------------------------------------


def test_hint_cache_lru_eviction():
    cache = OwnerHintCache(capacity=2)
    cache.insert(1, 10)
    cache.insert(2, 20)
    assert cache.get(1) == 10  # makes vpn 1 most-recent
    cache.insert(3, 30)        # evicts vpn 2, the least-recent
    assert cache.get(2) is None
    assert cache.get(1) == 10
    assert cache.get(3) == 30
    assert cache.evictions == 1
    cache.invalidate(1)
    assert cache.get(1) is None
    with pytest.raises(ValueError):
        OwnerHintCache(capacity=0)


def test_hints_learned_and_hit_on_repeat_faults():
    cluster = make_cluster(directory="sharded")
    page = cluster.params.page_size

    def main(ctx):
        yield from ctx.migrate(2)
        yield from ctx.read_i64(GLOBALS)         # cold: resolves via origin
        yield from ctx.write_i64(GLOBALS, 1)     # upgrade: hint hit
        yield from ctx.read_i64(GLOBALS + page)  # different page: cold again

    _, proc = run(cluster, main)
    assert proc.stats.home_lookups >= 1
    assert proc.stats.hint_hits >= 1
    rate = proc.stats.hint_hit_rate
    assert rate is not None and 0.0 < rate < 1.0
    hints = proc.node_state(2).owner_hints
    assert hints.get(GLOBALS // page) == proc.protocol.directory.home(
        GLOBALS // page
    )


def test_stale_hint_is_redirected_and_repaired():
    cluster = make_cluster(directory="sharded")
    proc = cluster.create_process()
    vpn = GLOBALS // cluster.params.page_size
    home = proc.protocol.directory.home(vpn)
    requester = next(
        n for n in range(1, cluster.num_nodes) if n != home
    )
    wrong = next(
        n for n in range(cluster.num_nodes) if n not in (home, requester, 0)
    )
    # poison the requester's hint with a node that does not host the page
    proc.node_state(requester).owner_hints.insert(vpn, wrong)

    def main(ctx):
        yield from ctx.write_i64(GLOBALS, 77)
        yield from ctx.migrate(requester)
        value = yield from ctx.read_i64(GLOBALS)
        return value

    value = cluster.simulate(main, proc)
    assert value == 77  # a stale hint costs a hop, never correctness
    assert proc.stats.hint_stale == 1
    # the redirect dropped the bad hint; the re-resolution repaired it
    assert proc.node_state(requester).owner_hints.get(vpn) == home


# ---------------------------------------------------------------------------
# busy-retry attribution (§V-D contended mode)
# ---------------------------------------------------------------------------


def test_busy_retry_stats_and_contended_pages():
    stats = DexStats()
    for _ in range(3):
        stats.record_busy_retry(0x10)
    stats.record_busy_retry(0x20)
    assert stats.busy_retries_by_page == {0x10: 3, 0x20: 1}
    assert stats.contended_pages(top_n=1) == [(0x10, 3)]
    summary = stats.latency_summary()
    assert summary["contended_pages"] == [(0x10, 3), (0x20, 1)]


def test_contended_run_attributes_retries_to_pages():
    cluster = make_cluster()
    proc = cluster.create_process()
    counter_vpn = GLOBALS // cluster.params.page_size

    def worker(ctx, node):
        yield from ctx.migrate(node)
        for _ in range(20):
            yield from ctx.atomic_add_i64(GLOBALS, 1)
            yield from ctx.compute(cpu_us=0.3)
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, n) for n in range(cluster.num_nodes)]

    def main(ctx):
        yield from proc.join_all(threads)
        return (yield from ctx.read_i64(GLOBALS))

    value = cluster.simulate(main, proc)
    assert value == 20 * cluster.num_nodes
    if proc.stats.fault_retries:
        pages = dict(proc.stats.contended_pages())
        assert counter_vpn in pages
        # every requester-side retry was attributed to some page
        assert sum(proc.stats.busy_retries_by_page.values()) == (
            proc.stats.fault_retries
        )


# ---------------------------------------------------------------------------
# differential: origin vs sharded must agree
# ---------------------------------------------------------------------------


def _walker_workload(backend):
    """Deterministic single-thread walk: write a distinct pattern at every
    node, then read everything back at the origin."""
    cluster = make_cluster(directory=backend)
    page = cluster.params.page_size

    def main(ctx):
        for node in range(1, cluster.num_nodes):
            yield from ctx.migrate(node)
            yield from ctx.write(
                GLOBALS + node * page, bytes([node]) * 32
            )
            yield from ctx.write_i64(GLOBALS, node)  # ping-pong page
        yield from ctx.migrate_back()
        out = bytearray()
        for node in range(1, cluster.num_nodes):
            out += yield from ctx.read(GLOBALS + node * page, 32)
        counter = yield from ctx.read_i64(GLOBALS)
        return bytes(out), counter

    result, proc = run(cluster, main)
    return result, proc.stats


def test_differential_walker_bit_identical():
    (data_o, counter_o), stats_o = _walker_workload("origin")
    (data_s, counter_s), stats_s = _walker_workload("sharded")
    assert data_o == data_s          # bit-identical bytes
    assert counter_o == counter_s
    assert stats_o.total_faults == stats_s.total_faults
    assert stats_o.fault_retries == stats_s.fault_retries == 0


def _pingpong_workload(backend, rounds=25):
    """One thread bouncing between two nodes, incrementing one counter —
    the page-fault ping-pong, made deterministic by the single thread."""
    cluster = make_cluster(num_nodes=2, directory=backend)

    def main(ctx):
        for _ in range(rounds):
            yield from ctx.migrate(1)
            yield from ctx.atomic_add_i64(GLOBALS, 1)
            yield from ctx.migrate_back()
            yield from ctx.atomic_add_i64(GLOBALS, 1)
        return (yield from ctx.read_i64(GLOBALS))

    value, proc = run(cluster, main)
    return value, proc.stats


def test_differential_pingpong_identical_faults():
    value_o, stats_o = _pingpong_workload("origin")
    value_s, stats_s = _pingpong_workload("sharded")
    assert value_o == value_s == 50
    assert stats_o.total_faults == stats_s.total_faults


def test_differential_kmn_results_agree():
    """KMN under both backends: both verify against the reference, and the
    fault totals agree modulo the (backend-dependent) retry races.  The
    outputs are compared with allclose — thread interleaving differs, so
    the float reduction order (not the values) may change."""
    results = {}
    for backend in ("origin", "sharded"):
        results[backend] = run_point(
            "KMN", "initial", 4, "small",
            params=SimParams(directory=backend),
        )
    origin, sharded = results["origin"], results["sharded"]
    assert origin.correct and sharded.correct
    assert np.allclose(origin.output, sharded.output, rtol=1e-8, atol=1e-8)
    fault_gap = abs(
        origin.stats.total_faults - sharded.stats.total_faults
    )
    assert fault_gap <= (
        origin.stats.fault_retries + sharded.stats.fault_retries
    )
