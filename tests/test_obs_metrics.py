"""The metrics registry and the DexStats facade over it."""

import math

import pytest

from repro.core.stats import DexStats, FaultRecord
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


# -- Counter / Gauge -----------------------------------------------------------


def test_counter_basics():
    c = Counter("faults")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5 == c.total()
    assert c.snapshot() == 5


def test_counter_labels_aggregate():
    c = Counter("requests", labelnames=("home",))
    c.labels(home=0).inc(3)
    c.labels(home=2).inc()
    c.labels(home=0).inc()
    assert c.value_by_label() == {0: 4, 2: 1}
    assert c.total() == 5
    assert c.snapshot() == {"total": 5, "by_label": {0: 4, 2: 1}}


def test_counter_label_errors():
    plain = Counter("plain")
    with pytest.raises(ValueError):
        plain.labels(home=0)
    fam = Counter("fam", labelnames=("home",))
    with pytest.raises(ValueError):
        fam.labels(wrong=1)


def test_gauge():
    g = Gauge("depth")
    g.set(7)
    g.inc(2)
    g.dec()
    assert g.value == 8


# -- Histogram -----------------------------------------------------------------


def test_histogram_exact_moments():
    h = Histogram("lat")
    samples = [0.3, 1.0, 2.5, 13.6, 812.1, 0.05]
    for s in samples:
        h.observe(s)
    assert h.count == len(samples)
    assert h.sum == pytest.approx(sum(samples))
    assert h.min == min(samples)
    assert h.max == max(samples)
    assert h.mean == pytest.approx(sum(samples) / len(samples))


def test_histogram_bucket_boundaries():
    h = Histogram("b", start=1.0, factor=2.0, nbuckets=3)  # bounds 1, 2, 4
    h.observe(1.0)    # on the first bound -> bucket 0
    h.observe(1.5)    # (1, 2] -> bucket 1
    h.observe(-3.0)   # non-positive -> bucket 0
    h.observe(100.0)  # past the last bound -> overflow bucket
    assert h.counts == [2, 1, 0, 1]


def test_histogram_percentiles_ordered_and_clamped():
    h = Histogram("p")
    for v in (1.0, 2.0, 3.0, 4.0, 100.0):
        h.observe(v)
    p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
    assert h.min <= p50 <= p90 <= p99 <= h.max
    single = Histogram("s")
    single.observe(42.0)
    for p in (0, 50, 100):
        assert single.percentile(p) == 42.0  # clamped to exact [min, max]
    assert Histogram("empty").percentile(99) == 0.0


def test_histogram_quantiles_keys_and_ordering():
    h = Histogram("q")
    for v in range(1, 1001):
        h.observe(float(v))
    q = h.quantiles(50, 99, 99.9)
    # key scheme: p{value} with the decimal point dropped (99.9 -> p999)
    assert set(q) == {"p50", "p99", "p999"}
    assert q["p50"] <= q["p99"] <= q["p999"] <= h.max
    assert q["p50"] == h.percentile(50)
    snap = h.snapshot()
    # the satellite contract: snapshots (and thus report lines) carry p999
    assert snap["p999"] == q["p999"]
    assert snap["p50"] <= snap["p90"] <= snap["p99"] <= snap["p999"]


def test_report_includes_tail_quantiles():
    reg = MetricsRegistry()
    reg.histogram("lat").observe(5.0)
    text = reg.report()
    assert "p999=" in text and "p50=" in text


def test_histogram_labels_merge():
    h = Histogram("modes", labelnames=("mode",))
    h.labels(mode="fast").observe(1.0)
    h.labels(mode="slow").observe(100.0)
    snap = h.snapshot()
    assert snap["count"] == 2
    assert snap["min"] == 1.0 and snap["max"] == 100.0
    assert h.labels(mode="fast").count == 1


# -- registry ------------------------------------------------------------------


def test_registry_idempotent_registration():
    reg = MetricsRegistry()
    a = reg.counter("x", "help")
    b = reg.counter("x")
    assert a is b
    assert "x" in reg and "y" not in reg


def test_registry_kind_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError, match="already registered"):
        reg.histogram("x")


def test_registry_snapshot_and_report():
    reg = MetricsRegistry()
    reg.counter("zero")
    reg.counter("hits").inc(3)
    reg.histogram("lat").observe(5.0)
    reg.counter("fam", labelnames=("node",)).labels(node=1).inc(2)
    snap = reg.snapshot()
    assert snap["hits"] == 3 and snap["zero"] == 0
    assert snap["lat"]["count"] == 1
    text = reg.report()
    assert "hits" in text and "lat" in text and "fam" in text
    assert "zero" not in text  # skip_zero default
    assert "zero" in reg.report(skip_zero=False)


# -- the DexStats facade -------------------------------------------------------


def _record(latency, retries=0, coalesced=False, write=True, vpn=1):
    return FaultRecord(vpn=vpn, node=1, write=write, latency_us=latency,
                       retries=retries, coalesced=coalesced)


def test_stats_attribute_counters_are_registry_backed():
    s = DexStats()
    s.faults_write += 2
    s.delegations += 1
    assert s.faults_write == 2
    assert s.registry.get("faults_write").value == 2
    assert s.registry.get("delegations").value == 1
    assert s.total_faults == 2
    assert "faults_write" in s.report()


def test_stats_latency_summary_matches_list_reference():
    s = DexStats()
    fast = [10.0, 12.5, 9.75, 11.0]
    slow = [150.0, 812.1, 236.6]
    for v in fast:
        s.record_fault(_record(v))
    for v in slow:
        s.record_fault(_record(v, retries=2))
    s.record_fault(_record(5.0, coalesced=True))
    summary = s.latency_summary()
    assert summary["fast_path_count"] == len(fast)
    assert summary["contended_count"] == len(slow)
    # the histogram accumulates in the same order the list would, so the
    # means agree to float precision
    assert summary["fast_path_mean_us"] == pytest.approx(
        sum(fast) / len(fast), rel=1e-12)
    assert summary["contended_mean_us"] == pytest.approx(
        sum(slow) / len(slow), rel=1e-12)


def test_stats_histograms_count_past_the_record_cap():
    s = DexStats(max_latency_samples=10)
    for i in range(25):
        s.record_fault(_record(float(i + 1)))
    assert len(s.fault_latencies) == 10        # retained records capped ...
    assert s.latency_samples_dropped == 15
    assert s.fault_latency.snapshot()["count"] == 25  # ... histogram is not
    summary = s.latency_summary()
    assert summary["fast_path_count"] == 25
    assert summary["fast_path_mean_us"] == pytest.approx(13.0)
    assert s.faults_write == 25


def test_stats_mode_split_and_percentiles():
    s = DexStats()
    s.record_fault(_record(10.0))
    s.record_fault(_record(500.0, retries=3))
    assert s.fault_retries == 3
    assert s.faults_coalesced == 0
    p_fast = s.fault_latency_percentile(50, mode="fast")
    p_all = s.fault_latency_percentile(99)
    assert p_fast == pytest.approx(10.0)
    assert p_all >= p_fast


def test_stats_label_family_views():
    s = DexStats()
    s.record_directory_request(home=0)
    s.record_directory_request(home=0)
    s.record_directory_request(home=3)
    assert s.directory_requests == {0: 2, 3: 1}
    for _ in range(3):
        s.record_busy_retry(vpn=7)
    s.record_busy_retry(vpn=9)
    assert s.busy_retries_by_page == {7: 3, 9: 1}
    assert s.contended_pages(top_n=1) == [(7, 3)]


def test_stats_hint_hit_rate():
    s = DexStats()
    assert s.hint_hit_rate is None
    s.hint_hits += 3
    s.hint_misses += 1
    assert s.hint_hit_rate == pytest.approx(0.75)


# -- serialization round-trip (the manifest's histogram sections) --------------


def test_histogram_round_trip_preserves_quantiles():
    h = Histogram("lat", start=0.5, factor=2.0, nbuckets=16)
    for v in (0.1, 1.0, 3.0, 7.5, 40.0, 900.0):
        h.observe(v)
    back = Histogram.from_dict(h.to_dict())
    assert back.counts == h.counts
    assert back.count == h.count and back.sum == h.sum
    assert back.min == h.min and back.max == h.max
    assert back.quantiles(50, 90, 99, 99.9) == h.quantiles(50, 90, 99, 99.9)
    # the restored histogram keeps observing on the same geometry
    back.observe(2.0)
    assert back.count == h.count + 1


def test_histogram_round_trip_folds_labeled_children():
    h = Histogram("modes", labelnames=("mode",))
    h.labels(mode="read").observe(1.0)
    h.labels(mode="write").observe(50.0)
    doc = h.to_dict()
    assert doc["count"] == 2 and doc["min"] == 1.0 and doc["max"] == 50.0
    back = Histogram.from_dict(doc)
    assert back.count == 2 and back.percentile(100) == 50.0


def test_empty_histogram_round_trips():
    """The edge case the manifest hit: min/max sentinels aren't JSON."""
    doc = Histogram("empty").to_dict()
    assert doc["min"] is None and doc["max"] is None
    assert doc["count"] == 0
    back = Histogram.from_dict(doc)
    assert back.count == 0
    assert back.min == math.inf and back.max == -math.inf
    assert back.percentile(99) == 0.0
    # ...and still observes/merges correctly afterwards
    back.observe(4.0)
    assert back.min == back.max == 4.0


def test_single_bucket_histogram_round_trips():
    h = Histogram("one", start=10.0, nbuckets=1)
    h.observe(5.0)    # bucket 0
    h.observe(100.0)  # the overflow bucket
    assert h.counts == [1, 1]
    back = Histogram.from_dict(h.to_dict())
    assert back.counts == [1, 1]
    assert back.percentile(100) == 100.0
    assert back.quantiles(50)["p50"] <= 100.0


def test_from_dict_validates_bucket_counts():
    doc = Histogram("lat", nbuckets=8).to_dict()
    doc["counts"] = doc["counts"][:-1]  # truncated artifact
    with pytest.raises(ValueError, match="bucket"):
        Histogram.from_dict(doc)


# -- merge ---------------------------------------------------------------------


def test_merge_accumulates_in_place():
    a = Histogram("lat")
    b = Histogram("lat")
    a.observe(1.0)
    b.observe(10.0)
    b.observe(2.0)
    assert a.merge(b) is a
    assert a.count == 3 and a.sum == 13.0
    assert a.min == 1.0 and a.max == 10.0
    assert b.count == 2  # the operand is untouched


def test_merge_empty_operand_is_noop_both_ways():
    full = Histogram("lat")
    full.observe(3.0)
    empty = Histogram("lat")
    full.merge(empty)
    assert full.count == 1 and full.min == 3.0 and full.max == 3.0
    empty2 = Histogram("lat")
    empty2.merge(full)
    assert empty2.min == 3.0 and empty2.max == 3.0  # no inf leakage


def test_merge_folds_operand_children():
    family = Histogram("modes", labelnames=("mode",))
    family.labels(mode="read").observe(1.0)
    family.labels(mode="write").observe(9.0)
    target = Histogram("modes")
    target.merge(family)
    assert target.count == 2 and target.max == 9.0


def test_merge_rejects_geometry_mismatch():
    a = Histogram("a", start=0.25, nbuckets=64)
    for other in (
        Histogram("b", start=0.5, nbuckets=64),
        Histogram("c", start=0.25, factor=2.0, nbuckets=64),
        Histogram("d", start=0.25, nbuckets=32),
    ):
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(other)
