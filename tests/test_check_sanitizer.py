"""The coherence sanitizer: clean on correct protocol runs, and catches
deliberately seeded protocol bugs with actionable diagnostics.

The seeded bugs are installed as instance-level patches on a live
process's :class:`ConsistencyProtocol`:

* **skipped invalidation** — the owner-side invalidation handler acks
  without applying the PTE change, so a revoked reader keeps a stale
  readable mapping;
* **reordered grant** — the home hands out exclusive ownership without
  first revoking the previous owner, as if a stale grant overtook the
  invalidation round.

Both must be caught under both directory backends.
"""

import pytest

from repro.check import CoherenceViolation
from repro.check.vclock import VectorClock
from repro.memory.page_table import PageState
from repro.net.messages import MsgType

from conftest import make_cluster

GLOBALS = 0x1000_0000

BACKENDS = ("origin", "sharded")


def pick_vpn(proc):
    """A globals page whose home is the origin under the active backend,
    so revocations of a remote reader always travel the wire."""
    page = proc.cluster.params.page_size
    base = GLOBALS // page
    for vpn in range(base, base + 64):
        if proc.protocol.directory.home(vpn) == 0:
            return vpn
    pytest.fail("no globals page homed at node 0")


def repair_page(proc, vpn, valid_node):
    """Reset the seeded-bug page to a consistent single-owner state so
    the autouse teardown invariant check passes: the test already made
    its assertions about the (intentionally broken) intermediate state."""
    entry = proc.protocol.directory.lookup(vpn)
    for node, state in proc.iter_node_states():
        pte = state.page_table.lookup(vpn)
        if pte is None:
            continue
        if node == valid_node:
            pte.data_version = entry.data_version
        else:
            pte.state = PageState.INVALID
    writer_pte = proc.node_state(valid_node).page_table.lookup(vpn)
    entry.owners = {valid_node}
    entry.writer = valid_node if writer_pte.state is PageState.EXCLUSIVE else None


# ----------------------------------------------------------------------
# clean runs
# ----------------------------------------------------------------------


def test_vector_clock_semantics():
    a = VectorClock()
    b = VectorClock()
    a.tick(1)
    a.tick(1)
    assert a.get(1) == 2
    assert a.dominates(1, 2) and not a.dominates(1, 3)
    b.merge(a)
    b.tick(2)
    assert b.dominates(1, 2) and b.dominates(2, 1)
    assert not a.dominates(2, 1)
    c = b.copy()
    c.tick(1)
    assert b.get(1) == 2 and c.get(1) == 3
    assert len(c) == 2 and dict(c.items()) == {1: 3, 2: 1}


@pytest.mark.parametrize("backend", BACKENDS)
def test_clean_run_counts_checks(backend):
    cluster = make_cluster(num_nodes=4, directory=backend, sanitize="all")
    proc = cluster.create_process()
    counter = GLOBALS
    slots = GLOBALS + 8

    def worker(ctx, idx, node):
        yield from ctx.migrate(node)
        for i in range(4):
            yield from ctx.atomic_add_i64(counter, 1, site="clean:counter")
            yield from ctx.write_i64(slots + idx * 8, i, site="clean:slot")
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, i, i % 4) for i in range(4)]

    def main(ctx):
        yield from proc.join_all(threads)
        total = yield from ctx.read_i64(counter)
        return total

    assert cluster.simulate(main, proc) == 16
    san = proc.sanitizer
    assert san is not None and proc.deadlocks is not None
    assert san.accesses_checked > 0
    assert san.transitions_checked > 0
    assert san.edges_recorded > 0


# ----------------------------------------------------------------------
# seeded bug: skipped invalidation
# ----------------------------------------------------------------------


def _install_skip_invalidation(proc):
    """The owner-side PAGE_INVALIDATE handler acks without touching the
    PTE — the revoked reader keeps reading its stale mapping."""

    def skip_invalidate(msg):
        yield proc.cluster.engine.timeout(
            proc.cluster.params.invalidation_handler_cost
        )
        yield from proc.cluster.net.send(
            msg.make_reply(MsgType.PAGE_INVALIDATE_ACK, {"ok": True})
        )

    proc.protocol.handle_invalidate_msg = skip_invalidate


@pytest.mark.parametrize("backend", BACKENDS)
def test_skipped_invalidation_trips_transition_check(backend):
    """With per-transition checking on, the stale reader PTE is flagged
    the moment the conflicting write's transition commits."""
    cluster = make_cluster(num_nodes=2, directory=backend, sanitize="race")
    proc = cluster.create_process()
    vpn = pick_vpn(proc)
    addr = vpn * cluster.params.page_size

    def reader(ctx):
        yield from ctx.migrate(1)
        yield from ctx.read_u32(addr, site="seed:early-read")

    def main(ctx):
        yield from ctx.write_u32(addr, 1, site="seed:init")
        t1 = ctx.spawn(reader, name="reader")
        yield from ctx.join(t1)
        _install_skip_invalidation(proc)
        yield from ctx.write_u32(addr, 2, site="seed:conflicting-write")

    with pytest.raises(CoherenceViolation) as exc_info:
        cluster.simulate(main, proc)
    message = str(exc_info.value)
    assert "is not a directory owner" in message
    assert f"page {vpn:#x}" in message
    assert backend in message
    repair_page(proc, vpn, valid_node=0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_skipped_invalidation_trips_race_detector(backend):
    """With transition checks off, the pure happens-before detector
    catches the stale read and names both access sites."""
    cluster = make_cluster(num_nodes=2, directory=backend, sanitize="race")
    proc = cluster.create_process()
    proc.sanitizer.transition_checks = False
    vpn = pick_vpn(proc)
    addr = vpn * cluster.params.page_size

    def reader(ctx):
        yield from ctx.migrate(1)
        yield from ctx.read_u32(addr, site="seed:early-read")
        yield from ctx.sleep(5000)
        # the conflicting write's invalidation was dropped: this read
        # does not fault, and no happens-before edge reaches it
        yield from ctx.read_u32(addr, site="seed:stale-read")

    def main(ctx):
        yield from ctx.write_u32(addr, 1, site="seed:init")
        t1 = ctx.spawn(reader, name="reader")
        yield from ctx.sleep(2000)
        _install_skip_invalidation(proc)
        yield from ctx.write_u32(addr, 2, site="seed:conflicting-write")
        yield from ctx.join(t1)

    with pytest.raises(CoherenceViolation) as exc_info:
        cluster.simulate(main, proc)
    message = str(exc_info.value)
    assert "unordered read/write pair" in message
    assert "seed:conflicting-write" in message
    assert "seed:stale-read" in message
    assert f"directory backend: {backend}" in message
    repair_page(proc, vpn, valid_node=0)


# ----------------------------------------------------------------------
# seeded bug: reordered grant
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_reordered_grant_trips_race_detector(backend):
    """A grant that skips the revocation round leaves the new writer's
    copy without the page's causal history: the very next access is an
    unordered write/write pair."""
    cluster = make_cluster(num_nodes=2, directory=backend, sanitize="race")
    proc = cluster.create_process()
    proc.sanitizer.transition_checks = False
    vpn = pick_vpn(proc)
    addr = vpn * cluster.params.page_size

    def buggy_grant_exclusive(entry, requester, known_version):
        # hand out exclusive ownership without revoking the previous
        # owner — as if this grant overtook the invalidation round
        entry.owners = {requester}
        entry.writer = requester
        entry.data_version += 1
        return ("grant", PageState.EXCLUSIVE.value, entry.data_version, None)
        yield  # pragma: no cover - keeps this a generator

    def writer(ctx):
        yield from ctx.migrate(1)
        yield from ctx.sleep(1000)
        yield from ctx.write_u32(addr, 2, site="seed:racing-write")

    def main(ctx):
        # spawn first: the write below must NOT be ordered before the
        # child via the spawn edge, or the pair is legitimately ordered
        t1 = ctx.spawn(writer, name="writer")
        yield from ctx.sleep(200)
        yield from ctx.write_u32(addr, 1, site="seed:first-write")
        yield from ctx.sleep(300)
        proc.protocol._grant_exclusive = buggy_grant_exclusive
        yield from ctx.join(t1)

    with pytest.raises(CoherenceViolation) as exc_info:
        cluster.simulate(main, proc)
    message = str(exc_info.value)
    assert "unordered write/write pair" in message
    assert "seed:first-write" in message
    assert "seed:racing-write" in message
    assert f"directory backend: {backend}" in message
    repair_page(proc, vpn, valid_node=1)
