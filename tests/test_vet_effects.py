"""Effect inference unit tests: the BLOCKING/PURE lattice and the
call-site classification rules that keep dropped-wait false-positive
free."""

import ast
import textwrap

import pytest

from repro.vet.callgraph import CallGraph
from repro.vet.effects import BLOCKING, PURE, call_effect, infer_effects
from repro.vet.loader import ModuleInfo


def _graph(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    tree = ast.parse(path.read_text())
    module = ModuleInfo(path, tree, name)
    graph = CallGraph([module])
    return graph, infer_effects(graph)


def _fn(graph, name):
    (fn,) = graph.resolve(name)
    return fn


def _call(source):
    node = ast.parse(textwrap.dedent(source)).body[0].value
    assert isinstance(node, ast.Call)
    return node


def test_generator_is_blocking(tmp_path):
    graph, effects = _graph(tmp_path, """
        def wait(engine):
            yield engine.timeout(1)

        def compute(x):
            return x + 1
    """)
    assert effects[_fn(graph, "wait")] == BLOCKING
    assert effects[_fn(graph, "compute")] == PURE


def test_effect_propagates_through_return_wrapper(tmp_path):
    graph, effects = _graph(tmp_path, """
        def wait(engine):
            yield engine.timeout(1)

        def forward(engine):
            return wait(engine)

        def forward_twice(engine):
            return forward(engine)
    """)
    assert effects[_fn(graph, "forward")] == BLOCKING
    assert effects[_fn(graph, "forward_twice")] == BLOCKING


def test_plain_call_does_not_propagate(tmp_path):
    # calling a blocking function without returning its result does not
    # make the caller blocking — the caller may legitimately spawn it
    graph, effects = _graph(tmp_path, """
        def wait(engine):
            yield engine.timeout(1)

        def spawn(engine):
            engine.process(wait(engine))
            return None
    """)
    assert effects[_fn(graph, "spawn")] == PURE


def test_nested_def_yields_do_not_leak(tmp_path):
    graph, effects = _graph(tmp_path, """
        def outer(engine):
            def inner():
                yield engine.timeout(1)
            return inner
    """)
    assert effects[_fn(graph, "outer")] == PURE
    assert effects[_fn(graph, "inner")] == BLOCKING


def test_call_effect_blocking_when_all_candidates_agree(tmp_path):
    graph, effects = _graph(tmp_path, """
        def wait(engine):
            yield engine.timeout(1)
    """)
    assert call_effect(graph, effects, _call("x.wait(e)")) == BLOCKING
    assert call_effect(graph, effects, _call("wait(e)")) == BLOCKING


def test_call_effect_none_on_mixed_candidates(tmp_path):
    # two defs share the name `acquire`: one blocks, one returns an
    # Event for a plain yield — the call site must not be classified
    graph, effects = _graph(tmp_path, """
        class BufferPool:
            def acquire(self, engine):
                yield engine.timeout(1)

        class Resource:
            def acquire(self):
                return self.event
    """)
    assert call_effect(graph, effects, _call("pool.acquire(e)")) is None


def test_call_effect_none_on_unknown_name(tmp_path):
    graph, effects = _graph(tmp_path, """
        def compute(x):
            return x
    """)
    assert call_effect(graph, effects, _call("mystery(1)")) is None


def test_ubiquitous_method_names_never_classified(tmp_path):
    # a scanned generator named like a builtin container method must not
    # make `seen.add(x)` look blocking
    graph, effects = _graph(tmp_path, """
        class DexArray:
            def add(self, ctx, index, delta):
                yield ctx.engine.timeout(1)
    """)
    assert call_effect(graph, effects, _call("seen.add(x)")) is None
    # ...and it contributes no call-graph edges either
    graph2, _ = _graph(tmp_path, """
        def caller(seen, x):
            seen.add(x)
    """, name="mod2.py")
    assert "add" not in _fn(graph2, "caller").called_names


def test_pure_call_classified_pure(tmp_path):
    graph, effects = _graph(tmp_path, """
        def compute(x):
            return x + 1
    """)
    assert call_effect(graph, effects, _call("compute(1)")) == PURE
