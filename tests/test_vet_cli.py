"""CLI behavior of ``python -m repro.vet``: exit codes, baseline
workflow, graph rendering, and the legacy ``repro.check --lint`` shim."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.vet.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures" / "vet"
REPO_SRC = Path(__file__).parent.parent / "src"


def run_main(args, capsys):
    code = main(args)
    out = capsys.readouterr()
    return code, out.out, out.err


def test_repo_check_is_clean(capsys):
    code, out, _ = run_main(["check"], capsys)
    assert code == 0
    assert "clean" in out


def test_strict_repo_check_is_clean(capsys):
    code, out, _ = run_main(["check", "--strict"], capsys)
    assert code == 0


def test_fixture_check_fails_with_provenance(capsys):
    fixture = FIXTURES / "fixture_dropped_wait.py"
    code, out, _ = run_main(["check", str(fixture)], capsys)
    assert code == 1
    assert "[dropped-wait]" in out
    assert f"{fixture}:28" in out


def test_list_rules(capsys):
    code, out, _ = run_main(["--list-rules"], capsys)
    assert code == 0
    names = out.split()
    assert "dropped-wait" in names
    assert "unhandled-message-type" in names
    assert "lens-sink-discipline" in names
    assert "serve-discipline" in names
    assert len(names) == 16


def test_unknown_rule_exits_2(capsys):
    code, _, err = run_main(["check", "--rules", "bogus"], capsys)
    assert code == 2
    assert "bogus" in err


def test_rule_subset(capsys):
    fixture = FIXTURES / "fixture_missing_handler.py"
    code, out, _ = run_main(
        ["check", str(fixture), "--rules", "handler-totality"], capsys
    )
    assert code == 1
    assert "[handler-totality]" in out
    assert "[unhandled-message-type]" not in out


def test_json_output(capsys):
    import json

    fixture = FIXTURES / "fixture_orphan_msgtype.py"
    code, out, _ = run_main(["check", str(fixture), "--json"], capsys)
    assert code == 1
    data = json.loads(out)
    assert data["violations"][0]["rule"] == "orphan-message-type"


def test_graph_text(capsys):
    code, out, _ = run_main(["graph"], capsys)
    assert code == 0
    assert "MsgType.PAGE_REQUEST" in out
    assert "replies PAGE_GRANT, PAGE_REDIRECT, PAGE_RETRY" in out


def test_graph_dot_to_file(tmp_path, capsys):
    target = tmp_path / "graph.dot"
    code, _, _ = run_main(["graph", "--dot", "-o", str(target)], capsys)
    assert code == 0
    dot = target.read_text()
    assert dot.startswith("digraph dexvet {")
    assert "msg_PAGE_REQUEST" in dot


def test_graph_json(capsys):
    import json

    code, out, _ = run_main(["graph", "--json"], capsys)
    assert code == 0
    data = json.loads(out)
    assert data["PING"]["replies"] == ["PONG"]


def test_baseline_workflow(tmp_path, capsys):
    """update-baseline writes suppressions; check honors them; strict
    flags them once they go stale."""
    fixture = FIXTURES / "fixture_orphan_msgtype.py"
    baseline = tmp_path / "vet-baseline.toml"

    code, out, _ = run_main(
        ["check", str(fixture), "--update-baseline",
         "--baseline", str(baseline)], capsys,
    )
    assert code == 0
    assert baseline.is_file()

    # suppressed now
    code, out, _ = run_main(
        ["check", str(fixture), "--baseline", str(baseline)], capsys
    )
    assert code == 0
    assert "1 suppressed by baseline" in out

    # a clean target makes the entry stale: strict mode reports it
    clean = FIXTURES / "fixture_clean.py"
    code, out, _ = run_main(
        ["check", str(clean), "--baseline", str(baseline), "--strict"],
        capsys,
    )
    assert code == 1
    assert "[baseline-stale]" in out

    # non-strict ignores hygiene
    code, out, _ = run_main(
        ["check", str(clean), "--baseline", str(baseline)], capsys
    )
    assert code == 0


def test_update_baseline_explicit_paths_defaults_to_cwd(
    tmp_path, capsys, monkeypatch
):
    """Vetting explicit paths must never write the repo's checked-in
    baseline by default — the update lands in the working directory."""
    monkeypatch.chdir(tmp_path)
    fixture = FIXTURES / "fixture_orphan_msgtype.py"
    repo_baseline = REPO_SRC.parent / "vet-baseline.toml"
    before = repo_baseline.read_text()

    code, out, _ = run_main(
        ["check", str(fixture), "--update-baseline"], capsys
    )
    assert code == 0
    assert (tmp_path / "vet-baseline.toml").is_file()
    assert repo_baseline.read_text() == before


def test_no_baseline_flag_bypasses_suppressions(tmp_path, capsys):
    fixture = FIXTURES / "fixture_orphan_msgtype.py"
    baseline = tmp_path / "vet-baseline.toml"
    run_main(["check", str(fixture), "--update-baseline",
              "--baseline", str(baseline)], capsys)
    code, out, _ = run_main(
        ["check", str(fixture), "--baseline", str(baseline),
         "--no-baseline"], capsys,
    )
    assert code == 1
    assert "[orphan-message-type]" in out


def _module_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    return env


def test_module_entrypoint_subprocess():
    result = subprocess.run(
        [sys.executable, "-m", "repro.vet", "--strict"],
        capture_output=True, text=True, env=_module_env(),
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_legacy_check_shim_subprocess():
    # the old entry point keeps working on the new framework
    result = subprocess.run(
        [sys.executable, "-m", "repro.check", "--lint"],
        capture_output=True, text=True, env=_module_env(),
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "lint: clean" in result.stdout


def test_legacy_shim_runs_only_legacy_rules():
    from repro.check.lint import RULES, lint_paths

    assert len(RULES) == 7
    # this fixture only trips whole-program rules — the legacy shim
    # must stay quiet on it (it never ran these rules before)
    violations = lint_paths([FIXTURES / "fixture_unpaired_request.py"])
    assert violations == []
