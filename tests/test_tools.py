"""Tests for the profiling toolchain (§IV)."""

import numpy as np
import pytest

from repro.runtime import MemoryAllocator
from repro.runtime.array import alloc_array
from repro.tools import FaultTracer, TraceAnalysis
from repro.tools.tracer import FaultEvent

from conftest import make_cluster

GLOBALS = 0x1000_0000


def traced_run():
    """A run with known contention: all workers hammer one counter page
    (site 'hot') and privately fill page-aligned slices (site 'cold')."""
    cluster = make_cluster()
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    tracer = FaultTracer()
    proc.attach_tracer(tracer)
    counter = alloc.alloc_global(8, tag="counter")
    private = [alloc_array(alloc, np.int64, 512, page_aligned=True,
                           name=f"buf{n}") for n in range(4)]

    gate = cluster.engine.event()

    def worker(ctx, node):
        yield from ctx.migrate(node)
        yield gate  # start together so the counter page really contends
        for i in range(6):
            yield from ctx.atomic_add_i64(counter, 1, site="hot")
            yield from private[node].write(
                ctx, 0, np.full(512, i, dtype=np.int64), site="cold"
            )
            yield from ctx.compute(cpu_us=5.0)
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, n) for n in range(4)]

    def main(ctx):
        yield ctx.engine.timeout(10_000.0)
        gate.succeed()
        yield from proc.join_all(threads)

    cluster.simulate(main, proc)
    return tracer, proc


def test_tracer_collects_six_tuples():
    tracer, _ = traced_run()
    assert len(tracer) > 0
    event = tracer.events[0]
    assert event.fault_type in ("read", "write", "invalidate")
    assert event.time_us >= 0
    assert event.addr > 0


def test_hottest_site_is_the_contended_counter():
    tracer, _ = traced_run()
    analysis = TraceAnalysis(tracer)
    sites = dict(analysis.hottest_sites())
    assert sites["hot"] > sites.get("cold", 0)


def test_false_sharing_detector_flags_counter_page_only():
    tracer, _ = traced_run()
    analysis = TraceAnalysis(tracer)
    flagged = analysis.false_sharing_candidates()
    assert flagged, "the counter page must be flagged"
    hot_vpns = {r.vpn for r in flagged}
    assert GLOBALS // 4096 in hot_vpns
    top = flagged[0]
    assert len(top.writer_nodes) > 1
    # the private page-aligned buffers must NOT be flagged: each is only
    # ever written by one node (reads by node 0 at fill time are fine)
    for report in flagged:
        assert len(report.writer_nodes) > 1 or report.reader_nodes


def test_fault_rate_over_time_buckets():
    tracer, _ = traced_run()
    analysis = TraceAnalysis(tracer)
    histogram = analysis.fault_rate_over_time(bucket_us=500.0)
    assert histogram
    assert sum(count for _, count in histogram) == sum(
        1 for e in tracer if e.fault_type != "invalidate"
    )
    times = [t for t, _ in histogram]
    assert times == sorted(times)


def test_per_thread_pattern():
    tracer, _ = traced_run()
    analysis = TraceAnalysis(tracer)
    patterns = analysis.per_thread_pattern()
    assert len(patterns) >= 4
    for stats in patterns.values():
        assert stats["distinct_pages"] >= 1


def test_report_renders():
    tracer, _ = traced_run()
    text = TraceAnalysis(tracer).report()
    assert "fault trace" in text
    assert "hot" in text


def test_csv_roundtrip(tmp_path):
    tracer, _ = traced_run()
    path = str(tmp_path / "trace.csv")
    tracer.save_csv(path)
    loaded = FaultTracer.load_csv(path)
    assert len(loaded) == len(tracer)
    assert loaded.events[0] == tracer.events[0]


def test_tracer_caps_events():
    tracer = FaultTracer(max_events=2)
    tracer.record(0.0, 0, 0, "read", "s", 0)
    tracer.record(1.0, 0, 0, "read", "s", 4096)
    # the first drop warns (once); further drops are silent
    with pytest.warns(RuntimeWarning, match="max_events=2"):
        tracer.record(2.0, 0, 0, "read", "s", 8192)
    for i in range(3, 5):
        tracer.record(float(i), 0, 0, "read", "s", i * 4096)
    assert len(tracer) == 2
    assert tracer.dropped == 3
    tracer.clear()
    assert len(tracer) == 0 and tracer.dropped == 0


def test_invalid_bucket_rejected():
    analysis = TraceAnalysis(FaultTracer())
    try:
        analysis.fault_rate_over_time(bucket_us=0)
        raised = False
    except ValueError:
        raised = True
    assert raised
