"""DexServe arrival generators: seed determinism, distributional shape,
and the open-loop timeline invariants."""

import numpy as np
import pytest

from repro.serve.arrivals import (
    ArrivalCurve,
    arrival_times,
    curve_window,
    parse_curve,
)


def test_same_seed_bit_identical():
    for kind in ("constant", "poisson", "burst", "ramp"):
        curve = ArrivalCurve(kind, rate=10_000, requests=500)
        a = arrival_times(curve, seed=42)
        b = arrival_times(curve, seed=42)
        assert a.dtype == np.float64
        assert np.array_equal(a, b)


def test_different_seed_differs_when_random():
    curve = ArrivalCurve("poisson", rate=10_000, requests=500)
    assert not np.array_equal(
        arrival_times(curve, seed=1), arrival_times(curve, seed=2))
    # deterministic kinds ignore the seed entirely
    det = ArrivalCurve("constant", rate=10_000, requests=500)
    assert np.array_equal(
        arrival_times(det, seed=1), arrival_times(det, seed=2))


def test_constant_spacing_exact():
    curve = ArrivalCurve("constant", rate=8_000, requests=100)
    times = arrival_times(curve, seed=0)
    assert len(times) == 100
    spacing = np.diff(times)
    assert np.allclose(spacing, 1e6 / 8_000)
    assert times[0] == 0.0


def test_poisson_interarrival_mean_within_tolerance():
    curve = ArrivalCurve("poisson", rate=10_000, requests=20_000)
    times = arrival_times(curve, seed=7)
    mean_gap = float(np.diff(times).mean())
    assert mean_gap == pytest.approx(100.0, rel=0.05)  # 1e6/10k us


def test_burst_rate_multiplies_inside_window():
    curve = ArrivalCurve(
        "burst", rate=10_000, requests=2_500,
        burst_at_us=50_000, burst_for_us=20_000, burst_x=8.0)
    times = arrival_times(curve, seed=3)
    lo, hi = curve_window(curve)
    assert (lo, hi) == (50_000.0, 70_000.0)
    assert times[-1] > hi  # arrivals continue past the window
    before = ((times >= lo - 20_000) & (times < lo)).sum()
    during = ((times >= lo) & (times < hi)).sum()
    # 8x the arrivals per unit time inside the window
    per_us_before = before / 20_000.0
    per_us_during = during / (hi - lo)
    assert per_us_during == pytest.approx(8.0 * per_us_before, rel=0.05)


def test_ramp_density_increases():
    curve = ArrivalCurve("ramp", rate=4_000, requests=4_000, ramp_to=16_000)
    times = arrival_times(curve, seed=0)
    span = times[-1]
    first = (times < span / 2).sum()
    second = (times >= span / 2).sum()
    assert second > first * 1.5  # strictly densifying
    # instantaneous rate at the end approaches ramp_to
    tail_gap = float(np.diff(times)[-200:].mean())
    assert tail_gap == pytest.approx(1e6 / 16_000, rel=0.1)


def test_all_kinds_sorted_and_sized():
    for kind in ("constant", "poisson", "burst", "ramp"):
        curve = ArrivalCurve(kind, rate=5_000, requests=777)
        times = arrival_times(curve, seed=11)
        assert len(times) == 777
        assert np.all(np.diff(times) >= 0.0)
        assert times[0] >= 0.0


def test_open_loop_timeline_is_pure_function_of_curve():
    # the arrival timeline never depends on service state: the curve
    # alone determines it, which is the open-loop property the manager
    # relies on (it precomputes the whole timeline before serving)
    curve = ArrivalCurve("poisson", rate=9_000, requests=300)
    timeline = arrival_times(curve, seed=5)
    again = arrival_times(curve, seed=5)
    assert np.array_equal(timeline, again)


def test_parse_curve_and_validation():
    curve = parse_curve("burst", 8_000, 400,
                        burst_at_us=10_000, burst_for_us=5_000, burst_x=4.0)
    assert curve.kind == "burst" and curve.burst_x == 4.0
    with pytest.raises(ValueError):
        parse_curve("sawtooth", 8_000, 400)
    with pytest.raises(ValueError):
        ArrivalCurve("constant", rate=0.0, requests=10).validate()
    with pytest.raises(ValueError):
        ArrivalCurve("constant", rate=100.0, requests=0).validate()


def test_scaled_replaces_request_count():
    curve = ArrivalCurve("constant", rate=10_000, requests=100)
    half = curve.scaled(50)
    assert half.rate == 10_000 and half.requests == 50
    assert len(arrival_times(half, seed=0)) == 50
