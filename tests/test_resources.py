"""Unit + property tests for the contention primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FairShareResource, Resource, SimulationError, Store


# ---------------------------------------------------------------------------
# FairShareResource
# ---------------------------------------------------------------------------


def test_single_job_runs_at_full_capacity():
    eng = Engine()
    share = FairShareResource(eng, capacity=100.0)

    def job():
        yield share.consume(500.0)
        return eng.now

    assert eng.run_process(job()) == pytest.approx(5.0)


def test_two_equal_jobs_halve_the_rate():
    eng = Engine()
    share = FairShareResource(eng, capacity=100.0)
    finish = {}

    def job(tag, amount):
        yield share.consume(amount)
        finish[tag] = eng.now

    eng.process(job("a", 500.0))
    eng.process(job("b", 500.0))
    eng.run()
    # both share the 100/us channel: each sees 50/us, so both end at 10us
    assert finish["a"] == pytest.approx(10.0)
    assert finish["b"] == pytest.approx(10.0)


def test_late_arrival_slows_earlier_job():
    eng = Engine()
    share = FairShareResource(eng, capacity=100.0)
    finish = {}

    def early():
        yield share.consume(500.0)
        finish["early"] = eng.now

    def late():
        yield eng.timeout(2.5)
        yield share.consume(250.0)
        finish["late"] = eng.now

    eng.process(early())
    eng.process(late())
    eng.run()
    # early runs alone for 2.5us (250 served), then shares: both have 250
    # left at 50/us -> +5us -> both finish at 7.5
    assert finish["early"] == pytest.approx(7.5)
    assert finish["late"] == pytest.approx(7.5)


def test_completion_releases_bandwidth_to_survivor():
    eng = Engine()
    share = FairShareResource(eng, capacity=100.0)
    finish = {}

    def job(tag, amount):
        yield share.consume(amount)
        finish[tag] = eng.now

    eng.process(job("small", 100.0))
    eng.process(job("big", 400.0))
    eng.run()
    # shared until small finishes at t=2 (100 each served); big has 300
    # left alone at 100/us -> finishes at t=5
    assert finish["small"] == pytest.approx(2.0)
    assert finish["big"] == pytest.approx(5.0)


def test_zero_amount_completes_immediately():
    eng = Engine()
    share = FairShareResource(eng, capacity=10.0)

    def job():
        yield share.consume(0.0)
        return eng.now

    assert eng.run_process(job()) == 0.0


def test_contention_model_reduces_capacity():
    eng = Engine()
    share = FairShareResource(
        eng, capacity=100.0, contention=lambda n: 100.0 if n <= 1 else 50.0
    )
    finish = {}

    def job(tag):
        yield share.consume(100.0)
        finish[tag] = eng.now

    eng.process(job("a"))
    eng.process(job("b"))
    eng.run()
    # aggregate capacity halves with 2 jobs: 25/us each -> 4us
    assert finish["a"] == pytest.approx(4.0)
    assert finish["b"] == pytest.approx(4.0)


def test_invalid_capacity_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        FairShareResource(eng, capacity=0.0)


@settings(max_examples=50, deadline=None)
@given(
    amounts=st.lists(
        st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=8
    ),
    offsets=st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=8, max_size=8),
)
def test_fair_share_conserves_work(amounts, offsets):
    """Property: every job completes, and no job finishes before the time
    it would take at full capacity (service can never exceed capacity)."""
    eng = Engine()
    share = FairShareResource(eng, capacity=10.0)
    finish = {}

    def job(idx, offset, amount):
        yield eng.timeout(offset)
        yield share.consume(amount)
        finish[idx] = eng.now

    for idx, amount in enumerate(amounts):
        eng.process(job(idx, offsets[idx], amount))
    eng.run()
    assert len(finish) == len(amounts)
    for idx, amount in enumerate(amounts):
        lower_bound = offsets[idx] + amount / 10.0
        assert finish[idx] >= lower_bound - 1e-6


@settings(max_examples=30, deadline=None)
@given(
    amounts=st.lists(
        st.floats(min_value=0.5, max_value=100.0), min_size=2, max_size=6
    )
)
def test_simultaneous_equal_jobs_finish_together(amounts):
    """Jobs of equal size starting together must finish at the same time."""
    eng = Engine()
    share = FairShareResource(eng, capacity=7.0)
    size = amounts[0]
    finish = []

    def job():
        yield share.consume(size)
        finish.append(eng.now)

    n = len(amounts)
    for _ in range(n):
        eng.process(job())
    eng.run()
    assert len(finish) == n
    assert max(finish) - min(finish) < 1e-6
    assert finish[0] == pytest.approx(size * n / 7.0)


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    eng = Engine()
    res = Resource(eng, capacity=2)
    a, b, c = res.acquire(), res.acquire(), res.acquire()
    assert a.triggered and b.triggered and not c.triggered
    res.release()
    eng.run()
    assert c.triggered


def test_resource_fifo_order():
    eng = Engine()
    res = Resource(eng, capacity=1)
    res.acquire()
    waiters = [res.acquire() for _ in range(3)]
    res.release()
    eng.run()
    assert [w.triggered for w in waiters] == [True, False, False]


def test_release_of_idle_resource_rejected():
    eng = Engine()
    res = Resource(eng, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_counts():
    eng = Engine()
    res = Resource(eng, capacity=2)
    res.acquire()
    res.acquire()
    res.acquire()
    assert res.in_use == 2
    assert res.queued == 1


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_put_then_get():
    eng = Engine()
    store = Store(eng)
    store.put("x")

    def getter():
        item = yield store.get()
        return item

    assert eng.run_process(getter()) == "x"


def test_store_get_blocks_until_put():
    eng = Engine()
    store = Store(eng)

    def getter():
        item = yield store.get()
        return (item, eng.now)

    def putter():
        yield eng.timeout(4.0)
        store.put("late")

    proc = eng.process(getter())
    eng.process(putter())
    eng.run()
    assert proc.value == ("late", 4.0)


def test_store_fifo_both_sides():
    eng = Engine()
    store = Store(eng)
    results = []

    def getter(tag):
        item = yield store.get()
        results.append((tag, item))

    eng.process(getter("g1"))
    eng.process(getter("g2"))
    store.put("a")
    store.put("b")
    eng.run()
    assert results == [("g1", "a"), ("g2", "b")]


def test_store_try_get():
    eng = Engine()
    store = Store(eng)
    assert store.try_get() is None
    store.put(1)
    assert store.try_get() == 1
    assert len(store) == 0
