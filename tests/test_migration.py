"""Tests for thread migration (§III-A) and its Table II timing shape."""

import pytest

from repro.core.errors import MigrationError

from conftest import make_cluster

GLOBALS = 0x1000_0000


def migrate_n_times(n_rounds=3):
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        for _ in range(n_rounds):
            yield from ctx.migrate(1)
            yield from ctx.migrate_back()

    cluster.simulate(main, proc)
    return proc.stats.migrations


def test_migration_record_sequence():
    records = migrate_n_times(2)
    assert [m.kind for m in records] == [
        "forward", "backward", "forward", "backward"
    ]
    assert records[0].first_on_node is True
    assert records[2].first_on_node is False


def test_first_forward_dominated_by_remote_worker_setup():
    """Figure 3: ~620us of the ~800us remote side is remote-worker setup."""
    first = migrate_n_times(1)[0]
    assert first.components["remote_worker"] == pytest.approx(620.0)
    assert first.remote_us == pytest.approx(800.0)
    assert first.origin_us == pytest.approx(12.1)
    assert 780.0 < first.total_us < 880.0  # paper: 812.1 (origin+remote sums)


def test_second_forward_skips_worker_setup():
    records = migrate_n_times(2)
    second = records[2]
    assert "remote_worker" not in second.components
    assert second.remote_us == pytest.approx(230.0)
    assert second.origin_us == pytest.approx(6.6)
    assert second.total_us < records[0].total_us * 0.45  # paper: 236.6 vs 812.1


def test_backward_migration_is_cheap():
    records = migrate_n_times(1)
    backward = records[1]
    assert backward.kind == "backward"
    assert backward.total_us < 40.0  # paper: 24.7
    assert backward.total_us < records[0].total_us / 10


def test_backward_latency_stable_across_repetitions():
    records = migrate_n_times(3)
    backs = [m.total_us for m in records if m.kind == "backward"]
    assert max(backs) - min(backs) < 1e-6  # "almost the same" (§V-D)


def test_migrate_to_current_node_is_noop():
    cluster = make_cluster()
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(0)  # already at the origin

    cluster.simulate(main, proc)
    assert proc.stats.migrations == []


def test_migrate_to_bad_node_rejected():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        try:
            yield from ctx.migrate(99)
        except MigrationError:
            return "rejected"
        return "accepted"

    assert cluster.simulate(main, proc) == "rejected"


def test_remote_to_remote_migration():
    """Threads 'can be relocated again to any node at any time'."""
    cluster = make_cluster(num_nodes=3)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.write_i64(GLOBALS, 10)
        yield from ctx.migrate(1)
        value = yield from ctx.read_i64(GLOBALS)
        yield from ctx.migrate(2)  # direct remote -> remote
        yield from ctx.write_i64(GLOBALS, value + 1)
        yield from ctx.migrate_back()
        final = yield from ctx.read_i64(GLOBALS)
        return final

    assert cluster.simulate(main, proc) == 11
    kinds = [(m.kind, m.src, m.dst) for m in proc.stats.migrations]
    assert ("forward", 1, 2) in kinds
    proc.protocol.check_invariants()


def test_concurrent_first_migrations_to_same_node():
    """Multiple threads migrating to the same fresh node: the remote
    worker is created once; later arrivals fork from it."""
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def worker(ctx):
        yield from ctx.migrate(1)
        yield from ctx.compute(cpu_us=10.0)
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker) for _ in range(4)]

    def main(ctx):
        yield from proc.join_all(threads)

    cluster.simulate(main, proc)
    forwards = [m for m in proc.stats.migrations if m.kind == "forward"]
    firsts = [m for m in forwards if "remote_worker" in m.components]
    assert len(firsts) == 1
    assert len(forwards) == 4


def test_migration_count_tracked():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(1)
        yield from ctx.migrate_back()
        return ctx.thread.migration_count

    assert cluster.simulate(main, proc) == 2
