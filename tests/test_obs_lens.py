"""DexLens: the online trace-analytics layer.

Covers the zero-cost-when-off contract (no lens object, empty sink
lists, bit-identical sim time), the SlidingWindow decay/cap semantics,
the LensFeed heat statistics validated against the offline profiler's
ground truth (KMN-initial@8), critical-path attribution, the live top
view, the crash flight recorder (deadlock and fail-stop dumps), and the
chaos-retry trace-continuity fix.
"""

import io
import json

import pytest

from repro import DexCluster, SimParams
from repro.check import DeadlockError
from repro.core.errors import NodeFailedError
from repro.obs import lens as lens_mod
from repro.obs import resolve_lens_mode, tracing
from repro.obs.export import PathPhase, check_trace_tree, path_phase_of
from repro.obs.lens import LensFeed, SlidingWindow, TopView
from repro.obs.ring import load_snapshot
from repro.runtime import MemoryAllocator, Mutex

from conftest import make_cluster


def _micro(num_nodes=2, rounds=30, **param_overrides):
    """The contended ping-pong micro with the lens on by default.  A gate
    releases both hammers together (after t2's migration lands) so the
    counter page really bounces: remote revocations in both directions,
    retried faults, the works."""
    param_overrides.setdefault("lens", "1")
    param_overrides.setdefault("sanitize", "")
    cluster = make_cluster(num_nodes=num_nodes, **param_overrides)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    var = alloc.alloc_global(8, tag="hot")

    gate = cluster.engine.event()

    def hammer(ctx, dest):
        if dest is not None:
            yield from ctx.migrate(dest)
        yield gate
        for _ in range(rounds):
            yield from ctx.atomic_add_i64(var, 1, site="h")
            # longer than a fault round trip, so the peer steals the page
            # back mid-loop and ownership really ping-pongs
            yield from ctx.compute(cpu_us=20.0)

    threads = [proc.spawn_thread(hammer, None), proc.spawn_thread(hammer, 1)]
    if num_nodes >= 3:
        # a third contender makes simultaneous faults (and thus busy-retry
        # "contended" trees) a certainty rather than a lucky interleaving
        threads.append(proc.spawn_thread(hammer, 2))

    def main(ctx):
        yield ctx.engine.timeout(5_000.0)
        gate.succeed()
        yield from proc.join_all(threads)

    cluster.simulate(main, proc)
    return cluster, proc, var


# -- knob -------------------------------------------------------------------


def test_lens_knob_resolution(monkeypatch):
    monkeypatch.delenv("DEX_LENS", raising=False)
    assert resolve_lens_mode("") == ""
    assert resolve_lens_mode("off") == ""
    assert resolve_lens_mode("1") == "on"
    assert resolve_lens_mode("on") == "on"
    assert resolve_lens_mode(None) == ""  # env unset
    monkeypatch.setenv("DEX_LENS", "1")
    assert resolve_lens_mode(None) == "on"
    with pytest.raises(ValueError):
        resolve_lens_mode("bogus")
    with pytest.raises(ValueError):
        resolve_lens_mode("spans")  # a trace mode, not a lens mode


def test_lens_off_means_no_lens_object(monkeypatch):
    monkeypatch.delenv("DEX_LENS", raising=False)
    cluster = DexCluster(num_nodes=2, params=SimParams(lens=""))
    assert cluster.lens is None and cluster.tracer is None
    # trace on, lens off: tracer exists but its sink lists stay empty
    cluster = DexCluster(num_nodes=2, params=SimParams(trace="1", lens=""))
    assert cluster.lens is None
    assert cluster.tracer._sinks == []
    assert cluster.tracer._sink_close == []


def test_lens_on_implies_tracer():
    cluster = DexCluster(num_nodes=2, params=SimParams(lens="1"))
    assert cluster.tracer is not None
    assert cluster.lens is not None
    # the feed and the flight recorder are subscribed via add_sink
    assert cluster.lens.sink in cluster.tracer._sinks
    assert cluster.lens.recorder in cluster.tracer._sinks


def test_lens_env_knob(monkeypatch):
    monkeypatch.setenv("DEX_LENS", "1")
    assert DexCluster(num_nodes=2).lens is not None
    monkeypatch.setenv("DEX_LENS", "0")
    assert DexCluster(num_nodes=2).lens is None


def test_lens_does_not_perturb_sim_time():
    plain_cluster, plain_proc, _ = _micro(lens="", trace="1")
    lens_cluster, lens_proc, _ = _micro(lens="1")
    assert lens_cluster.engine.now == plain_cluster.engine.now
    assert lens_proc.stats.total_faults == plain_proc.stats.total_faults
    assert lens_proc.stats.fault_retries == plain_proc.stats.fault_retries


# -- SlidingWindow ----------------------------------------------------------


def test_window_counts_and_expiry():
    w = SlidingWindow(window_us=100.0, slices=4, max_keys=64)
    w.add(10.0, "a")
    w.add(20.0, "a")
    w.add(20.0, "b")
    assert w.get(20.0, "a") == 2.0
    assert w.total(20.0) == 3.0
    # 130us later the first slices have expired
    assert w.get(150.0, "a") == 0.0
    assert w.total(150.0) == 0.0


def test_window_decays_slice_at_a_time():
    w = SlidingWindow(window_us=100.0, slices=4, max_keys=64)
    for t in (10.0, 35.0, 60.0, 85.0):  # one hit per slice
        w.add(t, "k")
    assert w.get(85.0, "k") == 4.0
    # advancing one slice past the window drops exactly the oldest slice
    assert w.get(110.0, "k") == 3.0
    assert w.get(135.0, "k") == 2.0
    assert w.get(999.0, "k") == 0.0


def test_window_cap_evicts_coldest_and_counts():
    w = SlidingWindow(window_us=1000.0, slices=2, max_keys=8)
    w.add(1.0, "hot", amount=50.0)
    for i in range(16):
        w.add(2.0, f"cold{i}")
    assert w.evicted > 0
    assert w.get(2.0, "hot") == 50.0  # the hot key survives
    assert len(w) <= 8 + 1


def test_window_top_ordering():
    w = SlidingWindow(window_us=1000.0, slices=2, max_keys=64)
    w.add(1.0, "x", 3.0)
    w.add(1.0, "y", 9.0)
    w.add(1.0, "z", 1.0)
    assert [k for k, _ in w.top(1.0, 2)] == ["y", "x"]


def test_window_rejects_bad_shape():
    with pytest.raises(ValueError):
        SlidingWindow(window_us=0.0)
    with pytest.raises(ValueError):
        SlidingWindow(window_us=10.0, slices=0)


# -- heat stats vs the offline profiler's ground truth ----------------------


def _kmn_with_lens(num_nodes=8):
    """KMN-initial with both the offline FaultTracer and the lens on, the
    lens window far larger than the run so nothing decays out."""
    from repro.bench.runner import run_point
    from repro.tools import FaultTracer, TraceAnalysis

    fault_tracer = FaultTracer()
    params = SimParams(
        trace="1", lens="1",
        lens_window_us=1e9, lens_max_keys=1 << 17,
    )
    lens_mod.reset_recent()
    tracing.reset_recent()
    result = run_point(
        "KMN", "initial", num_nodes, "small",
        params=params, tracer=fault_tracer,
    )
    assert result.correct
    lens = max(lens_mod.recent_lenses(), key=lambda l: l.feed.trees_completed)
    return TraceAnalysis(fault_tracer), lens.feed


def test_feed_matches_profiler_ground_truth_on_kmn():
    """The acceptance check: windowed per-page fault counts and
    (requester -> victim) invalidation pairs agree exactly with
    TraceAnalysis over the same run (window >= run length)."""
    analysis, feed = _kmn_with_lens(num_nodes=8)
    ground_truth = analysis.hottest_pages(10)
    assert ground_truth and ground_truth[0].faults > 0
    assert feed.evicted == {"faults": 0, "churn": 0, "pairs": 0}
    for report in ground_truth:
        assert feed.page_faults(report.vpn) == report.faults
        expected_pairs = {
            (src, victim): count
            for src, victim, count in report.invalidation_pairs
        }
        got_pairs = {
            (src, victim): count
            for src, victim, count in feed.page_pairs(report.vpn)
        }
        assert got_pairs == expected_pairs
    # hot_pages ranks by the same counts
    hottest = feed.hot_pages(1)[0]
    assert hottest.vpn == ground_truth[0].vpn
    assert hottest.faults == ground_truth[0].faults


def test_feed_owner_churn_tracks_write_grants():
    cluster, proc, var = _micro(rounds=20)
    feed = cluster.lens.feed
    vpn = var // 4096
    # every atomic bounce is an exclusive grant: churn tracks contention
    assert feed.owner_churn(vpn) > 0
    assert feed.churn_pages(1)[0][0] == vpn
    # aggregated ping-pong view: both directions of the bounce appear
    pairs = dict(feed.ping_pong_pairs())
    assert sum(pairs.values()) > 0
    for (requester, victim) in pairs:
        assert requester != victim


# -- critical-path extraction -----------------------------------------------


def test_critical_path_histograms_cover_the_phases():
    cluster, proc, _ = _micro(rounds=30)
    feed = cluster.lens.feed
    assert feed.trees_completed > 0
    breakdown = feed.path_breakdown()
    # a contended cross-node micro exercises every phase
    for phase in (PathPhase.QUEUE, PathPhase.WIRE, PathPhase.HANDLER,
                  PathPhase.BLOCKED, PathPhase.COMPUTE):
        assert phase.value in breakdown, breakdown.keys()
        assert breakdown[phase.value]["count"] > 0
    # labels come from the shared enum only
    assert set(breakdown) <= {p.value for p in PathPhase}
    # quantiles ride the satellite Histogram API
    wire = breakdown[PathPhase.WIRE.value]
    assert wire["p50"] <= wire["p99"] <= wire["p999"] <= wire["max"]


def test_critical_path_sums_to_end_to_end_latency():
    """For the sequential fault trees of this protocol, per-phase parts
    sum to the root's duration (the walk conserves time)."""
    cluster, proc, _ = _micro(rounds=10)
    feed = cluster.lens.feed
    total_attributed = sum(
        child.sum for child in feed.path_us.per_label().values()
    )
    total_tree = sum(
        child.sum for child in feed.tree_us.per_label().values()
    )
    assert total_tree > 0
    assert total_attributed == pytest.approx(total_tree, rel=1e-6)


def test_critical_path_modes_split_like_dexstats():
    cluster, proc, _ = _micro(num_nodes=3, rounds=40)
    assert proc.stats.fault_retries > 0  # three hammers do collide
    feed = cluster.lens.feed
    modes = {mode for (app, mode) in feed.tree_us.per_label()}
    # a contended micro produces both fast and contended fault trees
    assert "fast" in modes and "contended" in modes
    apps = {app for (app, mode) in feed.tree_us.per_label()}
    assert "fault_wait" in apps and "compute" in apps


def test_tree_buffer_eviction_is_counted():
    cluster, proc, _ = _micro(rounds=20, lens_max_traces=1)
    feed = cluster.lens.feed
    # with room for a single open tree, interleaved traces force evictions
    assert feed.trees_evicted > 0
    assert feed.trees_completed > 0  # non-interleaved trees still complete


def test_path_phase_of_prefix_table():
    assert path_phase_of("net.wire") is PathPhase.WIRE
    assert path_phase_of("net.send") is PathPhase.QUEUE
    assert path_phase_of("rx.page_request") is PathPhase.HANDLER
    assert path_phase_of("protocol.invalidate") is PathPhase.BLOCKED
    assert path_phase_of("fault.follow") is PathPhase.BLOCKED
    assert path_phase_of("fault") is PathPhase.QUEUE
    assert path_phase_of("compute") is PathPhase.COMPUTE
    assert path_phase_of("anything.else") is PathPhase.HANDLER


# -- live top view ----------------------------------------------------------


def test_top_view_renders_on_sim_time_boundaries():
    stream = io.StringIO()
    with lens_mod.live_view(interval_us=200.0, limit=4, stream=stream):
        cluster, proc, var = _micro(rounds=30)
    view = cluster.lens.view
    assert view is not None and view.frames >= 2
    text = stream.getvalue()
    assert "dex top @" in text
    assert "hottest pages" in text
    assert f"{var // 4096:#x}" in text
    assert "critical path" in text
    # the live view must not perturb the simulation
    plain_cluster, _, _ = _micro(rounds=30)
    assert cluster.engine.now == plain_cluster.engine.now


def test_top_view_not_attached_outside_live_view():
    cluster, _, _ = _micro(rounds=5)
    assert cluster.lens.view is None


def test_top_view_render_is_pure_query():
    cluster, _, _ = _micro(rounds=10)
    view = TopView(cluster.lens.feed, interval_us=1e9, limit=4)
    first = view.render()
    second = view.render()
    assert first == second  # no internal mutation of the feed


# -- flight recorder --------------------------------------------------------


def test_deadlock_dumps_loadable_connected_snapshot(tmp_path):
    """Seeded ABBA deadlock: the DeadlockError triggers an auto-dump whose
    span forest includes the still-open (unfinished) blocked spans and at
    least one connected cross-node trace."""
    dump = tmp_path / "flightrec.json"
    cluster = make_cluster(
        num_nodes=2, sanitize="deadlock", lens="1",
        lens_dump_path=str(dump),
    )
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    lock_a = Mutex(alloc, name="A")
    lock_b = Mutex(alloc, name="B")

    def holder_ab(ctx):
        yield from lock_a.lock(ctx)
        yield from ctx.sleep(5000)
        yield from lock_b.lock(ctx)

    def holder_ba(ctx):
        yield from ctx.migrate(1)
        yield from lock_b.lock(ctx)
        yield from ctx.sleep(5000)
        yield from lock_a.lock(ctx)

    def main(ctx):
        t1 = ctx.spawn(holder_ab, name="ab")
        t2 = ctx.spawn(holder_ba, name="ba")
        yield from proc.join_all([t1, t2])

    with pytest.raises(DeadlockError):
        cluster.simulate(main, proc)

    assert dump.exists()
    assert cluster.lens.dump_path == str(dump)
    spans, meta = load_snapshot(str(dump))
    assert meta["reason"].startswith("DeadlockError")
    assert spans
    # the deadlocked threads' blocked spans are present, synthetically
    # closed and marked unfinished
    unfinished = [s for s in spans if s.attrs.get("unfinished")]
    assert unfinished
    assert any(s.name.startswith("futex.") for s in unfinished)
    # the snapshot holds at least one connected multi-span trace
    reports = [
        check_trace_tree(spans, tid) for tid in {s.trace_id for s in spans}
    ]
    connected = [r for r in reports if r.connected and len(r.spans) > 1]
    assert connected
    # and it loads as Chrome trace JSON (Perfetto-compatible shape)
    doc = json.loads(dump.read_text())
    assert doc["traceEvents"]
    assert {e["ph"] for e in doc["traceEvents"]} >= {"X", "M"}


def test_failstop_crash_dumps_snapshot_under_kmeans(tmp_path):
    """An unrecovered fail-stop crash during KMN@4 propagates
    NodeFailedError and leaves a loadable snapshot behind."""
    from repro.chaos import run_under_chaos
    from repro.chaos.scenario import ChaosRule, ChaosScenario

    dump = tmp_path / "kmn-crash.json"
    scenario = ChaosScenario(
        rules=[ChaosRule(kind="crash", node=1, at_us=4000.0)], seed=5,
    ).validate()
    params = SimParams(lens="1", lens_dump_path=str(dump), seed=5)
    with pytest.raises(NodeFailedError):
        run_under_chaos(
            "KMN", "initial", 4, "small",
            scenario=scenario, max_restarts=0, params=params,
        )
    assert dump.exists()
    spans, meta = load_snapshot(str(dump))
    assert "NodeFailedError" in meta["reason"]
    assert spans
    reports = [
        check_trace_tree(spans, tid) for tid in {s.trace_id for s in spans}
    ]
    connected = [r for r in reports if r.connected and len(r.spans) > 1]
    assert connected
    # the message ring contributed instant events
    doc = json.loads(dump.read_text())
    assert any(e["ph"] == "i" for e in doc["traceEvents"])


def test_dump_path_empty_disables_autodump(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    cluster = make_cluster(num_nodes=2, sanitize="deadlock", lens="1",
                           lens_dump_path="")
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    lock = Mutex(alloc, name="M")

    def main(ctx):
        yield from lock.lock(ctx)
        yield from lock.lock(ctx)

    with pytest.raises(DeadlockError):
        cluster.simulate(main, proc)
    assert cluster.lens.dump_path is None
    assert not list(tmp_path.glob("*.json"))


def test_ring_capacity_bounds_snapshot(tmp_path):
    cluster, proc, _ = _micro(rounds=40, lens_ring_spans=16, lens_ring_msgs=8)
    recorder = cluster.lens.recorder
    assert recorder.spans_seen > 16  # history really overflowed the ring
    snapshot = recorder.snapshot_spans()
    # bounded: at most ring_spans per node ring (+1 unbound ring), plus
    # any still-open spans
    assert len(snapshot) <= 16 * (cluster.num_nodes + 1) + len(
        cluster.tracer.open_spans()
    )
    path = tmp_path / "manual.json"
    recorder.dump(str(path), reason="manual")
    spans, meta = load_snapshot(str(path))
    assert meta["reason"] == "manual"
    assert len(spans) == len(snapshot)


# -- chaos-retry trace continuity (satellite fix) ---------------------------


def test_resent_reply_keeps_original_trace(tmp_path):
    """Dropping a grant forces the responder to re-send its cached reply;
    the clone must carry the original trace context so the fault tree
    stays connected instead of rooting a fresh net.* trace."""
    from repro.chaos import run_pagefault_micro
    from repro.chaos.scenario import ChaosRule, ChaosScenario

    scenario = ChaosScenario(
        rules=[ChaosRule(kind="drop", msg_type="page_grant", nth=1)],
        seed=3,
    ).validate()
    tracing.reset_recent()
    out = run_pagefault_micro(
        scenario, params=SimParams(trace="1", sanitize=""))
    assert out["ok"], out
    assert out["report"]["replies_resent"] >= 1

    tracer = max(tracing.recent_tracers(), key=lambda t: len(t.spans))
    spans = tracer.spans
    by_id = {s.span_id: s for s in spans}
    resends = [s for s in spans if s.name == "net.resend"]
    assert resends, "the resend path must be span-visible"
    for resend in resends:
        # adopted into the original trace, never a root of its own
        assert resend.parent_id is not None
        assert resend.parent_id in by_id
        assert by_id[resend.parent_id].trace_id == resend.trace_id
        # the whole tree the resend joined is connected
        report = check_trace_tree(spans, resend.trace_id)
        assert report.connected, report.format()
        root = report.roots[0]
        assert not root.name.startswith("net."), root
    # no resent grant ends up rooting a trace of its own
    for s in spans:
        if s.name == "net.send" and s.attrs.get("msg_type") == "page_grant":
            assert s.parent_id is not None
