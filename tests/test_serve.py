"""DexServe end-to-end: seeded determinism, bulkhead isolation, the
open-loop invariant, admission policies, fail-stop chaos attribution,
and the zero-cost-when-off guards."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve import ArrivalCurve, ServeManager, TenantSpec

SRC = Path(__file__).resolve().parent.parent / "src"


def kmn_spec(name="kmn-v", nodes=(0, 1), rate=8_000, requests=120, seed=3,
             **kw):
    return TenantSpec(
        name, "kmn", ArrivalCurve("constant", rate=rate, requests=requests),
        nodes=nodes, items=4_096, request_items=256, seed=seed, **kw)


def scan_burst_spec(name="scan-a", nodes=(2, 3), rate=20_000, requests=200,
                    seed=4, **kw):
    curve = ArrivalCurve("burst", rate=rate, requests=requests,
                         burst_at_us=3_000, burst_for_us=3_000, burst_x=8.0)
    return TenantSpec(name, "scan", curve, nodes=nodes, items=16_384,
                      request_items=2_048, seed=seed, **kw)


def run_report(specs, **kw):
    kw.setdefault("num_nodes", 4)
    kw.setdefault("seed", 42)
    return ServeManager(list(specs), **kw).run()


def test_seeded_report_bit_identical():
    specs = [kmn_spec(), scan_burst_spec()]
    a = run_report(specs)
    b = run_report(specs)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    for doc in a["tenants"].values():
        assert doc["counts"]["mismatched"] == 0
        assert doc["counts"]["completed"] > 0


def test_bulkhead_isolation_and_burst_degradation():
    solo = run_report([kmn_spec()])["tenants"]["kmn-v"]
    shared = run_report([kmn_spec(), scan_burst_spec()])
    victim = shared["tenants"]["kmn-v"]
    aggressor = shared["tenants"]["scan-a"]

    # the bursty tenant degrades inside its own burst window ...
    burst = aggressor["burst_window"]
    assert burst["p99_during"] > 2.0 * burst["p99_before"]
    # ... while the bulkheaded tenant on disjoint nodes stays within 20%
    # of its solo baseline
    assert victim["latency_us"]["p99"] <= 1.2 * solo["latency_us"]["p99"]
    assert victim["counts"]["completed"] == 120
    assert victim["counts"]["mismatched"] == 0


def test_open_loop_injection_continues_under_saturation():
    # one worker, tiny queue, arrivals 10x faster than service: a
    # closed-loop client would stall; the open-loop generator keeps
    # injecting and the policy keeps rejecting
    spec = kmn_spec(name="hot", nodes=(0,), rate=40_000, requests=150,
                    workers_per_node=1, queue_capacity=4)
    doc = run_report([spec], num_nodes=2)["tenants"]["hot"]
    counts = doc["counts"]
    assert counts["injected"] == 150
    assert counts["rejected"] > 0
    assert counts["admitted"] + counts["rejected"] == 150
    assert counts["completed"] == counts["admitted"]
    assert counts["completed"] + counts["rejected"] == 150  # all terminal
    assert doc["queue_depth_hwm"] <= 4


def test_shed_oldest_policy_sheds_instead_of_rejecting():
    spec = kmn_spec(name="shedder", nodes=(0,), rate=40_000, requests=150,
                    workers_per_node=1, queue_capacity=4,
                    policy="shed-oldest")
    counts = run_report([spec], num_nodes=2)["tenants"]["shedder"]["counts"]
    assert counts["shed"] > 0
    assert counts["rejected"] == 0
    assert counts["admitted"] == 150  # shed-oldest always admits the new
    assert counts["completed"] + counts["shed"] == 150


def test_token_bucket_policy_throttles():
    spec = kmn_spec(name="bucket", nodes=(0,), rate=40_000, requests=150,
                    workers_per_node=1, queue_capacity=64,
                    policy="token-bucket", policy_rate_per_s=8_000.0)
    counts = run_report([spec], num_nodes=2)["tenants"]["bucket"]["counts"]
    assert counts["throttled"] > 0
    assert counts["admitted"] + counts["throttled"] == 150
    assert counts["completed"] + counts["throttled"] == 150


def test_failstop_chaos_converges_and_attributes():
    from repro.chaos import ChaosScenario

    def run_once():
        chaos = ChaosScenario(rules=[], seed=9, on_exclusive_loss="rollback")
        return run_report(
            [kmn_spec(requests=160), scan_burst_spec(requests=240)],
            chaos=chaos, fail_stop=(3, 2_000.0),
        )

    report = run_once()
    # the run converged: every arrival reached a terminal state
    for doc in report["tenants"].values():
        c = doc["counts"]
        terminal = (c["completed"] + c["rejected"] + c["throttled"]
                    + c["shed"] + c["failed"])
        assert terminal == c["injected"] == doc["requests"]
        assert c["mismatched"] == 0
    chaos_doc = report["chaos"]
    assert chaos_doc["crashed_nodes"] == [3]
    assert chaos_doc["impacted_tenants"] == ["scan-a"]
    assert chaos_doc["first_crash_us"] is not None
    att = chaos_doc["attribution"]
    assert att["scan-a"]["impacted"] is True
    assert att["kmn-v"]["impacted"] is False
    # the failure is attributed: the impacted tenant's post-crash p99
    # degrades past the bulkheaded tenant's, which stays flat
    assert att["kmn-v"]["p99_after_crash"] == pytest.approx(
        att["kmn-v"]["p99_before_crash"], rel=0.2)
    # losing half the serving nodes mid-run must show up in the tail
    assert (att["scan-a"]["p99_after_crash"]
            > 1.5 * att["scan-a"]["p99_before_crash"])

    # chaos runs are as deterministic as clean ones
    again = run_once()
    assert json.dumps(report, sort_keys=True) == json.dumps(
        again, sort_keys=True)


def test_scope_sampling_does_not_change_results():
    specs = [kmn_spec(), scan_burst_spec()]
    plain = run_report(specs)
    scoped = run_report(specs, scope=True)
    assert json.dumps(plain, sort_keys=True) == json.dumps(
        scoped, sort_keys=True)


def test_zero_cost_when_off_runtime():
    # importing and running the core simulator never pulls in the
    # serving layer
    code = (
        "import sys\n"
        "from repro.core.cluster import DexCluster\n"
        "from repro.params import SimParams\n"
        "c = DexCluster(num_nodes=2, params=SimParams().copy(seed=1))\n"
        "def main(ctx):\n"
        "    yield from ctx.compute(cpu_us=1.0)\n"
        "c.simulate(main)\n"
        "assert 'repro.serve' not in sys.modules, 'serve leaked into core'\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_zero_cost_when_off_structural():
    # no core/sim/net/chaos/obs module imports the serving layer
    core_dirs = ("core", "sim", "net", "chaos", "obs", "apps", "runtime")
    offenders = []
    for d in core_dirs:
        for path in (SRC / "repro" / d).rglob("*.py"):
            text = path.read_text()
            if "repro.serve" in text or "from repro import serve" in text:
                offenders.append(str(path))
    assert offenders == []


def test_cli_smoke_and_report_roundtrip(tmp_path, capsys):
    from repro.serve.__main__ import main

    out = tmp_path / "report.json"
    rc = main([
        "--tenants", "kmn:constant,scan:burst", "--nodes", "4",
        "--requests", "60", "--rate", "8000", "--items", "4096",
        "--request-items", "512", "--burst-at-us", "2000",
        "--burst-for-us", "2000", "--seed", "11", "--out", str(out),
    ])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "DexServe SLO report" in printed
    assert "p99us" in printed
    saved = json.loads(out.read_text())
    assert saved["schema"] == "dex-serve-report/v1"
    rc = main(["report", str(out)])
    assert rc == 0
    assert "DexServe SLO report" in capsys.readouterr().out
