"""Baseline suppression semantics: matching, expiry, staleness, and the
3.10-compatible TOML-subset parser."""

import datetime

import pytest

from repro.vet.baseline import (
    Baseline, Suppression, _parse_toml_subset, render,
)
from repro.vet.rules import Violation

TODAY = datetime.date(2026, 8, 8)


def v(rule="dropped-wait", path="/repo/src/repro/core/protocol.py",
      line=10, message="call to blocking 'transfer(...)'"):
    return Violation(rule=rule, path=path, line=line, message=message)


def entry(**kw):
    defaults = dict(rule="dropped-wait", path="core/protocol.py",
                    reason="known-manual-drive")
    defaults.update(kw)
    return Suppression(**defaults)


# -- matching ---------------------------------------------------------------

def test_suffix_path_match_suppresses():
    reported, suppressed = Baseline([entry()]).apply([v()], today=TODAY)
    assert reported == [] and len(suppressed) == 1


def test_rule_mismatch_does_not_suppress():
    baseline = Baseline([entry(rule="reply-pairing")])
    reported, suppressed = baseline.apply([v()], today=TODAY)
    assert len(reported) == 1 and suppressed == []


def test_line_pin_must_match():
    baseline = Baseline([entry(line=10)])
    assert baseline.apply([v(line=10)], today=TODAY)[0] == []
    assert len(baseline.apply([v(line=11)], today=TODAY)[0]) == 1


def test_message_substring_must_match():
    baseline = Baseline([entry(match="transfer")])
    assert baseline.apply([v()], today=TODAY)[0] == []
    baseline = Baseline([entry(match="acquire")])
    assert len(baseline.apply([v()], today=TODAY)[0]) == 1


def test_unrelated_path_does_not_suppress():
    baseline = Baseline([entry(path="core/migration.py")])
    assert len(baseline.apply([v()], today=TODAY)[0]) == 1


# -- expiry and hygiene -----------------------------------------------------

def test_expired_entry_stops_suppressing():
    baseline = Baseline([entry(expires=datetime.date(2026, 1, 1))])
    reported, suppressed = baseline.apply([v()], today=TODAY)
    assert len(reported) == 1 and suppressed == []


def test_unexpired_entry_still_suppresses():
    baseline = Baseline([entry(expires=datetime.date(2027, 1, 1))])
    reported, suppressed = baseline.apply([v()], today=TODAY)
    assert reported == [] and len(suppressed) == 1


def test_strict_reports_expired_entry():
    baseline = Baseline([entry(expires=datetime.date(2026, 1, 1))])
    reported, _ = baseline.apply([v()], strict=True, today=TODAY)
    rules = {r.rule for r in reported}
    assert "baseline-expired" in rules
    assert "dropped-wait" in rules  # the violation itself resurfaces


def test_strict_reports_stale_entry():
    baseline = Baseline([entry(path="gone/module.py")])
    reported, _ = baseline.apply([], strict=True, today=TODAY)
    assert [r.rule for r in reported] == ["baseline-stale"]


def test_strict_reports_unjustified_entry():
    baseline = Baseline([entry(reason="  ")])
    reported, _ = baseline.apply([v()], strict=True, today=TODAY)
    assert "baseline-unjustified" in {r.rule for r in reported}


def test_non_strict_ignores_hygiene():
    baseline = Baseline([entry(path="gone/module.py")])
    reported, _ = baseline.apply([], strict=False, today=TODAY)
    assert reported == []


def test_used_entry_not_stale_under_strict():
    baseline = Baseline([entry()])
    reported, suppressed = baseline.apply([v()], strict=True, today=TODAY)
    assert reported == [] and len(suppressed) == 1


# -- file round-trip --------------------------------------------------------

SAMPLE = '''\
# comment
[[suppress]]
rule = "dropped-wait"
path = "core/protocol.py"
line = 10
match = "transfer"          # trailing comment
reason = "driven by the recovery harness"
expires = "2027-01-01"

[[suppress]]
rule = "reply-pairing"
path = "core/vma_sync.py"
reason = "one-way by design"
'''


def test_subset_parser_parses_sample():
    data = _parse_toml_subset(SAMPLE)
    assert len(data["suppress"]) == 2
    first = data["suppress"][0]
    assert first["rule"] == "dropped-wait"
    assert first["line"] == 10
    assert first["expires"] == "2027-01-01"


def test_subset_parser_matches_tomllib():
    tomllib = pytest.importorskip("tomllib")
    # tomllib parses dates natively; normalise for comparison
    official = tomllib.loads(SAMPLE)
    ours = _parse_toml_subset(SAMPLE)
    for a, b in zip(official["suppress"], ours["suppress"]):
        for key in set(a) | set(b):
            assert str(a[key]) == str(b[key]), key


def test_subset_parser_rejects_garbage():
    with pytest.raises(ValueError, match="parse error"):
        _parse_toml_subset("rule = \n")


def test_load_and_apply_from_file(tmp_path):
    path = tmp_path / "vet-baseline.toml"
    path.write_text(SAMPLE)
    baseline = Baseline.load(path)
    assert len(baseline.entries) == 2
    reported, suppressed = baseline.apply(
        [v(message="call to blocking 'transfer(...)'")], today=TODAY
    )
    assert reported == [] and len(suppressed) == 1


def test_render_roundtrip(tmp_path):
    text = render([v()], reason="seeded")
    path = tmp_path / "vet-baseline.toml"
    path.write_text(text)
    baseline = Baseline.load(path)
    (e,) = baseline.entries
    assert e.rule == "dropped-wait"
    assert e.path == "core/protocol.py"  # portable suffix, not absolute
    assert e.reason == "seeded"
    assert baseline.apply([v()], today=TODAY)[0] == []
