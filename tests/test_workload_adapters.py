"""Differential tests for the request-sized query adapters in
repro.apps.workloads: driving an adapter over every slot of the working
set must reproduce exactly what the batch path computes over the whole
set.  References are computed host-side (numpy / pure python), so a bug
in the DSM read path or the slot arithmetic cannot self-certify."""

import numpy as np

from repro.apps import workloads
from repro.apps.blackscholes import FIELDS, _price_arrays
from repro.core.cluster import DexCluster
from repro.params import SimParams
from repro.runtime import MemoryAllocator
from repro.runtime.array import alloc_array


def make_cluster(seed=9):
    return DexCluster(num_nodes=2, params=SimParams().copy(seed=seed))


def ref_starting_counts(text, keys, lo, hi):
    """Independent occurrence counter: matches *starting* in [lo, hi)."""
    return [
        sum(1 for i in range(lo, hi) if text[i:i + len(key)] == key)
        for key in keys
    ]


def test_kmn_query_matches_batch_assignment():
    n, k, per = 1024, 4, 128
    cluster = make_cluster()
    proc = cluster.create_process(name="kmn-diff")
    alloc = MemoryAllocator(proc)
    points = workloads.clustered_points(n, k, seed=3)
    centers = points[:k].copy()
    points_arr = alloc_array(alloc, np.float64, n * 3, name="points",
                             page_aligned=True)
    centroids = alloc_array(alloc, np.float64, k * 3, name="centroids",
                            segment="globals", page_aligned=True)

    def main(ctx):
        yield from points_arr.write(ctx, 0, points.ravel())
        yield from centroids.write(ctx, 0, centers.ravel())
        labels = []
        for lo in range(0, n, per):
            got = yield from workloads.kmn_query(
                ctx, points_arr, centroids, k, lo, lo + per)
            labels.append(got)
        return np.concatenate(labels)

    got = cluster.simulate(main, proc)
    d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    assert np.array_equal(got, d2.argmin(axis=1))


def test_grp_lookup_matches_reference_counts():
    n, per = 16_384, 4_096
    cluster = make_cluster()
    proc = cluster.create_process(name="grp-diff")
    alloc = MemoryAllocator(proc)
    text = workloads.text_corpus(n, seed=5, plant_every=100)
    keys = workloads.DEFAULT_KEYS
    text_arr = alloc_array(alloc, np.uint8, n, name="text", page_aligned=True)

    def main(ctx):
        yield from text_arr.write(ctx, 0, np.frombuffer(text, dtype=np.uint8))
        per_slot = []
        for lo in range(0, n, per):
            got = yield from workloads.grp_lookup(
                ctx, text_arr, n, keys, lo, lo + per)
            per_slot.append(got)
        return per_slot

    per_slot = cluster.simulate(main, proc)
    for slot, lo in enumerate(range(0, n, per)):
        assert per_slot[slot] == ref_starting_counts(text, keys, lo, lo + per)
    # slot-wise sums equal the whole-corpus batch answer
    totals = [sum(col) for col in zip(*per_slot)]
    assert totals == ref_starting_counts(text, keys, 0, n)
    assert sum(totals) > 0  # the corpus plants real matches


def test_scan_query_folds_into_shared_hit_counters():
    n, per = 16_384, 4_096
    cluster = make_cluster()
    proc = cluster.create_process(name="scan-diff")
    alloc = MemoryAllocator(proc)
    text = workloads.text_corpus(n, seed=6, plant_every=100)
    keys = workloads.DEFAULT_KEYS
    text_arr = alloc_array(alloc, np.uint8, n, name="text", page_aligned=True)
    hits = alloc_array(alloc, np.int64, len(keys), name="hits",
                       segment="globals", page_aligned=True)

    def main(ctx):
        yield from text_arr.write(ctx, 0, np.frombuffer(text, dtype=np.uint8))
        per_slot = []
        for lo in range(0, n, per):
            got = yield from workloads.scan_query(
                ctx, text_arr, n, keys, hits, lo, lo + per)
            per_slot.append(got)
        final = yield from hits.read(ctx)
        return per_slot, final

    per_slot, final = cluster.simulate(main, proc)
    expected_totals = ref_starting_counts(text, keys, 0, n)
    for slot, lo in enumerate(range(0, n, per)):
        assert per_slot[slot] == ref_starting_counts(text, keys, lo, lo + per)
    # the contended shape: shared counters accumulate the same totals
    assert list(final) == expected_totals


def test_blk_price_query_matches_batch_pricing():
    n, per = 2_048, 512
    cluster = make_cluster()
    proc = cluster.create_process(name="blk-diff")
    alloc = MemoryAllocator(proc)
    batch = workloads.option_batch(n, seed=8)
    inputs = {
        name: alloc_array(alloc, np.float64, n, name=name, page_aligned=True)
        for name in FIELDS
    }
    flags = alloc_array(alloc, np.uint8, n, name="flags", page_aligned=True)

    def main(ctx):
        for name in FIELDS:
            yield from inputs[name].write(ctx, 0, getattr(batch, name))
        yield from ctx.write(flags.addr, batch.is_call.astype(np.uint8).tobytes())
        prices = []
        for lo in range(0, n, per):
            got = yield from workloads.blk_price_query(
                ctx, inputs, flags, lo, lo + per)
            prices.append(got)
        return np.concatenate(prices)

    got = cluster.simulate(main, proc)
    expected = _price_arrays(batch.spot, batch.strike, batch.rate,
                             batch.volatility, batch.maturity, batch.is_call)
    assert np.allclose(got, expected)


def test_adapters_do_not_disturb_batch_entrypoints():
    # the batch mains the adapters were factored from still exist and
    # stay importable — serving is a layer, not a rewrite
    from repro.apps import blackscholes, kmeans, string_match

    for mod in (kmeans, string_match, blackscholes):
        assert callable(mod.run) and callable(mod.run_workers)
