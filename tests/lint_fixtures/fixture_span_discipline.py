"""Fixture: spans opened outside ``with`` and trace ids smuggled through
dict payloads — every form the span-discipline rule must flag."""


def leaky_span(tracer, obs):
    handle = tracer.span("fault", node=0, tid=1)  # never closed
    ctx = maybe_span(obs, "compute", node=0)      # noqa: F821 — same leak
    return handle, ctx


def smuggled_context(current):
    payload = {"trace_id": current.trace_id, "parent_span": current.span_id}
    record = {"span_id": current.span_id}
    return payload, record


def sanctioned(tracer, obs):
    # the with forms are fine — the rule must not flag these
    with tracer.span("fault", node=0, tid=1):
        pass
    with maybe_span(obs, "compute", node=0) as span:  # noqa: F821
        return span
