"""Lint fixture: wall-clock and unseeded-RNG calls inside sim code —
must trip ``sim-nondeterminism`` for the import and both calls."""

import random
import time


def jitter():
    return random.random() + time.time()
