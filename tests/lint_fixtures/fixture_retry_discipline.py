"""Trips the retry-discipline rule twice: a request-class message with no
TIMEOUT_CLASSES entry, and a hand-rolled exponential retransmit loop."""


class MsgType:
    SYN = "syn"
    NAK = "nak"


TIMEOUT_CLASSES = {MsgType.SYN: "ctl"}


def Message(msg_type, dst=0):
    return (msg_type, dst)


def wire(router, msg):
    # keep the unhandled-message-type rule satisfied: both members are
    # registered handlers, this fixture is about the transport rules
    router.register(MsgType.SYN, wire)
    router.register(MsgType.NAK, wire)


def declared_request(net):
    # fine: SYN declares a timeout class
    reply = yield from net.request(Message(MsgType.SYN))
    return reply


def undeclared_request(net):
    msg = Message(MsgType.NAK)
    # flagged: NAK has no TIMEOUT_CLASSES entry (resolved via the binding)
    reply = yield from net.request(msg)
    return reply


def hand_rolled_backoff(net, engine):
    delay = 10.0
    # flagged: sends inside the loop and scales its own delay
    while True:
        yield from net.send(Message(MsgType.SYN))
        yield engine.timeout(delay)
        delay *= 2


def constant_backoff(net, engine):
    # fine: constant-delay busy retry, the acquire_page shape
    while True:
        reply = yield from net.request(Message(MsgType.SYN))
        if reply:
            return reply
        yield engine.timeout(130.0)
