"""Fixture for the slots-discipline rule: lives under a ``sim`` path, so
every class here must declare ``__slots__`` unless exempt."""

import enum
from dataclasses import dataclass


class BadEvent:  # flagged: no __slots__
    def __init__(self):
        self.value = None


class GoodEvent:
    __slots__ = ("value",)

    def __init__(self):
        self.value = None


@dataclass(slots=True)
class GoodRecord:
    value: int = 0


@dataclass
class BadRecord:  # flagged: dataclass without slots=True
    value: int = 0


class Kind(enum.Enum):  # exempt: enums carry their own machinery
    A = "a"


class BoomError(Exception):  # exempt: exception classes
    pass
