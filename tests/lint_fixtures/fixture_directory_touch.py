"""Lint fixture: reaching into directory storage internals from outside
``core/directory.py`` — must trip ``directory-encapsulation``."""


def peek(state):
    return state.directory_shard.entries


def stale_hint(state, vpn):
    return state.owner_hints._lru.get(vpn)
