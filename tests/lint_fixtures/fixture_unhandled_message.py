"""Lint fixture: a MsgType member with no handler anywhere.

HELLO is wired to a router; ORPHAN is dead protocol surface and must
trip ``unhandled-message-type``.
"""

import enum


class MsgType(enum.Enum):
    HELLO = "hello"
    ORPHAN = "orphan"


def wire(router):
    router.register(MsgType.HELLO, lambda msg: None)
