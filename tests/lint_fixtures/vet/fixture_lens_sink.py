"""Seeded lens-sink-discipline violations: direct mutation of a tracer's
sink lists (bypassing Tracer.add_sink) and a critical-path phase label
spelled as a string literal instead of the PathPhase enum."""


class HeatProbe:
    def __init__(self, tracer, histogram):
        self.hits = 0
        # BAD: direct mutation of the tracer's sink registry — the
        # pre-bound callback lists go stale
        tracer._sinks.append(self)
        tracer._sink_close.append(self.on_span_close)
        self.histogram = histogram

    def on_span_close(self, span):
        self.hits += 1
        # BAD: phase label as a string literal, not PathPhase.WIRE.value
        self.histogram.labels(phase="wire", app="other").observe(
            span.duration_us
        )

    def detach(self, tracer):
        # BAD: assignment counts as direct mutation too
        tracer._sink_msg = []


def register(tracer, probe):
    # GOOD: the one sanctioned subscription point
    tracer.add_sink(probe)


def record(histogram, phase, us):
    # GOOD: the label value arrives from the enum, not a literal
    histogram.labels(phase=phase.value, app="other").observe(us)
