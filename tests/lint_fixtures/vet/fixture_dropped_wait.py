"""Seeded bug: blocking (generator) calls whose result is never driven.

Three variants of the silently-dropped-wait bug DexVet's effect
inference must catch — plus the sanctioned forms, which must not fire.
"""


def transfer_page(engine, latency):
    """A blocking sim operation: models the wire delay of a page move."""
    yield engine.timeout(latency)
    return latency


def drain_queue(engine, queue):
    while queue:
        yield engine.timeout(queue.pop())


def forward_transfer(engine, latency):
    # non-generator wrapper: hands back the generator, so callers must
    # drive its result exactly like transfer_page itself
    return transfer_page(engine, latency)


def migrate(engine, pages):
    total = 0
    for latency in pages:
        transfer_page(engine, latency)  # BUG: generator built and dropped
        total += latency
    return total


def warmup(engine):
    yield transfer_page(engine, 5)  # BUG: yields a generator, not a waitable


def finish(engine, queue):
    pending = drain_queue(engine, queue)  # BUG: bound but never driven
    return True


def relocate(engine, latency):
    forward_transfer(engine, latency)  # BUG: wrapper is just as blocking


def migrate_correctly(engine, pages):
    total = 0
    for latency in pages:
        total += yield from transfer_page(engine, latency)  # OK: driven
    return total


def finish_correctly(engine, queue):
    handle = engine.process(drain_queue(engine, queue))  # OK: spawned
    yield handle
