"""Seeded bug: a message type that is sent but never handled anywhere.

Dispatch would raise on delivery; handler-totality pins the send site
and the legacy unhandled-message-type rule pins the definition.
"""


class MsgType:
    EVICT_NOTICE = 1


def notify(net, src, dst):
    net.send(Message(MsgType.EVICT_NOTICE, src=src, dst=dst))
