"""Seeded bug: a request whose handler never replies.

``FETCH_HINT`` is awaited via ``.request(...)`` and its handler is
registered and resolvable — but no ``make_reply`` is reachable from it,
so the requester would wait forever.  Only the call-graph reply closure
can see this.
"""


class MsgType:
    FETCH_HINT = 1


class HintService:
    def handle_fetch_hint(self, msg):
        # handles the message... and forgets to reply
        self.hints[msg.payload["vpn"]] = msg.src


def wire(router, svc):
    router.register(MsgType.FETCH_HINT, svc.handle_fetch_hint)


def lookup(net, src, dst, vpn):
    reply = yield from net.request(
        Message(MsgType.FETCH_HINT, src=src, dst=dst, payload={"vpn": vpn})
    )
    return reply
