"""Seeded bug: trace-injection coverage holes.

Two distinct holes: a helper that delivers by poking the router's
``dispatch`` directly (skipping the fabric entirely), and a fabric-
shaped class whose ``send`` frontend forgets to stamp trace context
before handing off to its ``_send_impl``.
"""


class ShortcutMailbox:
    """Delivers locally by calling the router directly — bypassing the
    fabric's trace stamping and chaos interposition."""

    def __init__(self, router):
        self.router = router

    def deliver(self, msg):
        self.router.dispatch(msg)  # BUG: bypasses Tracer.inject


class BareFabric:
    def send(self, msg):  # BUG: no Tracer.inject before handoff
        self._send_impl(msg)

    def _send_impl(self, msg):
        self.outbox = msg
