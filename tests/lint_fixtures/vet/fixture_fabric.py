"""Clean fabric-shaped module: frontends stamp trace context, internals
stay inside the module.  Scanned alone it must produce zero violations;
paired with ``fixture_chaos_bypass.py`` it provides the ``_send_impl``
definition that makes the cross-module bypass visible.
"""


class MiniFabric:
    def send(self, msg):
        self.tracer.inject(msg)
        self._send_impl(msg)

    def _send_impl(self, msg):
        self.outbox.append(msg)
