"""Seeded metric-discipline violations: direct metric construction
outside the obs layer and an ad-hoc stat dict where registry families
belong — plus the collections.Counter false-positive trap."""

from collections import Counter

from repro.obs.metrics import Gauge, Histogram, MetricsRegistry


class ShardTracker:
    def __init__(self):
        # BAD: hand-rolled metrics store instead of registry families
        self.stats = {}
        # BAD: suffix match — still a stat dict
        self.request_counters = {}
        # GOOD: an ordinary dict under an unrelated name stays clean
        self.routes = {}
        # BAD: direct construction bypasses the registry
        self.depth = Gauge("shard_depth")
        self.latency = Histogram("shard_latency_us")

    def observe(self, key, us):
        self.stats[key] = self.stats.get(key, 0) + 1
        self.latency.observe(us)


def build_registry():
    # GOOD: registration through the registry is the sanctioned path
    registry = MetricsRegistry()
    faults = registry.counter("faults_total", "page faults")
    depth = registry.gauge("queue_depth", "runnable threads")
    faults.inc()
    return registry, depth


def tally_words(words):
    # GOOD: collections.Counter is not a metric — import-aware matching
    # must not flag it
    histogram = Counter()
    for word in words:
        histogram[word] += 1
    return histogram
