"""Clean mini-protocol: every DexVet rule must stay quiet here.

Exercises the *negative* path of each whole-program rule: a requested
type with a replying handler, a complete CONTROL_SIZES table, a declared
timeout class, and blocking calls consumed through the sanctioned forms.
"""


class MsgType:
    ECHO_REQUEST = 1
    ECHO_REPLY = 2


CONTROL_SIZES = {
    MsgType.ECHO_REQUEST: 64,
    MsgType.ECHO_REPLY: 64,
}

TIMEOUT_CLASSES = {
    MsgType.ECHO_REQUEST: "ctl",
}


class EchoService:
    def handle_echo(self, msg):
        return msg.make_reply(MsgType.ECHO_REPLY, payload={"ok": True})


def wire(router, svc):
    router.register(MsgType.ECHO_REQUEST, svc.handle_echo)


def echo(net, src, dst):
    reply = yield from net.request(Message(MsgType.ECHO_REQUEST, src=src, dst=dst))
    return reply


def echo_in_background(engine, net, src, dst):
    return engine.process(echo(net, src, dst))
