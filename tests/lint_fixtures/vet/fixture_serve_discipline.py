"""Seeded serve-discipline violations: admission decided outside the
policy layer, queue internals touched directly, and decisions tallied
on ad-hoc attributes instead of registry counters."""

from repro.serve.policy import AdmissionDecision


class PushyManager:
    def __init__(self, queue, registry):
        self.queue = queue
        self.admitted = 0
        self.counter = registry.counter("ok_total", "sanctioned path")

    def force_admit(self, request):
        # BUG: bypasses the admission policy and the wakeup protocol
        self.queue._backlog.append(request)
        self.admitted += 1

    def panic_flush(self):
        # BUG: queue-private deque cleared from outside ServeQueue
        self.queue._backlog.clear()

    def side_channel_shed(self):
        # BUG: evict_oldest is a policy-only entry point
        return self.queue.evict_oldest()

    def hand_rolled_decision(self, request):
        # BUG: decisions are minted by AdmissionPolicy.decide overrides
        return AdmissionDecision("admit", request)

    def replace_backlog(self, items):
        # BUG: swapping the deque wholesale is still a mutation
        self.queue._backlog = items

    def sanctioned(self, policy, queue, request, now):
        # the one true path stays quiet
        self.counter.inc()
        return policy.decide(queue, request, now)
