"""Seeded bug: a message type with a handler but no send site anywhere.

``GHOST_SYNC`` is registered (so the per-file unhandled-message-type
rule stays quiet) but nothing ever constructs or sends one — dead
protocol surface only the whole-program send-site scan can see.
"""


class MsgType:
    USED = 1
    GHOST_SYNC = 2


def wire(router, svc):
    router.register(MsgType.USED, svc.handle_used)
    router.register(MsgType.GHOST_SYNC, svc.handle_ghost)


def poke(net, src, dst):
    net.send(Message(MsgType.USED, src=src, dst=dst))
