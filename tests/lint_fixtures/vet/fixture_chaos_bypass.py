"""Seeded bug: calling a fabric-internal delivery helper from outside
the fabric module — the chaos on_send/on_deliver hooks never see the
message.  Only fires when scanned together with ``fixture_fabric.py``
(which defines ``_send_impl``).
"""


def fast_path_deliver(fabric, msg):
    fabric._send_impl(msg)  # BUG: skips the chaos on_send hook
