"""Seeded bug: a message type without a ``CONTROL_SIZES`` entry.

The fabric cannot size ``DATA_ACK`` frames and chaos byte-loss cannot
target them; chaos-reachability pins the member definition.
"""


class MsgType:
    DATA_PUSH = 1
    DATA_ACK = 2


CONTROL_SIZES = {
    MsgType.DATA_PUSH: 4096,
}


class PushService:
    def handle_push(self, msg):
        return msg.make_reply(MsgType.DATA_ACK, payload={"ok": True})


def wire(router, svc):
    router.register(MsgType.DATA_PUSH, svc.handle_push)


def push(net, src, dst, payload):
    reply = yield from net.request(
        Message(MsgType.DATA_PUSH, src=src, dst=dst, payload=payload)
    )
    return reply
