"""Lint fixture: generator processes yielding non-waitables — both the
constant yield and the bare yield must trip ``yield-discipline``."""


def broken_process(engine):
    yield 5
    yield
    yield engine.timeout(1.0)
