"""Tests for the application runtime: allocator, arrays, sync, openmp."""

import numpy as np
import pytest

from repro.core.process import GLOBALS_BASE, HEAP_BASE
from repro.runtime import Barrier, MemoryAllocator, Mutex, parallel_region
from repro.runtime.alloc import AllocationError
from repro.runtime.array import alloc_array
from repro.runtime.openmp import node_for_worker

from conftest import make_cluster

PAGE = 4096


# ---------------------------------------------------------------------------
# allocator
# ---------------------------------------------------------------------------


def test_globals_bump_allocation(proc):
    alloc = MemoryAllocator(proc)
    a = alloc.alloc_global(10)
    b = alloc.alloc_global(10)
    assert a == GLOBALS_BASE
    assert b == a + 16  # aligned to 8
    assert alloc.globals_used() == b + 10 - GLOBALS_BASE


def test_page_aligned_global(proc):
    alloc = MemoryAllocator(proc)
    alloc.alloc_global(100)
    aligned = alloc.alloc_global(8, align=PAGE)
    assert aligned % PAGE == 0


def test_malloc_shares_pages_memalign_does_not(proc):
    """The §IV-B contrast: consecutive mallocs co-locate; posix_memalign
    isolates objects on their own pages."""
    alloc = MemoryAllocator(proc)
    a = alloc.malloc(64)
    b = alloc.malloc(64)
    assert a // PAGE == b // PAGE  # same page: false-sharing prone
    c = alloc.posix_memalign(64)
    d = alloc.posix_memalign(64)
    assert c % PAGE == 0 and d % PAGE == 0
    assert c // PAGE != d // PAGE


def test_heap_vma_mapped_on_demand(proc):
    alloc = MemoryAllocator(proc)
    addr = alloc.malloc(100 * 1024 * 1024)  # spans two slabs
    origin_map = proc.node_state(proc.origin).vma_map
    assert origin_map.find(addr) is not None
    assert origin_map.find(addr + 100 * 1024 * 1024 - 1) is not None


def test_bad_alignment_rejected(proc):
    alloc = MemoryAllocator(proc)
    with pytest.raises(ValueError):
        alloc.alloc_global(8, align=3)


def test_non_positive_size_rejected(proc):
    alloc = MemoryAllocator(proc)
    with pytest.raises(ValueError):
        alloc.malloc(0)


def test_globals_exhaustion(proc):
    alloc = MemoryAllocator(proc)
    with pytest.raises(AllocationError):
        alloc.alloc_global(1 << 40)


def test_pad_to_page(proc):
    alloc = MemoryAllocator(proc)
    alloc.alloc_global(5)
    alloc.pad_to_page()
    nxt = alloc.alloc_global(8)
    assert nxt % PAGE == 0


# ---------------------------------------------------------------------------
# DistArray
# ---------------------------------------------------------------------------


def test_array_roundtrip_across_nodes():
    cluster = make_cluster()
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    arr = alloc_array(alloc, np.float64, 100, name="xs")

    def main(ctx):
        yield from arr.write(ctx, 0, np.linspace(0.0, 1.0, 100))
        yield from ctx.migrate(2)
        data = yield from arr.read(ctx)
        yield from ctx.migrate_back()
        return data

    data = cluster.simulate(main, proc)
    assert np.allclose(data, np.linspace(0.0, 1.0, 100))


def test_array_slice_and_element_ops():
    cluster = make_cluster()
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    arr = alloc_array(alloc, np.int32, 50)

    def main(ctx):
        yield from arr.write(ctx, 10, np.arange(5, dtype=np.int32))
        part = yield from arr.read(ctx, 10, 15)
        yield from arr.set(ctx, 0, 99)
        first = yield from arr.get(ctx, 0)
        old = yield from arr.add(ctx, 0, 1)
        newer = yield from arr.get(ctx, 0)
        return list(part), first, old, newer

    part, first, old, newer = cluster.simulate(main, proc)
    assert part == [0, 1, 2, 3, 4]
    assert (first, old, newer) == (99, 99, 100)


def test_array_bounds_checked():
    cluster = make_cluster()
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    arr = alloc_array(alloc, np.int64, 4)

    def main(ctx):
        with pytest.raises(IndexError):
            yield from arr.get(ctx, 4)
        with pytest.raises(IndexError):
            yield from arr.read(ctx, 0, 5)
        with pytest.raises(IndexError):
            yield from arr.write(ctx, 3, np.zeros(2, dtype=np.int64))
        return "checked"

    assert cluster.simulate(main, proc) == "checked"


def test_alloc_array_segments_and_alignment(proc):
    alloc = MemoryAllocator(proc)
    heap_arr = alloc_array(alloc, np.int8, 10, page_aligned=True)
    glob_arr = alloc_array(alloc, np.int8, 10, segment="globals", page_aligned=True)
    assert heap_arr.addr % PAGE == 0 and heap_arr.addr >= HEAP_BASE
    assert glob_arr.addr % PAGE == 0 and glob_arr.addr < HEAP_BASE
    with pytest.raises(ValueError):
        alloc_array(alloc, np.int8, 1, segment="stack")
    assert heap_arr.page_span() == 1


# ---------------------------------------------------------------------------
# Mutex / Barrier
# ---------------------------------------------------------------------------


def test_mutex_mutual_exclusion_across_nodes():
    cluster = make_cluster()
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    mutex = Mutex(alloc, name="m")
    shared = alloc.alloc_global(8, tag="protected")
    in_section = []

    def worker(ctx, node):
        yield from ctx.migrate(node)
        for _ in range(5):
            yield from mutex.lock(ctx)
            in_section.append(ctx.tid)
            # unprotected read-modify-write: correct ONLY under the lock
            value = yield from ctx.read_i64(shared)
            yield from ctx.compute(cpu_us=3.0)
            yield from ctx.write_i64(shared, value + 1)
            assert in_section[-1] == ctx.tid  # nobody slipped in
            in_section.pop()
            yield from mutex.unlock(ctx)
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, n) for n in range(4)]

    def main(ctx):
        yield from proc.join_all(threads)
        total = yield from ctx.read_i64(shared)
        return total

    assert cluster.simulate(main, proc) == 20


def test_barrier_synchronizes_all_parties():
    cluster = make_cluster()
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    barrier = Barrier(alloc, parties=4, name="b")
    phases = []

    def worker(ctx, node, delay):
        yield from ctx.migrate(node)
        for phase in range(3):
            yield from ctx.compute(cpu_us=delay)
            phases.append((phase, ctx.tid, "arrive"))
            yield from barrier.wait(ctx)
            phases.append((phase, ctx.tid, "pass"))
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, n, 10.0 * (n + 1)) for n in range(4)]

    def main(ctx):
        yield from proc.join_all(threads)

    cluster.simulate(main, proc)
    # within each phase every arrival precedes every pass
    for phase in range(3):
        events = [e for e in phases if e[0] == phase]
        last_arrive = max(i for i, e in enumerate(events) if e[2] == "arrive")
        first_pass = min(i for i, e in enumerate(events) if e[2] == "pass")
        assert last_arrive < first_pass


def test_barrier_serial_thread_unique():
    cluster = make_cluster(num_nodes=2)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    barrier = Barrier(alloc, parties=3)
    serials = []

    def worker(ctx):
        is_serial = yield from barrier.wait(ctx)
        serials.append(is_serial)

    threads = [proc.spawn_thread(worker) for _ in range(3)]

    def main(ctx):
        yield from proc.join_all(threads)

    cluster.simulate(main, proc)
    assert sum(serials) == 1


def test_barrier_param_validation(proc):
    alloc = MemoryAllocator(proc)
    with pytest.raises(ValueError):
        Barrier(alloc, parties=0)


# ---------------------------------------------------------------------------
# parallel_region
# ---------------------------------------------------------------------------


def test_node_for_worker_block_assignment():
    nodes = [0, 1, 2, 3]
    placement = [node_for_worker(i, 8, nodes) for i in range(8)]
    assert placement == [0, 0, 1, 1, 2, 2, 3, 3]
    with pytest.raises(ValueError):
        node_for_worker(8, 8, nodes)


def test_parallel_region_distributes_and_returns():
    cluster = make_cluster()
    proc = cluster.create_process()
    where = {}

    def body(ctx, wid, scale):
        where[wid] = ctx.node
        yield from ctx.compute(cpu_us=5.0)
        return wid * scale

    def main(ctx):
        results = yield from parallel_region(ctx, body, 8, args=(10,))
        return results

    results = cluster.simulate(main, proc)
    assert results == [i * 10 for i in range(8)]
    assert where == {i: i // 2 for i in range(8)}
    # everyone migrated back
    assert all(t.current_node == 0 for t in proc.threads)


def test_parallel_region_no_migrate():
    cluster = make_cluster()
    proc = cluster.create_process()

    def body(ctx, wid):
        yield from ctx.compute(cpu_us=1.0)
        return ctx.node

    def main(ctx):
        nodes = yield from parallel_region(ctx, body, 4, migrate=False)
        return nodes

    assert cluster.simulate(main, proc) == [0, 0, 0, 0]
    assert proc.stats.migrations == []
