"""The seeded-bug fixture corpus: every planted defect is detected,
every clean fixture passes with zero false positives, and the repo
itself is vet-clean."""

from pathlib import Path

import pytest

from repro.vet import ALL_RULES, GRAPH_RULES, build_context, run_rules, vet_repo
from repro.vet.legacy import LEGACY_RULES

FIXTURES = Path(__file__).parent / "lint_fixtures" / "vet"


def vet_fixture(*names):
    ctx = build_context([FIXTURES / name for name in names])
    return run_rules(ctx)


def rules_fired(violations):
    return sorted({v.rule for v in violations})


def test_registry_contains_all_rules():
    assert set(ALL_RULES) == set(GRAPH_RULES) | set(LEGACY_RULES)
    assert len(ALL_RULES) == 16


def test_dropped_wait_fixture():
    violations = [v for v in vet_fixture("fixture_dropped_wait.py")]
    assert rules_fired(violations) == ["dropped-wait"]
    by_line = {v.line: v.message for v in violations}
    # the acceptance case: a deliberately un-yielded blocking call
    assert 28 in by_line and "built and dropped" in by_line[28]
    # yield (not yield from) of a generator
    assert 34 in by_line and "yield from" in by_line[34]
    # bound but never driven
    assert 38 in by_line and "'pending'" in by_line[38]
    # blocking-ness propagates through a return wrapper
    assert 43 in by_line and "forward_transfer" in by_line[43]
    assert len(violations) == 4  # the sanctioned forms stay quiet


def test_orphan_msgtype_fixture():
    violations = vet_fixture("fixture_orphan_msgtype.py")
    assert rules_fired(violations) == ["orphan-message-type"]
    (v,) = violations
    assert "GHOST_SYNC" in v.message
    assert v.line == 11


def test_missing_handler_fixture():
    violations = vet_fixture("fixture_missing_handler.py")
    # whole-program rule pins the send site, legacy rule the definition
    assert rules_fired(violations) == [
        "handler-totality", "unhandled-message-type",
    ]
    totality = [v for v in violations if v.rule == "handler-totality"]
    assert len(totality) == 1 and totality[0].line == 13
    assert "EVICT_NOTICE" in totality[0].message


def test_unpaired_request_fixture():
    violations = vet_fixture("fixture_unpaired_request.py")
    assert rules_fired(violations) == ["reply-pairing"]
    (v,) = violations
    assert "FETCH_HINT" in v.message
    assert "wait forever" in v.message
    assert v.line == 25  # the .request call site


def test_dispatch_bypass_fixture():
    violations = vet_fixture("fixture_dispatch_bypass.py")
    assert rules_fired(violations) == ["inject-coverage"]
    messages = {v.line: v.message for v in violations}
    assert 18 in messages and "dispatch" in messages[18]
    assert 22 in messages and "Tracer.inject" in messages[22]
    assert len(violations) == 2


def test_missing_control_size_fixture():
    violations = vet_fixture("fixture_missing_control_size.py")
    assert rules_fired(violations) == ["chaos-reachability"]
    (v,) = violations
    assert "DATA_ACK" in v.message and "CONTROL_SIZES" in v.message


def test_chaos_bypass_fixture_needs_fabric_in_scope():
    # alone, _send_impl resolves to nothing — no violation (and no guess)
    assert vet_fixture("fixture_chaos_bypass.py") == []
    # scanned with the fabric that defines _send_impl, the cross-module
    # bypass becomes visible
    violations = vet_fixture("fixture_fabric.py", "fixture_chaos_bypass.py")
    assert rules_fired(violations) == ["chaos-reachability"]
    (v,) = violations
    assert "fixture_chaos_bypass.py" in v.path
    assert "_send_impl" in v.message


def test_lens_sink_fixture():
    violations = vet_fixture("fixture_lens_sink.py")
    assert rules_fired(violations) == ["lens-sink-discipline"]
    by_line = {v.line: v.message for v in violations}
    # direct .append on the tracer's sink registries
    assert 11 in by_line and "Tracer.add_sink" in by_line[11]
    assert 12 in by_line and "_sink_close" in by_line[12]
    # phase label spelled as a string literal
    assert 18 in by_line and "PathPhase" in by_line[18]
    # plain assignment counts as mutation too
    assert 24 in by_line and "_sink_msg" in by_line[24]
    # the sanctioned forms (add_sink, phase=enum.value) stay quiet
    assert len(violations) == 4


def test_metric_discipline_fixture():
    violations = vet_fixture("fixture_metric_discipline.py")
    assert rules_fired(violations) == ["metric-discipline"]
    by_line = {v.line: v.message for v in violations}
    # ad-hoc stat dicts, exact name and suffix match
    assert 13 in by_line and "self.stats" in by_line[13]
    assert 15 in by_line and "request_counters" in by_line[15]
    # direct metric construction outside the obs layer
    assert 19 in by_line and "Gauge" in by_line[19]
    assert 20 in by_line and "registry.histogram" in by_line[20]
    # registry-family registration, unrelated dicts, and
    # collections.Counter (import-aware matching) all stay quiet
    assert len(violations) == 4


def test_serve_discipline_fixture():
    violations = vet_fixture("fixture_serve_discipline.py")
    assert rules_fired(violations) == ["serve-discipline"]
    by_line = {v.line: v.message for v in violations}
    # direct backlog mutation, call and wholesale-assignment forms
    assert 16 in by_line and "_backlog.append" in by_line[16]
    assert 21 in by_line and "_backlog.clear" in by_line[21]
    assert 33 in by_line and "queue-private" in by_line[33]
    # policy-only entry point called from a manager
    assert 25 in by_line and "evict_oldest" in by_line[25]
    # decision minted outside the policy layer
    assert 29 in by_line and "AdmissionDecision" in by_line[29]
    # ad-hoc tally instead of a registry counter
    assert 17 in by_line and "self.admitted" in by_line[17]
    # the sanctioned policy.decide path stays quiet
    assert len(violations) == 6


def test_lens_sink_baseline_suppression():
    # a [[suppress]] baseline entry silences the new rule like any other
    import datetime

    from repro.vet.baseline import Baseline, Suppression

    violations = vet_fixture("fixture_lens_sink.py")
    baseline = Baseline([Suppression(
        rule="lens-sink-discipline",
        path="fixture_lens_sink.py",
        reason="seeded fixture",
    )])
    reported, suppressed = baseline.apply(
        violations, today=datetime.date(2026, 8, 8)
    )
    assert reported == [] and len(suppressed) == len(violations)


def test_clean_fixtures_zero_false_positives():
    assert vet_fixture("fixture_clean.py") == []
    assert vet_fixture("fixture_fabric.py") == []


def test_whole_corpus_scan_detects_every_seeded_bug():
    # all fixtures in one whole-program scan: every seeded rule fires
    ctx = build_context([FIXTURES])
    fired = {v.rule for v in run_rules(ctx)}
    assert {
        "dropped-wait", "orphan-message-type", "handler-totality",
        "reply-pairing", "inject-coverage", "chaos-reachability",
        "lens-sink-discipline", "metric-discipline",
        "serve-discipline",
    } <= fired


def test_rule_subset_selection():
    violations = run_rules(
        build_context([FIXTURES / "fixture_missing_handler.py"]),
        ["handler-totality"],
    )
    assert rules_fired(violations) == ["handler-totality"]


def test_unknown_rule_rejected():
    ctx = build_context([FIXTURES / "fixture_clean.py"])
    with pytest.raises(ValueError, match="unknown rule"):
        run_rules(ctx, ["no-such-rule"])


def test_parse_error_reported_not_fatal(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    violations = run_rules(build_context([bad]))
    assert [v.rule for v in violations] == ["parse-error"]


def test_repo_is_vet_clean():
    # the acceptance bar: the repo passes its own whole-program analysis
    # with no baseline entries at all
    assert vet_repo() == []
