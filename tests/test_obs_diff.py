"""Differential attribution unit tests: ranked deltas, thresholded
verdicts, phase/shard attribution, report rendering, the trajectory
trend check, and the ``obs diff`` CLI exit codes — all on hand-built
manifests, no simulation."""

import pytest

from repro.obs.__main__ import main
from repro.obs.diff import (
    MetricDelta,
    diff_manifests,
    diff_trajectory,
    format_report,
)
from repro.obs.manifest import MANIFEST_FORMAT, write_manifest


def _manifest(label, sim_time, *, counters=None, phases=None,
              directory=None, p99=None, by_mode=None):
    doc = {
        "format": MANIFEST_FORMAT,
        "label": label,
        "result": {"sim_time_us": sim_time},
        "counters": counters or {},
        "directory_requests": directory or {},
        "quantiles": {},
        "phases": phases or {},
        "series": {},
    }
    if p99 is not None or by_mode is not None:
        doc["quantiles"]["fault_latency_us"] = {
            "overall": {"p99": p99} if p99 is not None else {},
            "by_mode": by_mode or {},
        }
    return doc


# -- MetricDelta --------------------------------------------------------------


def test_metric_delta_relative_change():
    m = MetricDelta("x", 100.0, 150.0, "counter")
    assert m.delta == 50.0 and m.rel == 0.5


def test_metric_delta_new_from_zero_is_infinite():
    m = MetricDelta("x", 0.0, 5.0, "counter")
    assert m.rel == float("inf")
    assert MetricDelta("y", 0.0, 0.0, "counter").rel == 0.0


# -- diff_manifests -----------------------------------------------------------


def test_identical_manifests_no_regression():
    a = _manifest("A", 100.0, counters={"faults_read": 10})
    report = diff_manifests(a, a)
    assert not report.regressed
    assert report.attribution().startswith("ok:")
    assert all(m.delta == 0.0 for m in report.deltas)


def test_deltas_ranked_by_relative_change():
    a = _manifest("A", 100.0,
                  counters={"faults_read": 10, "net_messages_sent": 100,
                            "retries": 0})
    b = _manifest("B", 150.0,
                  counters={"faults_read": 30, "net_messages_sent": 101,
                            "retries": 5})
    report = diff_manifests(a, b)
    names = [m.name for m in report.deltas]
    # new-from-zero (inf) first, then +200%, then +50%, then +1%
    assert names == ["retries", "faults_read", "sim_time_us",
                     "net_messages_sent"]
    # only result-kind metrics flip the verdict
    assert [m.name for m in report.regressions] == ["sim_time_us"]


def test_threshold_is_a_strict_bound():
    a = _manifest("A", 100.0)
    assert not diff_manifests(a, _manifest("B", 109.0)).regressed
    assert diff_manifests(a, _manifest("B", 112.0)).regressed
    # a custom threshold moves the bar
    assert not diff_manifests(
        a, _manifest("B", 140.0), threshold=0.50
    ).regressed


def test_improvement_is_never_a_regression():
    report = diff_manifests(_manifest("A", 100.0), _manifest("B", 50.0))
    assert not report.regressed


def test_headline_p99_regression():
    a = _manifest("A", 100.0, p99=10.0)
    b = _manifest("B", 100.0, p99=25.0)
    report = diff_manifests(a, b)
    assert [m.name for m in report.regressions] == ["fault_p99_us"]


def test_per_mode_quantiles_compared_but_not_headline():
    by_a = {"read": {"p50": 1.0, "p99": 4.0}}
    by_b = {"read": {"p50": 3.0, "p99": 40.0}}
    report = diff_manifests(
        _manifest("A", 100.0, by_mode=by_a),
        _manifest("B", 100.0, by_mode=by_b),
    )
    names = {m.name for m in report.deltas}
    assert {"fault_read_p50_us", "fault_read_p99_us"} <= names
    assert not report.regressed  # quantile kind never flips the verdict


def test_phase_attribution_picks_dominant_growth():
    phases_a = {"blocked": {"sum": 100.0}, "wire": {"sum": 50.0},
                "compute": {"sum": 10.0}}
    phases_b = {"blocked": {"sum": 400.0}, "wire": {"sum": 150.0},
                "compute": {"sum": 5.0}}  # compute shrank: not growth
    report = diff_manifests(
        _manifest("A", 100.0, phases=phases_a),
        _manifest("B", 150.0, phases=phases_b),
    )
    assert report.dominant_phase == "blocked"
    assert report.dominant_delta_us == 300.0
    assert report.dominant_share == pytest.approx(0.75)
    assert "dominated by blocked (+300 us, 75% of growth)" \
        in report.attribution()


def test_no_phase_growth_no_attribution():
    phases = {"blocked": {"sum": 100.0}}
    report = diff_manifests(
        _manifest("A", 100.0, phases=phases),
        _manifest("B", 150.0, phases=phases),
    )
    assert report.regressed and report.dominant_phase is None
    assert "dominated by" not in report.attribution()


def test_shard_attribution_largest_absolute_move():
    report = diff_manifests(
        _manifest("A", 100.0, directory={"0": 100, "1": 50}),
        _manifest("B", 150.0, directory={"0": 500, "1": 60, "2": 30}),
    )
    assert report.hottest_shard == "0" and report.shard_delta == 400.0
    assert "hottest shard 0 (+400 requests)" in report.attribution()


def test_format_report_table_and_limit():
    a = _manifest("A", 100.0,
                  counters={f"c{i}": 10 + i for i in range(6)})
    b = _manifest("B", 150.0,
                  counters={f"c{i}": 20 + 2 * i for i in range(6)})
    text = format_report(diff_manifests(a, b), limit=3)
    assert "diff: B vs baseline A" in text
    assert "... 4 more metrics" in text  # 7 changed, 3 shown
    assert text.strip().endswith(report_line(a, b))


def report_line(a, b):
    return diff_manifests(a, b).attribution()


def test_format_report_skips_unchanged():
    a = _manifest("A", 100.0, counters={"same": 5, "moved": 10})
    b = _manifest("B", 100.0, counters={"same": 5, "moved": 20})
    text = format_report(diff_manifests(a, b))
    assert "same" not in text and "moved" in text


# -- diff_trajectory ----------------------------------------------------------


def _entry(mode, rate=None, wall=None):
    point = {}
    if rate is not None:
        point["events_per_sec"] = rate
    if wall is not None:
        point["wall_s"] = wall
    return {"mode": mode, "points": {"storm": point}}


def test_trajectory_needs_two_entries():
    regressed, msg = diff_trajectory({"trajectory": [_entry("quick", 100)]})
    assert not regressed and "need at least 2" in msg


def test_trajectory_mode_filtered():
    doc = {"trajectory": [_entry("full", 100), _entry("quick", 100)]}
    regressed, msg = diff_trajectory(doc)
    assert not regressed and "matching mode" in msg


def test_trajectory_compares_against_best_earlier():
    doc = {"trajectory": [
        _entry("quick", 800.0),
        _entry("quick", 1000.0),  # the best run is the reference
        _entry("quick", 900.0),
    ]}
    regressed, msg = diff_trajectory(doc, threshold=0.25)
    assert not regressed and "90% of its best" in msg
    doc["trajectory"].append(_entry("quick", 500.0))
    regressed, msg = diff_trajectory(doc, threshold=0.25)
    assert regressed and "50% of its best" in msg


def test_trajectory_wall_clock_fallback():
    # app points record only wall_s; the rate is its inverse
    doc = {"trajectory": [_entry("quick", wall=1.0),
                          _entry("quick", wall=2.0)]}
    regressed, msg = diff_trajectory(doc, threshold=0.25)
    assert regressed and "50% of its best" in msg


def test_trajectory_workload_rate_preferred():
    point = {"events_per_sec": 1.0, "workload_events_per_sec": 1000.0,
             "wall_s": 99.0}
    doc = {"trajectory": [
        {"mode": "quick", "points": {"p": dict(point)}},
        {"mode": "quick",
         "points": {"p": {**point, "workload_events_per_sec": 900.0}}},
    ]}
    regressed, msg = diff_trajectory(doc)
    assert not regressed and "90%" in msg


# -- the CLI ------------------------------------------------------------------


def test_cli_diff_exit_codes(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    write_manifest(str(a), _manifest("base", 100.0))
    write_manifest(str(b), _manifest("cand", 200.0))
    # report-only never fails the build
    assert main(["diff", str(a), str(b)]) == 0
    # --check turns the verdict into the exit status
    assert main(["diff", str(a), str(b), "--check"]) == 1
    assert main(["diff", str(a), str(a), "--check"]) == 0
    assert main(["diff", str(a), str(b), "--check", "--threshold", "2.0"]) == 0
    out = capsys.readouterr().out
    assert "regression: sim_time_us +100.0%" in out
    assert "ok: no headline metric regressed" in out


def test_cli_diff_requires_two_paths(tmp_path):
    a = tmp_path / "a.json"
    write_manifest(str(a), _manifest("base", 100.0))
    with pytest.raises(SystemExit, match="two manifest paths"):
        main(["diff", str(a)])


def test_cli_diff_bench_trajectory(tmp_path, capsys):
    import json

    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps({"trajectory": [
        _entry("quick", 1000.0), _entry("quick", 400.0),
    ]}))
    assert main(["diff", "--bench", str(path)]) == 0  # report only
    assert main(["diff", "--bench", str(path), "--check"]) == 1
    assert main(["diff", "--bench", str(path), "--check",
                 "--threshold", "0.7"]) == 0
    assert "bench trend: storm at 40% of its best" in capsys.readouterr().out
