"""Golden snapshot of the extracted message graph.

The snapshot below is the repo's protocol wiring as DexVet sees it:
per message type, where it is sent, who handles it, and what replies
its handlers can produce.  It is deliberately line-number-free, so it
only breaks when the *wiring* changes — and that is the point: a new
``MsgType`` member that lands without a handler or reply entry, or a
send site that moves outside the fabric, fails this test loudly and
forces the snapshot (and the protocol reasoning) to be updated
together.

``replies`` is an over-approximation (name-based reachability): it must
always contain the true reply set, and spurious extras are accepted but
pinned, so sharpening or regressions both show up.
"""

import pytest

from repro.vet import build_context
from repro.vet.loader import package_root


@pytest.fixture(scope="module")
def graph():
    return build_context([package_root()], repo_mode=True).graph


#: msg_type -> (kind, handlers, replies); kind is request/reply/one-way
EXPECTED_WIRING = {
    "DELEGATE": ("request",
                 ["core/delegation.py::DelegationService.handle_delegate"],
                 ["DELEGATE_REPLY"]),
    "DELEGATE_REPLY": ("reply", [], []),
    "LEASE_RENEW": ("one-way",
                    ["core/cluster.py::DexCluster._register_handlers"
                     ".lease_handler"],
                    []),
    "MIGRATE": ("request",
                ["core/migration.py::MigrationService.handle_migrate_msg"],
                ["MIGRATE_DONE"]),
    "MIGRATE_BACK": ("request",
                     ["core/migration.py::MigrationService"
                      ".handle_migrate_back_msg"],
                     ["MIGRATE_DONE"]),
    "MIGRATE_DONE": ("reply", [], []),
    "PAGE_GRANT": ("reply", [], []),
    "PAGE_HOME_INFO": ("reply", [], []),
    "PAGE_HOME_LOOKUP": ("request",
                         ["core/protocol.py::ConsistencyProtocol"
                          ".handle_home_lookup_msg"],
                         ["PAGE_HOME_INFO"]),
    "PAGE_INVALIDATE": ("request",
                        ["core/protocol.py::ConsistencyProtocol"
                         ".handle_invalidate_msg"],
                        ["PAGE_INVALIDATE_ACK"]),
    "PAGE_INVALIDATE_ACK": ("reply", [], []),
    "PAGE_REDIRECT": ("reply", [], []),
    "PAGE_REQUEST": ("request",
                     ["core/protocol.py::ConsistencyProtocol"
                      ".handle_page_request_msg"],
                     ["PAGE_GRANT", "PAGE_REDIRECT", "PAGE_RETRY"]),
    "PAGE_RETRY": ("reply", [], []),
    "PING": ("request",
             ["core/cluster.py::DexCluster._register_handlers.ping_handler"],
             ["PONG"]),
    "PONG": ("reply", [], []),
    "PROCESS_EXIT": ("one-way",
                     ["core/process.py::DexProcess.handle_exit_msg"],
                     []),
    "REQUEST_ACK": ("reply", [], []),
    "VMA_QUERY": ("request",
                  ["core/vma_sync.py::VmaSync.handle_query"],
                  ["VMA_REPLY"]),
    "VMA_REPLY": ("reply", [], []),
    # handle_shrink revokes mappings through the protocol, so the
    # name-based closure also reaches the grant/retry producers —
    # accepted over-approximation, pinned here
    "VMA_SHRINK": ("request",
                   ["core/vma_sync.py::VmaSync.handle_shrink"],
                   ["PAGE_GRANT", "PAGE_RETRY", "VMA_REPLY"]),
}


def test_member_set_matches(graph):
    assert sorted(graph.nodes) == sorted(EXPECTED_WIRING)


def test_every_member_defined_in_messages(graph):
    for node in graph.nodes.values():
        assert node.defined_in == "net/messages.py"


def test_wiring_snapshot(graph):
    snapshot = graph.to_dict()
    for name, (kind, handlers, replies) in EXPECTED_WIRING.items():
        entry = snapshot[name]
        assert entry["handlers"] == handlers, name
        assert entry["replies"] == replies, name
        if kind == "request":
            assert entry["requested"] and not entry["reply_type"], name
        elif kind == "reply":
            assert entry["reply_type"] and not entry["requested"], name
        else:
            assert not entry["requested"] and not entry["reply_type"], name


def test_every_member_sized(graph):
    # chaos fault injection needs a frame size for every type
    for name, node in graph.nodes.items():
        assert node.has_control_size, name


def test_request_types_declare_timeout_class(graph):
    for name, node in graph.nodes.items():
        if node.is_requested:
            assert node.timeout_class in ("data", "ctl", "heavy"), name


def test_every_sent_type_has_handler_or_is_reply(graph):
    for name, node in graph.nodes.items():
        if node.one_way_sends:
            assert node.handler_regs, name


def test_dot_output_renders_wiring(graph):
    dot = graph.to_dot()
    assert dot.startswith("digraph dexvet {")
    assert dot.rstrip().endswith("}")
    # a known request edge chain: sender -> type -> handler -> reply
    assert 'msg_PING' in dot and 'msg_PONG' in dot
    assert '"reply"' in dot and '"request"' in dot
    for name in EXPECTED_WIRING:
        assert f'label="{name}"' in dot


def test_snapshot_is_line_number_free(graph):
    # the snapshot must not churn when code moves vertically
    import json

    text = json.dumps(graph.to_dict())
    assert ":1" not in text.replace("py::", "py@@")  # no :<line> artifacts


def test_send_sites_deduplicated(graph):
    sites = graph.to_dict()["PAGE_GRANT"]["send_sites"]
    assert len(sites) == len(set(sites))
    assert sites == [
        "send core/protocol.py::ConsistencyProtocol.handle_request (reply)"
    ]
