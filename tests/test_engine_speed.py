"""Edge cases of the DexSpeed engine internals: the same-time FIFO fast
lane, tagged-entry timeout cancellation with heap compaction, the
``run(until)`` boundary (including the fast-lane spill), and the inline
resume — each exercised under both knob settings where the knob changes
the code path."""

import pytest

from repro.sim import Engine
from repro.sim.engine import SimulationError

KNOBS = [
    pytest.param(dict(fastlane=True, inline=True), id="fast"),
    pytest.param(dict(fastlane=False, inline=False), id="plain"),
]


# ---------------------------------------------------------------------------
# fast lane vs heap: merged dispatch order
# ---------------------------------------------------------------------------


def _same_time_order(**knobs):
    """Interleave heap entries (timeouts) and fast-lane entries (callbacks
    of already-done events) at one instant; return the dispatch order."""
    eng = Engine(**knobs)
    order = []

    def waiter(tag, delay):
        yield eng.timeout(delay)
        order.append(tag)

    def poker(tag):
        done = eng.event()
        done.succeed()           # callbacks of a done event take the
        yield done               # _schedule_now path: the fast lane
        order.append(tag)

    # creation order is the required dispatch order at t=0
    eng.process(waiter("t0", 0.0))
    eng.process(poker("p0"))
    eng.process(waiter("t1", 0.0))
    eng.process(poker("p1"))
    eng.process(waiter("t2", 0.0))
    eng.run()
    return order


def test_fastlane_and_heap_merge_in_seq_order():
    fast = _same_time_order(fastlane=True, inline=False)
    plain = _same_time_order(fastlane=False, inline=False)
    assert fast == plain
    assert sorted(fast) == ["p0", "p1", "t0", "t1", "t2"]


@pytest.mark.parametrize("knobs", KNOBS)
def test_fastlane_does_not_jump_future_heap_entries(knobs):
    """A same-time callback enqueued *during* dispatch at time t must run
    before any strictly later heap entry, but after earlier same-time
    entries already queued."""
    eng = Engine(**knobs)
    order = []

    def trigger():
        evt = eng.event()
        evt.add_callback(lambda e: order.append("cb"))
        yield eng.timeout(1.0)
        evt.succeed()            # enqueues cb at t=1 (fast lane)
        order.append("trigger")

    def late():
        yield eng.timeout(2.0)
        order.append("late")

    eng.process(trigger())
    eng.process(late())
    eng.run()
    assert order == ["trigger", "cb", "late"]
    assert eng.now == 2.0


# ---------------------------------------------------------------------------
# cancellation: tagged entries, compaction, interleavings
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("knobs", KNOBS)
def test_cancelled_timeouts_do_not_advance_clock(knobs):
    eng = Engine(**knobs)

    def body():
        keep = eng.timeout(10.0)
        drop = eng.timeout(500.0)  # a retry deadline that won't be needed
        drop.cancel()
        yield keep

    eng.process(body())
    eng.run()
    assert eng.now == 10.0  # the cancelled 500.0 entry never fired


@pytest.mark.parametrize("knobs", KNOBS)
def test_mass_cancellation_triggers_compaction(knobs):
    """Cancelling most of the queue must shrink it in place (the tagged
    entries are physically dropped once they dominate) and leave the
    survivors' order intact."""
    eng = Engine(**knobs)
    fired = []

    def arm():
        timeouts = [eng.timeout(float(i + 1)) for i in range(200)]
        for i, t in enumerate(timeouts):
            t.add_callback(lambda _e, i=i: fired.append(i))
        yield eng.timeout(0.0)
        for i, t in enumerate(timeouts):
            if i % 10 != 0:      # cancel 180 of 200
                t.cancel()

    eng.process(arm())
    eng.run()
    assert fired == list(range(0, 200, 10))
    assert eng.now == 191.0      # timeout index 190, delay 191.0
    assert eng._cancelled_entries == 0
    assert len(eng._queue) == 0


@pytest.mark.parametrize("knobs", KNOBS)
def test_cancel_after_fire_is_a_noop(knobs):
    eng = Engine(**knobs)

    def body():
        t = eng.timeout(1.0)
        yield t
        t.cancel()               # already fired: must not corrupt anything
        t.cancel()
        yield eng.timeout(1.0)

    eng.process(body())
    eng.run()
    assert eng.now == 2.0


@pytest.mark.parametrize("knobs", KNOBS)
def test_cancelled_then_rearmed_private_timeout(knobs):
    """rearm() after a fire must schedule afresh even when an unrelated
    cancellation storm compacted the heap in between."""
    eng = Engine(**knobs)
    times = []

    def body():
        sleep = eng.timeout(1.0)
        yield sleep
        times.append(eng.now)
        junk = [eng.timeout(50.0 + i) for i in range(100)]
        for t in junk:
            t.cancel()
        yield sleep.rearm(2.0)
        times.append(eng.now)

    eng.process(body())
    eng.run()
    assert times == [1.0, 3.0]


# ---------------------------------------------------------------------------
# run(until) boundaries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("knobs", KNOBS)
def test_until_is_inclusive(knobs):
    eng = Engine(**knobs)
    fired = []

    def body():
        yield eng.timeout(30.0)
        fired.append(eng.now)
        yield eng.timeout(0.5)
        fired.append(eng.now)

    eng.process(body())
    eng.run(until=30.0)          # the entry AT the boundary fires
    assert fired == [30.0]
    assert eng.now == 30.0
    eng.run()
    assert fired == [30.0, 30.5]


@pytest.mark.parametrize("knobs", KNOBS)
def test_until_with_empty_queue_advances_clock(knobs):
    eng = Engine(**knobs)
    eng.run(until=42.0)
    assert eng.now == 42.0


def test_until_spills_pending_fastlane_to_heap():
    """A second run() with an earlier `until` parks the pending fast-lane
    entries back on the heap (their sortedness invariant must survive the
    clock moving below them) and still dispatches them correctly later."""
    eng = Engine(fastlane=True, inline=True)
    order = []

    def sleeper():
        yield eng.timeout(100.0)
        order.append("sleeper")

    eng.process(sleeper())
    eng.run(until=30.0)
    assert eng.now == 30.0
    # a fresh process's first step is a fast-lane entry at t=30
    def second():
        order.append("second")
        yield eng.timeout(1.0)
        order.append("second-done")

    eng.process(second())
    eng.run(until=10.0)          # below every pending entry: spill + park
    assert order == []
    assert len(eng._fastlane) == 0
    eng.run()
    assert order == ["second", "second-done", "sleeper"]
    assert eng.now == 100.0


# ---------------------------------------------------------------------------
# guards
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("knobs", KNOBS)
def test_max_events_guard_in_both_modes(knobs):
    eng = Engine(**knobs)

    def spinner():
        while True:
            yield eng.timeout(0.0)

    eng.process(spinner())
    with pytest.raises(SimulationError, match="max_events"):
        eng.run(max_events=500)


@pytest.mark.parametrize("knobs", KNOBS)
def test_events_dispatched_accumulates(knobs):
    eng = Engine(**knobs)

    def body():
        for _ in range(5):
            yield eng.timeout(1.0)

    eng.process(body())
    eng.run(until=2.0)
    first = eng.events_dispatched
    assert first > 0
    eng.run()
    assert eng.events_dispatched > first
