"""Randomized concurrent stress tests of the consistency protocol.

Hypothesis drives random placements, access mixes, and timing jitter;
the assertions are the ground truths that must survive any interleaving:

* atomic increments are never lost;
* each thread's private slot holds exactly its last write;
* reads of a write-once cell observe either the initial or the final
  value, never garbage;
* directory/PTE invariants hold at *every ownership transition*: the
  clusters run with ``sanitize="all"`` so the coherence sanitizer
  cross-checks the directory against every node's PTEs continuously
  (plus happens-before race checking), not just at quiescence — the
  autouse conftest fixture still does the final quiescent pass.
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import MemoryAllocator

from conftest import make_cluster

GLOBALS = 0x1000_0000


@settings(max_examples=12, deadline=None)
@given(
    placements=st.lists(st.integers(min_value=0, max_value=3),
                        min_size=2, max_size=8),
    ops_per_thread=st.integers(min_value=3, max_value=12),
    gaps=st.lists(st.floats(min_value=0.1, max_value=5.0),
                  min_size=8, max_size=8),
    coalescing=st.booleans(),
)
def test_no_lost_updates_and_private_slots(placements, ops_per_thread, gaps,
                                           coalescing):
    cluster = make_cluster(num_nodes=4, sanitize="all",
                           enable_fault_coalescing=coalescing)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    counter = alloc.alloc_global(8, tag="counter")
    # private slots deliberately packed onto the same pages (worst case)
    slots = alloc.alloc_global(8 * len(placements), tag="slots")

    def worker(ctx, idx, node):
        yield from ctx.migrate(node)
        last = 0
        for i in range(ops_per_thread):
            yield from ctx.atomic_add_i64(counter, 1, site="stress:counter")
            last = idx * 1000 + i
            yield from ctx.write_i64(slots + idx * 8, last,
                                     site="stress:slot")
            got = yield from ctx.read_i64(slots + idx * 8)
            assert got == last  # read-own-write
            yield from ctx.compute(cpu_us=gaps[i % len(gaps)])
        yield from ctx.migrate_back()
        return last

    threads = [proc.spawn_thread(worker, i, node)
               for i, node in enumerate(placements)]

    def main(ctx):
        lasts = yield from proc.join_all(threads)
        total = yield from ctx.read_i64(counter)
        finals = []
        for i in range(len(placements)):
            finals.append((yield from ctx.read_i64(slots + i * 8)))
        return total, lasts, finals

    total, lasts, finals = cluster.simulate(main, proc)
    assert total == ops_per_thread * len(placements)
    assert finals == lasts


@settings(max_examples=10, deadline=None)
@given(
    readers=st.integers(min_value=1, max_value=6),
    reader_nodes=st.lists(st.integers(min_value=0, max_value=3),
                          min_size=6, max_size=6),
    write_delay=st.floats(min_value=1.0, max_value=200.0),
)
def test_write_once_cell_is_never_garbled(readers, reader_nodes, write_delay):
    """Concurrent readers racing one writer observe only the two legal
    values of the cell — page delivery is never torn."""
    cluster = make_cluster(num_nodes=4, sanitize="all")
    proc = cluster.create_process()
    initial = struct.unpack("<q", b"\xAA" * 8)[0]
    final = struct.unpack("<q", b"\x55" * 8)[0]

    def writer(ctx):
        yield from ctx.migrate(1)
        yield ctx.engine.timeout(write_delay)
        yield from ctx.write_i64(GLOBALS, final)

    def reader(ctx, node):
        yield from ctx.migrate(node)
        seen = []
        for _ in range(6):
            value = yield from ctx.read_i64(GLOBALS)
            seen.append(value)
            yield from ctx.compute(cpu_us=write_delay / 4)
        return seen

    def setup(ctx):
        yield from ctx.write_i64(GLOBALS, initial)

    cluster.simulate(setup, proc)
    t_writer = proc.spawn_thread(writer)
    t_readers = [proc.spawn_thread(reader, reader_nodes[i])
                 for i in range(readers)]

    def main(ctx):
        results = yield from proc.join_all([t_writer] + t_readers)
        return results[1:]

    all_seen = cluster.simulate(main, proc)
    for seen in all_seen:
        for value in seen:
            assert value in (initial, final), f"torn read: {value:#x}"
        # monotone: once the final value is seen, it stays
        if final in seen:
            assert all(v == final for v in seen[seen.index(final):])


@settings(max_examples=8, deadline=None)
@given(
    hops=st.lists(st.integers(min_value=0, max_value=3),
                  min_size=4, max_size=16),
    payload=st.binary(min_size=1, max_size=64),
)
def test_migrating_writer_data_integrity(hops, payload):
    """A thread hopping across random nodes writing/verifying a buffer
    that straddles a page boundary."""
    cluster = make_cluster(num_nodes=4, sanitize="all")
    proc = cluster.create_process()
    page = cluster.params.page_size
    addr = GLOBALS + page - len(payload) // 2 - 1  # straddle the boundary

    def main(ctx):
        for i, node in enumerate(hops):
            yield from ctx.migrate(node)
            stamped = bytes([i & 0xFF]) + payload
            yield from ctx.write(addr, stamped)
            back = yield from ctx.read(addr, len(stamped))
            assert back == stamped
        yield from ctx.migrate_back()
        final = yield from ctx.read(addr, len(payload) + 1)
        return final

    final = cluster.simulate(main, proc)
    assert final == bytes([(len(hops) - 1) & 0xFF]) + payload
