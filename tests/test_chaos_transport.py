"""The reliable request transport under injected wire faults: every
single-fault scenario must still produce the exact counter value, with the
retry/dedup counters showing the machinery actually engaged."""

import pytest

from repro.chaos import run_pagefault_micro
from repro.chaos.scenario import ChaosError, ChaosRule, ChaosScenario


def _scenario(*rules, seed=3, **kw):
    return ChaosScenario(rules=list(rules), seed=seed, **kw).validate()


def test_empty_scenario_completes_clean():
    out = run_pagefault_micro(_scenario())
    assert out["ok"], out
    report = out["report"]
    assert report["injections"] == {}
    assert report["retransmissions"] == 0
    assert report["crashed"] == [] and report["failed"] == []


def test_dropped_request_is_retransmitted():
    out = run_pagefault_micro(
        _scenario(ChaosRule(kind="drop", msg_type="page_request", nth=1))
    )
    assert out["ok"], out
    report = out["report"]
    assert report["injections"] == {"drop": 1}
    assert report["retransmissions"] >= 1


def test_dropped_reply_resends_cached_reply():
    """Losing the *grant* must not re-execute the handler: the responder's
    duplicate filter answers the retransmitted request from its reply
    cache, and the count stays exact."""
    out = run_pagefault_micro(
        _scenario(ChaosRule(kind="drop", msg_type="page_grant", nth=1))
    )
    assert out["ok"], out
    report = out["report"]
    assert report["injections"] == {"drop": 1}
    assert report["retransmissions"] >= 1
    assert report["replies_resent"] >= 1


def test_duplicated_request_is_suppressed():
    """A duplicated delivery must not double-apply the operation."""
    out = run_pagefault_micro(
        _scenario(ChaosRule(kind="duplicate", msg_type="page_request", nth=1))
    )
    assert out["ok"], out
    assert out["report"]["injections"] == {"duplicate": 1}


def test_delay_and_reorder_preserve_correctness():
    out = run_pagefault_micro(_scenario(
        ChaosRule(kind="delay", msg_type="page_invalidate", nth=1,
                  delay_us=900.0),
        ChaosRule(kind="reorder", msg_type="page_request", nth=2),
    ))
    assert out["ok"], out
    injected = out["report"]["injections"]
    assert injected == {"delay": 1, "reorder": 1}


def test_degraded_link_slows_but_completes():
    baseline = run_pagefault_micro(_scenario())
    out = run_pagefault_micro(_scenario(
        ChaosRule(kind="degrade", factor=50.0, times=None)
    ))
    assert out["ok"], out
    assert out["report"]["injections"]["degrade"] > 0
    assert out["elapsed_us"] > baseline["elapsed_us"]


def test_probabilistic_drops_are_survivable():
    """A lossy link (every message class, 20% drop) still yields the exact
    count — the transport's job in one line."""
    out = run_pagefault_micro(_scenario(
        ChaosRule(kind="drop", probability=0.2, times=None), seed=7,
    ))
    assert out["ok"], out
    report = out["report"]
    assert report["injections"]["drop"] > 0
    # not every drop forces a retransmission (lost replies can be answered
    # from the dedup cache, lost keepalives are just skipped beats), but
    # some dropped request must have timed out and been resent
    assert report["retransmissions"] >= 1


def test_same_seed_same_schedule():
    """The whole run — injection choices included — is a function of the
    seed: two fresh runs of one scenario agree on sim time and counters."""
    def once():
        return run_pagefault_micro(_scenario(
            ChaosRule(kind="drop", probability=0.15, times=None), seed=21,
        ))

    a, b = once(), once()
    assert a["ok"] and b["ok"]
    assert a["elapsed_us"] == b["elapsed_us"]
    assert a["report"]["injections"] == b["report"]["injections"]
    assert a["report"]["retransmissions"] == b["report"]["retransmissions"]


def test_scenario_validation_rejects_bad_rules():
    with pytest.raises(ChaosError):
        _scenario(ChaosRule(kind="flood"))
    with pytest.raises(ChaosError):
        _scenario(ChaosRule(kind="delay", delay_us=0.0))
    with pytest.raises(ChaosError):
        _scenario(ChaosRule(kind="degrade", factor=1.0))
    with pytest.raises(ChaosError):
        _scenario(ChaosRule(kind="crash", node=0, at_us=10.0))
    with pytest.raises(ChaosError):
        _scenario(ChaosRule(kind="crash", node=2))  # no time, no predicate


def test_scenario_json_round_trip():
    scenario = _scenario(
        ChaosRule(kind="drop", msg_type="page_request", nth=1),
        ChaosRule(kind="crash", node=2, at_us=500.0),
        seed=9, on_exclusive_loss="rollback",
    )
    clone = ChaosScenario.from_json(scenario.to_json())
    assert clone == scenario
    with pytest.raises(ChaosError):
        ChaosScenario.from_json('{"rules": [{"kind": "drop", "bogus": 1}]}')
