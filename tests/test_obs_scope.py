"""DexScope acceptance: sampling never perturbs a run (bit-identical on
both directory backends), the sampler grid fires once per idle gap, the
series rings decimate instead of truncating, manifests are deterministic
and round-trip through JSON, and a seeded regression is caught AND
attributed to the correct critical-path phase and directory shard."""

import json

import pytest

from repro.bench.runner import run_point
from repro.obs import lens as lens_mod
from repro.obs import scope as scope_mod
from repro.obs.diff import diff_manifests
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    build_manifest,
    load_manifest,
    write_manifest,
)
from repro.obs.ring import SeriesRing
from repro.obs.scope import CLUSTER_PID
from repro.params import SimParams
from repro.sim.engine import Engine, SimulationError

#: tiny KMN workload — the tests need protocol coverage, not load
KMN_SMALL = {"n_points": 10_000, "max_iters": 2}


def _digest(backend, scope):
    """One KMN@4 run -> every stable behavioural observable we track."""
    scope_mod.reset_recent()
    result = run_point(
        "KMN", "initial", 4,
        params=SimParams(directory=backend, scope=scope),
        **KMN_SMALL,
    )
    stats = result.stats
    return {
        "elapsed_us": result.elapsed_us,
        "correct": bool(result.correct),
        "faults": stats.total_faults,
        "retries": stats.fault_retries,
        "latency_sum_us": round(
            sum(r.latency_us for r in stats.fault_latencies), 6
        ),
    }


@pytest.mark.parametrize("backend", ["origin", "sharded"])
def test_sampling_is_behaviour_preserving(backend):
    """The ISSUE acceptance bar: a DEX_SCOPE=1 run is bit-identical to an
    unsampled one — the sampler reads state between dispatches, schedules
    nothing, and draws no randomness."""
    reference = _digest(backend, scope="")
    assert scope_mod.recent_scopes() == []  # off: no scope object at all
    sampled = _digest(backend, scope="1")
    (scope,) = scope_mod.recent_scopes()
    assert scope.samples > 0 and scope.series  # it really sampled
    assert sampled == reference, f"{backend}: sampling perturbed the run"


# -- the engine sampling grid -------------------------------------------------


def test_sampler_grid_fires_once_per_idle_gap():
    """A long quiet stretch produces ONE firing at the pending deadline,
    then the grid jumps past the current instant — no catch-up storm."""
    engine = Engine(seed=1)
    fired = []
    engine.add_sampler(fired.append, 10.0)

    def proc():
        yield engine.timeout(5.0)
        yield engine.timeout(100.0)  # idle gap spanning 10 grid periods
        yield engine.timeout(5.0)

    engine.process(proc())
    engine.run()
    assert fired == [10.0, 110.0]
    assert engine._next_sample == 120.0


def test_sampler_registration_validation():
    engine = Engine(seed=1)
    with pytest.raises(SimulationError, match="positive"):
        engine.add_sampler(lambda t: None, 0.0)
    engine.add_sampler(lambda t: None, 10.0)
    with pytest.raises(SimulationError, match="one grid interval"):
        engine.add_sampler(lambda t: None, 20.0)


def test_samplers_do_not_count_as_hooks():
    """The zero-cost-off story for the rest of the engine: samplers live
    on their own list, so hook-guarded paths stay empty."""
    engine = Engine(seed=1)
    engine.add_sampler(lambda t: None, 10.0)
    assert engine.hooks == []
    assert len(engine._hooks_sample) == 1


# -- SeriesRing ---------------------------------------------------------------


def test_series_ring_decimates_and_covers_whole_run():
    ring = SeriesRing(capacity=8, agg="mean")
    for i in range(64):
        ring.push(float(i), float(i))
    pts = ring.points()
    assert len(pts) <= 8  # bounded
    assert ring.stride > 1  # decimated, not truncated
    assert pts[0][0] == 0.0  # coverage still starts at the first sample
    assert pts[-1][0] >= 32.0  # ...and still reaches the recent end
    # mean aggregation preserves the level of a linear ramp per window
    for t, v in pts:
        assert abs(v - (t + (ring.stride - 1) / 2.0)) < ring.stride


@pytest.mark.parametrize("agg,expected", [
    ("mean", [1.0, 5.0]),
    ("max", [2.0, 6.0]),
    ("sum", [2.0, 10.0]),
    ("last", [2.0, 6.0]),
])
def test_series_ring_pairwise_combine(agg, expected):
    ring = SeriesRing(capacity=4, agg=agg)
    for t, v in enumerate([0.0, 2.0, 4.0, 6.0]):
        ring.push(float(t), v)
    assert ring.stride == 2  # hit capacity once -> one decimation
    assert [v for _, v in ring.points()] == expected
    assert [t for t, _ in ring.points()] == [0.0, 2.0]


def test_series_ring_partial_accumulator_is_visible():
    ring = SeriesRing(capacity=4, agg="mean")
    for t, v in enumerate([0.0, 2.0, 4.0, 6.0]):
        ring.push(float(t), v)
    ring.push(4.0, 100.0)  # stride is now 2: this point is half-window
    assert ring.points()[-1] == (4.0, 100.0)  # never lags the last firing


def test_series_ring_to_dict_rounds():
    ring = SeriesRing(capacity=4, agg="mean")
    ring.push(0.12345678, 1.0 / 3.0)
    doc = ring.to_dict()
    assert doc["agg"] == "mean" and doc["stride"] == 1
    assert doc["t"] == [0.123]
    assert doc["v"] == [round(1.0 / 3.0, 6)]


def test_series_ring_validation():
    with pytest.raises(ValueError, match=">= 4"):
        SeriesRing(capacity=2)
    with pytest.raises(ValueError, match="aggregation"):
        SeriesRing(agg="median")


# -- sampled runs: counter tracks, manifests, differential attribution --------


def _sampled_run(variant):
    """One fully-instrumented KMN@4 run: trace + lens + scope."""
    scope_mod.reset_recent()
    lens_mod.reset_recent()
    result = run_point(
        "KMN", variant, 4,
        params=SimParams(trace="1", lens="1", scope="1"),
        **KMN_SMALL,
    )
    scope = scope_mod.recent_scopes()[-1]
    lenses = [l for l in lens_mod.recent_lenses() if l.cluster is scope.cluster]
    return result, scope, lenses[-1]


def _manifest_for(variant):
    result, scope, lens = _sampled_run(variant)
    return build_manifest(result, scope.cluster, scope=scope, lens=lens)


@pytest.fixture(scope="module")
def opt_run():
    return _sampled_run("optimized")


@pytest.fixture(scope="module")
def opt_manifest(opt_run):
    result, scope, lens = opt_run
    return build_manifest(result, scope.cluster, scope=scope, lens=lens)


def test_scope_gauges_and_series_cover_the_rack(opt_run):
    _, scope, _ = opt_run
    keys = set(scope.series)
    assert any(k.startswith("node0.busy_frac") for k in keys)
    assert any(k.startswith("node") and k.endswith(".runq") for k in keys)
    assert any(k.startswith("nic") for k in keys)
    assert any(k.startswith("dir.home") for k in keys)
    assert "engine.queue_len" in keys and "faults.per_ms" in keys
    assert any(k.startswith("stats.") for k in keys)
    assert scope.series_dropped == 0
    # the registry families carry the latest values for live readers
    assert scope.registry.get("node_busy_frac").per_label()
    assert scope.registry.get("directory_request_rate").per_label()


def test_counter_events_structure(opt_run):
    _, scope, _ = opt_run
    events = scope.counter_events()
    meta = [e for e in events if e["ph"] == "M"]
    counters = [e for e in events if e["ph"] == "C"]
    assert len(meta) == 1 and meta[0]["pid"] == CLUSTER_PID
    assert meta[0]["args"]["name"] == "cluster (DexScope)"
    assert counters
    for event in counters:
        assert set(event) == {"name", "ph", "pid", "ts", "args"}
        assert isinstance(event["args"]["value"], float)
    # per-node series ride on that node's existing process track; the
    # cluster-wide ones on the synthetic DexScope track
    node_pids = {e["pid"] for e in counters if e["name"].startswith("node")}
    assert node_pids
    assert node_pids <= set(range(len(scope.cluster.nodes)))
    assert {e["pid"] for e in counters if e["name"].startswith("engine.")} \
        == {CLUSTER_PID}


def test_manifest_round_trips_and_is_json_pure(opt_manifest, tmp_path):
    path = tmp_path / "dex-run.json"
    write_manifest(str(path), opt_manifest)
    loaded = load_manifest(str(path))
    assert loaded == json.loads(json.dumps(opt_manifest))
    assert loaded["format"] == MANIFEST_FORMAT
    assert loaded["app"] == "KMN" and loaded["variant"] == "optimized"
    assert loaded["counters"]["net_messages_sent"] > 0
    assert loaded["result"]["sim_time_us"] > 0
    assert loaded["scope"]["samples"] > 0 and loaded["series"]
    assert loaded["phases"]  # lens critical-path section present
    for section in loaded["phases"].values():
        assert {"sum", "count", "p50", "p99"} <= set(section)
    overall = loaded["quantiles"]["fault_latency_us"]["overall"]
    assert overall["count"] > 0 and overall["p99"] >= overall["p50"]


def test_manifest_rejects_foreign_files(tmp_path):
    path = tmp_path / "other.json"
    path.write_text('{"format": "dextrace-spans-v1"}\n')
    with pytest.raises(ValueError, match="not a run manifest"):
        load_manifest(str(path))


def test_manifests_are_deterministic(opt_manifest):
    """No wall clocks, no host state: the same build produces an
    identical document — the property the CI baseline diff relies on."""
    assert _manifest_for("optimized") == opt_manifest


def test_seeded_regression_is_caught_and_attributed(opt_manifest):
    """THE acceptance scenario: the un-tuned `initial` variant is the
    seeded regression against the `optimized` baseline.  The diff must
    flag it AND name where the time went — for KMN the initial variant
    ping-pongs ownership, so threads stall on contended faults and the
    blocked phase dominates the critical-path growth."""
    candidate = _manifest_for("initial")
    report = diff_manifests(opt_manifest, candidate, threshold=0.10)
    assert report.regressed
    assert report.regressions[0].name in ("sim_time_us", "fault_p99_us")
    assert report.dominant_phase == "blocked"
    assert report.dominant_share > 0.5  # it is dominant, not just largest
    assert report.dominant_delta_us > 0
    assert report.hottest_shard is not None
    line = report.attribution()
    assert line.startswith("regression:")
    assert "dominated by blocked" in line
    assert "hottest shard" in line
    # the ranked deltas include the phase that grew
    assert any(
        m.name == "phase_blocked_us" and m.delta > 0 for m in report.deltas
    )


def test_identical_manifests_diff_clean(opt_manifest):
    report = diff_manifests(opt_manifest, opt_manifest)
    assert not report.regressed
    assert report.attribution().startswith("ok:")
