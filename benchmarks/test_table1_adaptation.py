"""Table I — complexity to apply DeX to existing applications.

Regenerates the adaptation-complexity table from each application's
recorded port metadata and checks it against the paper's rows.
"""

from repro.bench.experiments import PAPER_TABLE1, table1
from repro.bench.reporting import render_table1


def test_table1_adaptation(once):
    rows = once(table1)
    print("\n" + render_table1(rows))
    by_app = {r["app"]: r for r in rows}
    assert set(by_app) == set(PAPER_TABLE1)
    for app, (paper_initial, paper_optimized) in PAPER_TABLE1.items():
        row = by_app[app]
        assert row["initial_loc"] == paper_initial
        assert row["optimized_loc"] == paper_optimized
    # the paper's headline: pthread apps convert with one line per
    # direction; OpenMP apps at ~2.5-4 lines per region
    for app in ("GRP", "KMN", "BLK", "EP"):
        assert by_app[app]["initial_loc"] == 2
    total_initial = sum(r["initial_loc"] for r in rows)
    assert total_initial < 120  # paper: ~110 added lines in total
