"""pytest-benchmark configuration for the experiment suite.

Every benchmark regenerates one of the paper's tables or figures; the
simulations are deterministic, so each runs exactly once
(``rounds=1, iterations=1``) and the interesting output is the shape
assertion, not the wall-clock statistics.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
