"""Figure 3 — breakdown of the migration latency at the remote node.

The shape to hold: remote-worker setup dominates the first migration
(~620 of ~800 us) and disappears entirely from subsequent migrations.
"""

import pytest

from repro.bench.experiments import migration_microbench
from repro.bench.reporting import render_figure3


def test_figure3_migration_breakdown(once):
    report = once(migration_microbench)
    print("\n" + render_figure3(report))

    first = report.breakdown_first
    second = report.breakdown_second
    assert first["remote_worker"] == pytest.approx(620.0)
    remote_total = sum(v for k, v in first.items() if k != "context_collect")
    assert first["remote_worker"] / remote_total > 0.7
    assert "remote_worker" not in second
    # every other component is identical across migrations
    for comp in ("thread_fork", "context_restore", "schedule"):
        assert first[comp] == second[comp]
