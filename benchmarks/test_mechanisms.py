"""Extended §V-D: performance of DeX's individual mechanisms.

Beyond the paper's two microbenchmarks, these measure the building blocks
the applications' behaviour decomposes into: small-message round trips,
work-delegation round trips, cross-node futex wake latency, and how the
futex-based barrier scales with node count — the cost that bounds the
per-iteration apps (KMN, BP) at high node counts.
"""

import statistics

import pytest

from repro import DexCluster
from repro.runtime import Barrier, MemoryAllocator

GLOBALS = 0x1000_0000


def _ping_rtt():
    cluster = DexCluster(num_nodes=2)

    def main():
        samples = []
        for _ in range(20):
            rtt = yield from cluster.ping(0, 1)
            samples.append(rtt)
        return samples

    proc = cluster.engine.process(main())
    cluster.run()
    return statistics.mean(proc.value)


def test_small_message_round_trip(once):
    rtt = once(_ping_rtt)
    print(f"\nverb small-message RTT: {rtt:.2f} us")
    # two wire crossings plus endpoint processing; far below a page fetch
    assert 4.0 < rtt < 15.0


def _delegation_rtt():
    cluster = DexCluster(num_nodes=2)
    proc = cluster.create_process()

    def main(ctx):
        yield from ctx.migrate(1)
        samples = []
        for _ in range(20):
            start = ctx.now
            yield from proc.delegation.call(ctx.node, ctx.tid, "noop")
            samples.append(ctx.now - start)
        yield from ctx.migrate_back()
        return samples

    samples = cluster.simulate(main, proc)
    return statistics.mean(samples)


def test_delegation_round_trip(once):
    rtt = once(_delegation_rtt)
    print(f"\nwork-delegation RTT (noop): {rtt:.2f} us")
    assert 5.0 < rtt < 20.0  # a message RTT + dispatch at the origin


def _futex_wake_latency():
    cluster = DexCluster(num_nodes=3)
    proc = cluster.create_process()
    woken_at = {}

    def sleeper(ctx):
        yield from ctx.migrate(1)
        yield from ctx.futex_wait(GLOBALS, expected=0)
        woken_at["time"] = ctx.now

    def waker(ctx):
        yield from ctx.migrate(2)
        yield ctx.engine.timeout(5_000.0)
        woken_at["wake_sent"] = ctx.now
        yield from ctx.futex_wake(GLOBALS, 1)

    t1 = proc.spawn_thread(sleeper)
    t2 = proc.spawn_thread(waker)

    def main(ctx):
        yield from proc.join_all([t1, t2])

    cluster.simulate(main, proc)
    return woken_at["time"] - woken_at["wake_sent"]


def test_cross_node_futex_wake(once):
    latency = once(_futex_wake_latency)
    print(f"\ncross-node futex wake-to-run: {latency:.2f} us")
    # waker's delegation to origin + origin wake + sleeper's reply path
    assert 0.0 < latency < 40.0


def _barrier_cost(num_nodes):
    cluster = DexCluster(num_nodes=8)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    threads_total = 8 * num_nodes
    barrier = Barrier(alloc, threads_total, page_aligned=True)
    waits = []

    def worker(ctx, wid):
        yield from ctx.migrate(wid * num_nodes // threads_total)
        for _ in range(3):
            start = ctx.now
            yield from barrier.wait(ctx)
            waits.append(ctx.now - start)
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, i) for i in range(threads_total)]

    def main(ctx):
        yield from proc.join_all(threads)

    cluster.simulate(main, proc)
    return statistics.mean(waits)


def test_barrier_scaling_curve(once):
    def sweep():
        return {n: _barrier_cost(n) for n in (1, 2, 4, 8)}

    curve = once(sweep)
    print("\nfutex barrier mean wait by node count:")
    for n, cost in curve.items():
        print(f"  {n} node(s), {8 * n} threads: {cost / 1000:.2f} ms")
    # a single-node barrier is nearly free (local futexes); the cross-node
    # cost grows with node count — this bounds per-iteration apps
    assert curve[1] < curve[2] < curve[8]
    assert curve[8] < 5_000.0  # but stays in the low-millisecond range


def _migration_throughput():
    """How quickly can one process fan 64 threads out to 8 nodes?
    (the start-of-parallel-region cost every converted app pays)."""
    cluster = DexCluster(num_nodes=8)
    proc = cluster.create_process()

    def worker(ctx, node):
        yield from ctx.migrate(node)
        yield from ctx.migrate_back()

    start = cluster.engine.now
    threads = [proc.spawn_thread(worker, n % 8) for n in range(64)]

    def main(ctx):
        yield from proc.join_all(threads)

    cluster.simulate(main, proc)
    return cluster.engine.now - start


def test_fan_out_64_threads(once):
    elapsed = once(_migration_throughput)
    print(f"\nfan out + back, 64 threads over 8 nodes: {elapsed / 1000:.2f} ms")
    # worker setup per node happens once; forks overlap: far cheaper than
    # 64 serial first-migrations (64 x 812us = 52ms)
    assert elapsed < 15_000.0
