"""Ablation — leader-follower fault coalescing (§III-C).

With coalescing disabled, every thread that faults on a page runs the
protocol itself ("this can initiate multiple protocol requests, even
though all per-thread requests are for the same page"), multiplying
origin round-trips and retries.  The answer must stay correct either way.
"""

from repro.bench.experiments import ablation_coalescing
from repro.bench.reporting import render_ablation


def test_coalescing_reduces_protocol_traffic(once):
    data = once(ablation_coalescing)
    print("\n" + render_ablation("leader-follower coalescing", data))

    on, off = data["coalescing_on"], data["coalescing_off"]
    assert on["correct"] and off["correct"]
    assert on["coalesced"] > 0
    assert off["coalesced"] == 0
    # without coalescing, the same page demand turns into more retries
    # (lost directory races) and at least as many protocol-visible faults
    assert off["retries"] >= on["retries"]
    assert off["faults"] - off["coalesced"] > on["faults"] - on["coalesced"]
