"""Ablation — the page-data transfer path (§III-E).

The paper's hybrid (pre-registered RDMA sink + one memcpy) against the two
alternatives it argues down: pushing pages through the verb path (pays a
DMA mapping per send) and registering an RDMA region per page (pays the
costly dynamic registration).  Application results stay identical; only
time changes.
"""

from repro.bench.experiments import ablation_transfer_mode, ablation_transfer_skip
from repro.bench.reporting import render_ablation


def test_rdma_sink_hybrid_wins(once):
    data = once(ablation_transfer_mode)
    print("\n" + render_ablation("page transfer mode (elapsed)", data))

    assert data["rdma_sink"] < data["verb"]
    assert data["rdma_sink"] < data["rdma_register"]
    # "dynamic RDMA region association is so costly that it can offset the
    # benefit of RDMA"
    assert data["rdma_register"] > data["verb"]


def test_transfer_skip_saves_traffic(once):
    data = once(ablation_transfer_skip)
    print("\n" + render_ablation("data-transfer skip", data))

    on, off = data["skip_on"], data["skip_off"]
    assert on["correct"] and off["correct"]
    assert on["transfers_skipped"] > 0
    assert off["pages_transferred"] > on["pages_transferred"]
    assert on["elapsed_us"] <= off["elapsed_us"] * 1.02
