"""Ablation — coherence-directory placement.

The paper's origin-resident directory (§III-B) against the sharded
home-node directory: at 8 nodes on the fault-heavy KMN initial variant,
sharding spreads metadata service (and the flush/grant data traffic that
follows it) across home nodes, decongesting the origin's NIC and lowering
the mean fault-handling latency.  Application results stay correct under
both backends; the owner-hint cache keeps repeat faults from paying the
home-resolution hop.
"""

from repro.bench.experiments import ablation_directory
from repro.bench.reporting import render_ablation


def test_sharded_directory_decongests_origin(once):
    data = once(ablation_directory)
    print("\n" + render_ablation("coherence-directory placement", data))

    origin, sharded = data["origin"], data["sharded"]
    # the origin backend serves every ownership request at node 0; the
    # sharded backend spreads that load across the rack
    assert origin["origin_dir_share"] == 1.0
    assert sharded["origin_dir_share"] < 0.5
    # decongestion shows up as lower mean fault-handling latency
    assert sharded["mean_fault_us"] < origin["mean_fault_us"]
    # repeat faults resolve their home from the per-node hint LRU
    assert sharded["hint_hit_rate"] > 0.5
    assert "hint_hit_rate" not in origin  # no resolution path to cache
