"""Table II — thread migration latency.

Regenerates the migration microbenchmark (§V-D): migrate one thread every
(simulated) second, ten rounds, report per-side latencies.  The shape to
hold: the first forward migration is ~3.4x the second; backward migration
is more than an order of magnitude cheaper than forward.
"""

import pytest

from repro.bench.experiments import migration_microbench
from repro.bench.reporting import render_table2


def test_table2_migration_latency(once):
    report = once(migration_microbench)
    print("\n" + render_table2(report))

    first, second, back = (
        report.first_forward, report.second_forward, report.backward
    )
    # paper: 812.1 / 236.6 / 24.7 us
    assert first["total_us"] == pytest.approx(812.1, rel=0.05)
    assert second["total_us"] == pytest.approx(236.6, rel=0.06)
    assert back["total_us"] == pytest.approx(24.7, rel=0.20)
    # per-side attribution
    assert first["origin_us"] == pytest.approx(12.1, rel=0.05)
    assert first["remote_us"] == pytest.approx(800.0, rel=0.05)
    assert second["origin_us"] == pytest.approx(6.6, rel=0.05)
    assert second["remote_us"] == pytest.approx(230.0, rel=0.05)
    # "the second backward migration was almost the same as the first"
    assert second["total_us"] < 0.35 * first["total_us"]
    assert back["total_us"] < first["total_us"] / 10
