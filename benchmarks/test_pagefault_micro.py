"""§V-D — page-fault handling microbenchmark.

Two threads on two nodes ping-pong one global variable.  The shape to
hold: a bimodal fault-latency distribution with a fast mode near the
messaging layer's 4 KB retrieval cost and a contended-retry mode roughly
8x slower — and zero lost updates.
"""

from repro.bench.experiments import pagefault_micro
from repro.bench.reporting import render_pagefault


def test_pagefault_bimodal_distribution(once):
    report = once(pagefault_micro)
    print("\n" + render_pagefault(report))

    assert report.lost_updates == 0
    assert report.total_faults > 200
    assert report.fast_count > 0 and report.contended_count > 0
    # paper: fast 19.3us, contended 158.8us, ratio ~8.2x
    assert 12.0 < report.fast_mean_us < 27.0
    assert 110.0 < report.contended_mean_us < 220.0
    assert 5.0 < report.bimodal_ratio < 13.0
    # paper: the messaging layer "constantly took 13.6us to retrieve a
    # 4 KB page"
    assert 9.0 < report.page_retrieval_us < 18.0
