"""Figure 2 — scalability of the eight applications on DeX.

One benchmark per application, each sweeping {1, 8} nodes for the initial
and optimized variants at the 'small' workload scale, asserting the
paper's qualitative shape for that app:

* EP, BLK scale beyond single-machine performance in *initial* form;
* BP scales super-linearly from 1 to 2 nodes (checked separately);
* GRP, KMN degrade initially and scale once optimized;
* BT degrades initially and modestly exceeds 1.0x optimized;
* FT and BFS stay below single-machine performance either way, with the
  optimized variant ahead of the initial one at 8 nodes.

The full sweep (all apps x {1,2,4,8} nodes) is
``python -m repro.bench figure2``.
"""

import pytest

from repro.bench.runner import run_scaling


def _series(app, node_counts=(1, 8)):
    points = run_scaling(app, node_counts=node_counts)
    assert all(p.correct for p in points), f"{app}: wrong output"
    out = {}
    for p in points:
        if p.variant != "unmodified":
            out[(p.variant, p.num_nodes)] = p.normalized
    return out


def test_figure2_grp_string_match(once):
    s = once(_series, "GRP")
    assert s[("initial", 8)] < 1.0          # degrades unoptimized
    assert s[("optimized", 8)] > 1.3        # scales after §IV fixes
    assert s[("optimized", 8)] > 2 * s[("initial", 8)]


def test_figure2_kmn_kmeans(once):
    s = once(_series, "KMN")
    assert s[("initial", 8)] < 1.1
    assert s[("optimized", 8)] > 1.3
    assert s[("optimized", 8)] > s[("initial", 8)]


def test_figure2_bt(once):
    s = once(_series, "BT")
    assert s[("initial", 8)] < 1.0
    assert s[("optimized", 8)] > 1.0        # "enhanced vs single machine"
    assert s[("optimized", 8)] < 4.0        # but only modestly


def test_figure2_ep(once):
    s = once(_series, "EP")
    assert s[("initial", 8)] > 2.0          # scale-ready as-is
    assert s[("optimized", 8)] > 2.0


def test_figure2_ft(once):
    s = once(_series, "FT")
    # the all-to-all transposes keep FT below single-machine performance
    assert s[("initial", 8)] < 1.0
    assert s[("optimized", 8)] < 1.0
    assert s[("optimized", 8)] >= s[("initial", 8)]


def test_figure2_blk_blackscholes(once):
    s = once(_series, "BLK")
    assert s[("initial", 8)] > 2.0          # scale-ready as-is


def test_figure2_bfs(once):
    s = once(_series, "BFS")
    assert s[("initial", 8)] < 1.0
    assert s[("optimized", 8)] < 1.0
    assert s[("optimized", 8)] >= s[("initial", 8)]


def test_figure2_bp_superlinear(once):
    points = once(run_scaling, "BP", (1, 2, 8), ("initial",))
    assert all(p.correct for p in points)
    by_nodes = {p.num_nodes: p.normalized for p in points
                if p.variant == "initial"}
    # §V-B: "BP scaled super-linearly, as its performance increased by
    # 3.84x with the increase in nodes from 1 to 2"
    assert by_nodes[2] > 2.0
    assert by_nodes[8] > by_nodes[2]
