"""malloc / posix_memalign over the simulated address space.

Two arenas:

* the **globals** segment (static data) — a bump allocator inside the
  process's pre-mapped globals VMA; the analogue of compiler-laid-out
  ``.data``/``.bss``, including the paper's ``aligned`` attribute fixes;
* the **heap** — bump allocation from slab VMAs mapped on demand.

Allocation is deliberately sequential-first-fit with no per-thread arenas:
that is what glibc effectively gives the paper's unmodified applications,
and it is what co-locates different threads' objects on one page — the
false sharing §IV-B's optimizations remove via ``posix_memalign``.

Allocation itself costs no simulated time (it is noise next to the
workloads); its *layout* drives all protocol behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.process import GLOBALS_BASE, GLOBALS_SIZE, HEAP_BASE
from repro.memory.vma import Protection

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess

_HEAP_SLAB = 64 * 1024 * 1024


class AllocationError(Exception):
    """Arena exhausted."""


class MemoryAllocator:
    """Process-wide allocator (the libc of a DeX application)."""

    def __init__(self, proc: "DexProcess"):
        self.proc = proc
        self.page_size = proc.cluster.params.page_size
        self._globals_cursor = GLOBALS_BASE
        self._heap_cursor = HEAP_BASE
        self._heap_mapped_end = HEAP_BASE
        self.bytes_allocated = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _align_up(addr: int, align: int) -> int:
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        return (addr + align - 1) & ~(align - 1)

    def alloc_global(self, size: int, align: int = 8, tag: str = "") -> int:
        """Carve *size* bytes out of the static data segment.  ``align`` is
        the paper's ``__attribute__((aligned(N)))``: page-aligning a global
        gives it (and what follows) its own page."""
        if size <= 0:
            raise ValueError(f"allocation of non-positive size {size}")
        start = self._align_up(self._globals_cursor, align)
        if start + size > GLOBALS_BASE + GLOBALS_SIZE:
            raise AllocationError("globals segment exhausted")
        self._globals_cursor = start + size
        self.bytes_allocated += size
        return start

    def malloc(self, size: int, align: int = 8) -> int:
        """Heap allocation; sequential bump, so consecutive allocations
        share pages (the unoptimized layout)."""
        if size <= 0:
            raise ValueError(f"allocation of non-positive size {size}")
        start = self._align_up(self._heap_cursor, align)
        end = start + size
        self._ensure_heap_mapped(end)
        self._heap_cursor = end
        self.bytes_allocated += size
        return start

    def posix_memalign(self, size: int) -> int:
        """Page-aligned heap allocation — the §IV-B fix for heap-borne
        false sharing.  The next allocation starts on a fresh page too, so
        the object truly owns its pages."""
        start = self.malloc(size, align=self.page_size)
        # burn the tail of the last page so nothing shares it
        self._heap_cursor = self._align_up(self._heap_cursor, self.page_size)
        return start

    def pad_to_page(self) -> None:
        """Advance the global cursor to a page boundary (padding between
        two globals, the other §IV-B static-data fix)."""
        self._globals_cursor = self._align_up(self._globals_cursor, self.page_size)

    def _ensure_heap_mapped(self, end: int) -> None:
        if end <= self._heap_mapped_end:
            return
        origin_map = self.proc.node_state(self.proc.origin).vma_map
        while self._heap_mapped_end < end:
            origin_map.mmap(
                self._heap_mapped_end,
                _HEAP_SLAB,
                Protection.READ_WRITE,
                tag="heap",
            )
            self._heap_mapped_end += _HEAP_SLAB

    # ------------------------------------------------------------------

    def globals_used(self) -> int:
        return self._globals_cursor - GLOBALS_BASE

    def heap_used(self) -> int:
        return self._heap_cursor - HEAP_BASE
