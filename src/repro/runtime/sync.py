"""Thread synchronization primitives on the distributed futex.

"Applications can use thread synchronization primitives based on the futex
as is, regardless of their locations" (§III-A).  These are the standard
glibc constructions: the mutex word and barrier words live in the
distributed address space, atomics on them run through the consistency
protocol (exclusive ownership), and sleeping/waking goes through the
futex — which work delegation executes at the origin.

Both primitives accept ``page_aligned=True`` so applications can keep
their synchronization words off hot data pages (one of §IV's layout
optimizations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.thread import ThreadContext
    from repro.runtime.alloc import MemoryAllocator

#: mutex word states (glibc-style three-state futex mutex)
_FREE = 0
_LOCKED_CONTENDED = 2


class Mutex:
    """A futex-based mutex usable from any node."""

    def __init__(self, allocator: "MemoryAllocator", *, page_aligned: bool = False,
                 name: str = ""):
        align = allocator.page_size if page_aligned else 8
        self.addr = allocator.alloc_global(4, align=align, tag=name or "mutex")
        self.name = name

    def lock(self, ctx: "ThreadContext") -> Generator:
        while True:
            observed = yield from ctx.atomic_cas_u32(
                self.addr, _FREE, _LOCKED_CONTENDED, site=f"mutex:{self.name}"
            )
            if observed == _FREE:
                if ctx.proc.deadlocks is not None:
                    # tell the wait-for detector who holds this lock, so
                    # futex waiters on it get a blocked-on edge
                    ctx.proc.deadlocks.on_lock_acquired(self.addr, ctx.tid)
                return
            # contended: sleep until the holder unlocks (the futex re-checks
            # the word at the origin, so a lost wake cannot strand us)
            yield from ctx.futex_wait(self.addr, _LOCKED_CONTENDED)

    def unlock(self, ctx: "ThreadContext") -> Generator:
        if ctx.proc.deadlocks is not None:
            ctx.proc.deadlocks.on_lock_released(self.addr, ctx.tid)
        yield from ctx.write_u32(self.addr, _FREE, site=f"mutex:{self.name}")
        yield from ctx.futex_wake(self.addr, 1)

    def locked(self, ctx: "ThreadContext") -> Generator:
        value = yield from ctx.read_u32(self.addr)
        return value != _FREE


class Barrier:
    """A generation-counting barrier for a fixed party count.

    The arrival counter and the generation word share a cache
    line — deliberately, because that is how pthread_barrier_t lays out and
    is a realistic source of cross-node traffic at region boundaries."""

    def __init__(
        self,
        allocator: "MemoryAllocator",
        parties: int,
        *,
        page_aligned: bool = False,
        name: str = "",
    ):
        if parties < 1:
            raise ValueError(f"barrier needs at least one party, got {parties}")
        align = allocator.page_size if page_aligned else 8
        self.count_addr = allocator.alloc_global(4, align=align, tag=name or "barrier")
        self.gen_addr = allocator.alloc_global(4, align=4)
        self.parties = parties
        self.name = name

    def wait(self, ctx: "ThreadContext") -> Generator:
        """Block until all parties arrive; returns True for exactly one
        thread per generation (the 'serial thread', as pthread_barrier)."""
        site = f"barrier:{self.name}"
        generation = yield from ctx.read_u32(self.gen_addr, site=site)
        arrived = yield from ctx.atomic_add_u32(self.count_addr, 1, site=site)
        if arrived + 1 == self.parties:
            yield from ctx.write_u32(self.count_addr, 0, site=site)
            yield from ctx.write_u32(
                self.gen_addr, (generation + 1) & 0xFFFFFFFF, site=site
            )
            yield from ctx.futex_wake(self.gen_addr, self.parties)
            return True
        while True:
            yield from ctx.futex_wait(self.gen_addr, generation)
            current = yield from ctx.read_u32(self.gen_addr, site=site)
            if current != generation:
                return False
