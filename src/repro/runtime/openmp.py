"""OpenMP-style parallel regions for DeX (§V-A's conversion recipe).

The paper converts OpenMP applications by triggering thread migration at
the beginning and end of each parallel region: worker *i* of an ``8*n``
thread team runs on node ``i * n // num_threads``.  ``parallel_region``
packages that pattern: fork a team, migrate each worker to its node, run
the body, migrate everyone back, join.

This is also where the paper's stack-argument optimization (§IV-B) is
modelled: with ``shared_on_stack=True`` the region behaves like unmodified
OpenMP — shared variables live on the forking thread's stack page, which
every worker reads while the parent keeps using its stack, a classic false
sharing pattern.  With ``shared_on_stack=False`` ("we modified the compiler
to automatically offload shared variables to global memory for the duration
of parallel regions") the shared block is copied to a page-aligned global
staging area first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess
    from repro.core.thread import DexThread, ThreadContext


def node_for_worker(worker: int, num_workers: int, nodes: Sequence[int]) -> int:
    """Block assignment of team member -> node (the paper's placement:
    consecutive workers fill a node before spilling to the next)."""
    if not 0 <= worker < num_workers:
        raise ValueError(f"worker {worker} out of team of {num_workers}")
    return nodes[worker * len(nodes) // num_workers]


def parallel_region(
    parent_ctx: "ThreadContext",
    body: Callable[..., Generator],
    num_threads: int,
    nodes: Optional[Sequence[int]] = None,
    args: tuple = (),
    migrate: bool = True,
) -> Generator:
    """Run ``body(ctx, worker_id, *args)`` on a team of *num_threads*
    threads distributed over *nodes* (default: all nodes), then join.
    Returns the list of body results in worker order.

    Each worker performs the paper's two added lines itself: a forward
    migration as its first action and a backward migration as its last.
    """
    proc = parent_ctx.proc
    if nodes is None:
        nodes = list(range(proc.cluster.num_nodes))

    def worker(ctx: "ThreadContext", worker_id: int) -> Generator:
        if migrate:
            # the one-line conversion: popcorn_migrate(node) at region entry
            yield from ctx.migrate(node_for_worker(worker_id, num_threads, nodes))
        result = yield from body(ctx, worker_id, *args)
        if migrate:
            yield from ctx.migrate_back()
        return result

    team: List["DexThread"] = [
        proc.spawn_thread(worker, i, name=f"omp{i}") for i in range(num_threads)
    ]
    results = yield from proc.join_all(team)
    return results
