"""Typed array views over distributed memory.

A :class:`DistArray` wraps ``(address, dtype, length)`` and moves data
chunk-wise through the fault path, so every element an application computes
with has actually traveled the consistency protocol.  Bulk reads/writes
return numpy arrays for vectorized computation between protocol events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess
    from repro.core.thread import ThreadContext
    from repro.runtime.alloc import MemoryAllocator

_I64 = np.dtype(np.int64)
_F64 = np.dtype(np.float64)


class DistArray:
    """A fixed-length typed array living in the distributed address space."""

    def __init__(self, addr: int, dtype, length: int, name: str = ""):
        self.addr = addr
        self.dtype = np.dtype(dtype)
        self.length = length
        self.name = name

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.length * self.itemsize

    @property
    def end(self) -> int:
        return self.addr + self.nbytes

    def _addr_of(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"{self.name or 'DistArray'}[{index}] out of range")
        return self.addr + index * self.itemsize

    # -- bulk access -----------------------------------------------------

    def read(
        self,
        ctx: "ThreadContext",
        lo: int = 0,
        hi: Optional[int] = None,
        site: str = "",
    ) -> Generator:
        """Read elements ``[lo, hi)``; returns a fresh numpy array."""
        hi = self.length if hi is None else hi
        if not 0 <= lo <= hi <= self.length:
            raise IndexError(f"bad slice [{lo}:{hi}] of length {self.length}")
        raw = yield from ctx.read(
            self.addr + lo * self.itemsize, (hi - lo) * self.itemsize, site
        )
        return np.frombuffer(raw, dtype=self.dtype).copy()

    def write(
        self, ctx: "ThreadContext", lo: int, values: np.ndarray, site: str = ""
    ) -> Generator:
        """Write *values* starting at element *lo*."""
        values = np.asarray(values, dtype=self.dtype)
        if lo < 0 or lo + values.size > self.length:
            raise IndexError(
                f"write of {values.size} elements at {lo} overflows "
                f"length {self.length}"
            )
        yield from ctx.write(
            self.addr + lo * self.itemsize, values.tobytes(), site
        )

    # -- element access ----------------------------------------------------

    def get(self, ctx: "ThreadContext", index: int, site: str = "") -> Generator:
        raw = yield from ctx.read(self._addr_of(index), self.itemsize, site)
        return np.frombuffer(raw, dtype=self.dtype)[0]

    def set(
        self, ctx: "ThreadContext", index: int, value, site: str = ""
    ) -> Generator:
        yield from ctx.write(
            self._addr_of(index),
            np.asarray([value], dtype=self.dtype).tobytes(),
            site,
        )

    def add(
        self, ctx: "ThreadContext", index: int, delta, site: str = ""
    ) -> Generator:
        """Atomic in-place add to one element; returns the old value.

        The two dominant accumulator types route to the specialised
        ThreadContext atomics (same fault/sanitizer semantics, identical
        IEEE/two's-complement arithmetic, no numpy round trip); anything
        else takes the generic read-modify-write closure path."""
        dtype = self.dtype
        if dtype == _I64:
            return ctx.atomic_add_i64(self._addr_of(index), int(delta), site)
        if dtype == _F64:
            return ctx.atomic_add_f64(self._addr_of(index), float(delta), site)
        return self._add_generic(ctx, index, delta, site)

    def _add_generic(
        self, ctx: "ThreadContext", index: int, delta, site: str = ""
    ) -> Generator:
        dtype = self.dtype

        def bump(raw: bytes) -> bytes:
            value = np.frombuffer(raw, dtype=dtype)[0]
            return np.asarray([value + delta], dtype=dtype).tobytes()

        old = yield from ctx.atomic_update(
            self._addr_of(index), self.itemsize, bump, site
        )
        return np.frombuffer(old, dtype=dtype)[0]

    # ------------------------------------------------------------------

    def page_span(self, page_size: int = 4096) -> int:
        """How many pages this array touches."""
        first = self.addr // page_size
        last = (self.end - 1) // page_size
        return last - first + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DistArray {self.name or ''} {self.dtype}[{self.length}] "
            f"@{self.addr:#x}>"
        )


def alloc_array(
    allocator: "MemoryAllocator",
    dtype,
    length: int,
    *,
    name: str = "",
    page_aligned: bool = False,
    segment: str = "heap",
) -> DistArray:
    """Allocate a :class:`DistArray` from *allocator*.

    ``page_aligned=True`` is the §IV-B layout fix (``posix_memalign`` /
    the ``aligned`` attribute); ``segment`` picks the heap or the globals
    segment."""
    dtype = np.dtype(dtype)
    nbytes = dtype.itemsize * length
    if segment == "heap":
        if page_aligned:
            addr = allocator.posix_memalign(nbytes)
        else:
            addr = allocator.malloc(nbytes)
    elif segment == "globals":
        align = allocator.page_size if page_aligned else 8
        addr = allocator.alloc_global(nbytes, align=align, tag=name)
        if page_aligned:
            allocator.pad_to_page()
    else:
        raise ValueError(f"unknown segment {segment!r}")
    return DistArray(addr, dtype, length, name=name)
