"""The application-facing programming model.

This package is the analogue of libc + libpthread + the OpenMP runtime for
DeX applications:

* :mod:`repro.runtime.alloc` — ``malloc`` / ``posix_memalign`` over the
  simulated address space.  Allocation *layout* is what §IV is about:
  co-locating two threads' data on one page creates false sharing, and the
  optimized application variants differ from the initial ones exactly by
  their allocation and access patterns.
* :mod:`repro.runtime.array` — numpy-typed views over distributed memory,
  read and written chunk-wise through the fault path.
* :mod:`repro.runtime.sync` — Mutex and Barrier built on the distributed
  futex, usable unmodified from any node (§III-A's headline feature).
* :mod:`repro.runtime.openmp` — the ``parallel_region`` helper that mirrors
  the paper's conversion of OpenMP parallel regions (migrate out at region
  entry, back at region exit).
"""

from repro.runtime.alloc import MemoryAllocator
from repro.runtime.array import DistArray
from repro.runtime.openmp import node_for_worker, parallel_region
from repro.runtime.sync import Barrier, Mutex

__all__ = [
    "Barrier",
    "DistArray",
    "MemoryAllocator",
    "Mutex",
    "node_for_worker",
    "parallel_region",
]
