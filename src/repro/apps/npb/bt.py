"""BT — NPB block-tridiagonal solver, modelled as a 15-region-per-iteration
Jacobi sweep over a block-partitioned grid with halo exchange.

The paper converted BT's 15 OpenMP parallel regions (Table I).  Its two
DeX pathologies, both fixed in the optimized variant (§V-C):

* "NPB applications continually read global parameters, especially
  variables containing for-loop ranges of parallel regions [...] read-only
  after the initial setup but co-located with other global variables that
  are frequently updated" — here the loop-range block shares a page with
  the residual accumulator every thread updates and with the master's
  per-region bookkeeping; the optimized variant moves the read-only
  parameters to their own page.
* "in BT, child threads in a number of parallel regions read their
  parent's stack variables" — here every worker reads two values from the
  master's stack page each region while the master keeps writing that page
  between regions; the optimized variant passes them as arguments.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.apps.common import (
    AdaptationInfo,
    AppResult,
    check_variant,
    fresh_process,
    plan_nodes,
    workload_seed,
)
from repro.apps.npb.common import region_loop
from repro.params import SimParams
from repro.runtime.array import alloc_array

#: one stencil update (BT does heavy 5x5 block work per cell)
CPU_US_PER_CELL = 0.03
REGIONS_PER_ITER = 15

ADAPTATION = AdaptationInfo(
    multithread_impl="openmp",
    initial_loc=38,
    optimized_loc=61,
    regions=REGIONS_PER_ITER,
    notes="15 OpenMP regions converted at ~2.5 LoC each; optimization "
    "separates read-only loop parameters from mutated globals and passes "
    "parent-stack variables as arguments",
)


def reference(grid: np.ndarray, n_passes: int) -> np.ndarray:
    a = grid.copy()
    for _ in range(n_passes):
        b = a.copy()
        b[1:-1] = (a[:-2] + a[1:-1] + a[2:]) / 3.0
        a = b
    return a


def run(
    num_nodes: int = 1,
    variant: str = "initial",
    threads_per_node: int = 8,
    grid_cells: int = 262_144,
    iters: int = 3,
    params: Optional[SimParams] = None,
    tracer=None,
    seed: Optional[int] = None,
) -> AppResult:
    """Run BT; output is the final grid (checked against the reference
    Jacobi sweep) and the accumulated residual."""
    check_variant(variant)
    seed = workload_seed(params, 23) if seed is None else seed
    cluster, proc, alloc = fresh_process(num_nodes, params)
    if tracer is not None:
        proc.attach_tracer(tracer)
    nodes = plan_nodes(cluster, num_nodes)
    num_threads = threads_per_node * num_nodes
    migrate = variant != "unmodified"
    optimized = variant == "optimized"
    n_regions = REGIONS_PER_ITER * iters

    rng = np.random.default_rng(seed)
    grid0 = rng.uniform(0.0, 1.0, grid_cells)
    expected = reference(grid0, n_regions)

    # double-buffered grids; optimized page-aligns each thread's block so
    # partition edges do not share pages
    grids = [
        alloc_array(alloc, np.float64, grid_cells, name=f"grid{i}",
                    page_aligned=True)
        for i in range(2)
    ]
    if optimized:
        part = ((grid_cells // num_threads + 511) // 512) * 512
    else:
        part = (grid_cells + num_threads - 1) // num_threads

    # the hot globals page (initial): loop params + residual + the master's
    # per-region bookkeeping all together; optimized splits them up
    loop_params = alloc_array(alloc, np.int64, 4, name="loop_params",
                              segment="globals", page_aligned=optimized)
    residual = alloc_array(alloc, np.float64, 1, name="residual",
                           segment="globals", page_aligned=False)
    bookkeeping = alloc_array(alloc, np.int64, 4, name="region_counter",
                              segment="globals", page_aligned=False)
    # the master's stack frame holding the per-region shared variables the
    # children read in the initial port (§IV-B's stack false sharing)
    master_stack = alloc.alloc_global(64, tag="stack:master")
    # optimized: per-thread residual staging (an OpenMP reduction), folded
    # into the shared accumulator once at the very end, at the origin
    staged_res = [0.0] * num_threads

    def region_fn(ctx, wid: int, region: int) -> Generator:
        lo = min(wid * part, grid_cells)
        hi = min(lo + part, grid_cells)
        if not optimized:
            # read the region arguments from the parent's stack page and
            # the loop ranges from the shared parameter page (which the
            # residual updates below keep invalidating)
            yield from ctx.read(master_stack, 16, site="bt:parent_stack")
            yield from loop_params.read(ctx, site="bt:params")
        if lo >= hi:
            return
        src = grids[region % 2]
        dst = grids[1 - region % 2]
        # read own block plus one halo cell on each side
        rlo = max(lo - 1, 0)
        rhi = min(hi + 1, grid_cells)
        block = yield from src.read(ctx, rlo, rhi, site="bt:halo")
        if not optimized:
            # the inner loops keep consulting the loop-range variables
            yield from loop_params.read(ctx, site="bt:params")
        yield from ctx.compute(
            cpu_us=(hi - lo) * CPU_US_PER_CELL, mem_bytes=(hi - lo) * 16
        )
        new = block.copy()
        off = lo - rlo
        g0 = max(lo, 1)
        g1 = min(hi, grid_cells - 1)
        if g1 > g0:
            left = block[g0 - rlo - 1 : g1 - rlo - 1]
            mid = block[g0 - rlo : g1 - rlo]
            right = block[g0 - rlo + 1 : g1 - rlo + 1]
            new[g0 - rlo : g1 - rlo] = (left + mid + right) / 3.0
        yield from dst.write(ctx, lo, new[off : off + hi - lo],
                             site="bt:write")
        res = float(np.abs(new[off : off + hi - lo]
                           - block[off : off + hi - lo]).sum())
        if optimized:
            # staged reduction: fold locally, publish once at the end
            staged_res[wid] += res
            if region == n_regions - 1:
                yield from residual.add(ctx, 0, staged_res[wid],
                                        site="bt:residual")
        else:
            # fold the residual into the shared accumulator mid-region: on
            # the hot page this invalidates everyone's parameter replicas
            yield from residual.add(ctx, 0, res, site="bt:residual")

    def serial_fn(ctx, region: int) -> Generator:
        # master's serial section: bookkeeping writes that dirty the hot
        # page and the master's own stack frame, which children read
        yield from bookkeeping.set(ctx, 0, region, site="bt:master")
        if not optimized:
            yield from ctx.write(master_stack, region.to_bytes(16, "little"),
                                 site="bt:master_stack")

    def setup(ctx) -> Generator:
        yield from grids[0].write(ctx, 0, grid0)
        yield from grids[1].write(ctx, 0, grid0)
        yield from loop_params.write(
            ctx, 0, np.array([0, grid_cells, part, iters], dtype=np.int64)
        )

    cluster.simulate(setup, proc)
    elapsed = region_loop(
        cluster, proc, alloc, num_threads, nodes, migrate,
        n_regions, region_fn, serial_fn,
    )

    def collect(ctx) -> Generator:
        final = yield from grids[n_regions % 2].read(ctx)
        res = yield from residual.get(ctx, 0)
        return final, float(res)

    (final, res) = cluster.simulate(collect, proc)
    return AppResult(
        app="BT",
        variant=variant,
        num_nodes=num_nodes,
        num_threads=num_threads,
        elapsed_us=elapsed,
        output=res,
        stats=proc.stats,
        correct=bool(np.allclose(final, expected)),
    )
