"""NPB-like scientific kernels (§V: BT, EP, FT from the SNU NPB suite).

These are simplified but *verifiable* stand-ins for the OpenMP NPB
kernels: EP keeps its embarrassingly-parallel Gaussian-pair structure; BT
is modelled as a multi-region Jacobi sweep over a block-partitioned grid
with halo exchange (15 parallel regions per iteration, like BT's 15
converted regions); FT alternates row transforms with full transposes
(all-to-all traffic), 7 regions per iteration.  Each checks its final
state against a single-threaded numpy reference.

The OpenMP conversion is modelled faithfully: every worker migrates out at
each region entry and back at region exit, so BT runs 15 x iters x threads
migrations per execution — which is why the cheap second migration
(Table II) matters.
"""

from repro.apps.npb.common import region_loop

__all__ = ["region_loop"]
