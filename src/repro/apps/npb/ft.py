"""FT — NPB 3-D FFT kernel, modelled as row transforms + full transposes.

FT's structure is a sequence of per-dimension transforms separated by data
transposes; the transposes are all-to-all: every thread's output rows draw
from *every* input partition, so each transpose replicates essentially the
whole array across the nodes.  That traffic is inherent to the algorithm —
which is why FT, unlike BT, stays below single-machine performance even
after the §IV layout fixes remove the parameter-page false sharing.

7 OpenMP regions per iteration were converted (Table I); here the region
schedule per iteration is [row, row, T, row, row, T, row].
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.apps.common import (
    AdaptationInfo,
    AppResult,
    check_variant,
    fresh_process,
    plan_nodes,
    workload_seed,
)
from repro.apps.npb.common import region_loop
from repro.params import SimParams
from repro.runtime.array import alloc_array

#: one butterfly-ish update per element
CPU_US_PER_CELL = 0.06
REGIONS_PER_ITER = 7
#: region kinds within one iteration
SCHEDULE = ("row", "row", "transpose", "row", "row", "transpose", "row")

ADAPTATION = AdaptationInfo(
    multithread_impl="openmp",
    initial_loc=20,
    optimized_loc=44,
    regions=REGIONS_PER_ITER,
    notes="7 OpenMP regions converted; optimization separates read-only "
    "parameters and stages the checksum reduction, but the all-to-all "
    "transpose traffic is inherent",
)


def _row_transform(m: np.ndarray) -> np.ndarray:
    return 0.9 * m + 0.1 * np.roll(m, -1, axis=1)


def reference(matrix: np.ndarray, n_iters: int) -> np.ndarray:
    m = matrix.copy()
    for _ in range(n_iters):
        for kind in SCHEDULE:
            if kind == "row":
                m = _row_transform(m)
            else:
                m = m.T.copy()
    return m


def run(
    num_nodes: int = 1,
    variant: str = "initial",
    threads_per_node: int = 8,
    rows: int = 512,
    cols: int = 512,
    iters: int = 2,
    params: Optional[SimParams] = None,
    tracer=None,
    seed: Optional[int] = None,
) -> AppResult:
    """Run FT; output is the final matrix checksum, with the full matrix
    checked against the reference."""
    check_variant(variant)
    seed = workload_seed(params, 29) if seed is None else seed
    cluster, proc, alloc = fresh_process(num_nodes, params)
    if tracer is not None:
        proc.attach_tracer(tracer)
    nodes = plan_nodes(cluster, num_nodes)
    num_threads = threads_per_node * num_nodes
    migrate = variant != "unmodified"
    optimized = variant == "optimized"
    n_regions = REGIONS_PER_ITER * iters
    schedule = [SCHEDULE[r % REGIONS_PER_ITER] for r in range(n_regions)]

    rng = np.random.default_rng(seed)
    matrix0 = rng.uniform(0.0, 1.0, (rows, cols))
    expected = reference(matrix0, iters)
    # square matrices keep the row partitioning valid across transposes
    assert rows == cols, "FT model requires a square matrix"

    mats = [
        alloc_array(alloc, np.float64, rows * cols, name=f"mat{i}",
                    page_aligned=True)
        for i in range(2)
    ]
    row_part = (rows + num_threads - 1) // num_threads

    loop_params = alloc_array(alloc, np.int64, 4, name="loop_params",
                              segment="globals", page_aligned=optimized)
    checksum = alloc_array(alloc, np.float64, 1, name="checksum",
                           segment="globals", page_aligned=False)
    staged_sum = [0.0] * num_threads

    def region_fn(ctx, wid: int, region: int) -> Generator:
        rlo = min(wid * row_part, rows)
        rhi = min(rlo + row_part, rows)
        if not optimized:
            yield from loop_params.read(ctx, site="ft:params")
        if rlo >= rhi:
            return
        src = mats[region % 2]
        dst = mats[1 - region % 2]
        kind = schedule[region]
        if kind == "row":
            block = yield from src.read(ctx, rlo * cols, rhi * cols,
                                        site="ft:rows")
            block = block.reshape(rhi - rlo, cols)
            yield from ctx.compute(
                cpu_us=(rhi - rlo) * cols * CPU_US_PER_CELL,
                mem_bytes=(rhi - rlo) * cols * 16,
            )
            out = _row_transform(block)
        else:
            # transpose: our output rows are the input's columns rlo:rhi —
            # page-granular reads pull in (essentially) every input page
            gathered = np.empty((rhi - rlo, cols))
            chunk_rows = max(row_part, 64)
            for base in range(0, rows, chunk_rows):
                top = min(base + chunk_rows, rows)
                piece = yield from src.read(ctx, base * cols, top * cols,
                                            site="ft:transpose")
                piece = piece.reshape(top - base, cols)
                gathered[:, base:top] = piece[:, rlo:rhi].T
            yield from ctx.compute(
                cpu_us=(rhi - rlo) * cols * 0.005,
                mem_bytes=(rhi - rlo) * cols * 16,
            )
            out = gathered
        yield from dst.write(ctx, rlo * cols, out.ravel(), site="ft:write")
        part_sum = float(out.sum())
        if optimized:
            staged_sum[wid] += part_sum
            if region == n_regions - 1:
                yield from checksum.add(ctx, 0, staged_sum[wid],
                                        site="ft:checksum")
        else:
            yield from checksum.add(ctx, 0, part_sum, site="ft:checksum")

    def serial_fn(ctx, region: int) -> Generator:
        # master bookkeeping write on the (initial) hot parameter page
        if not optimized:
            yield from loop_params.write(
                ctx, 0, np.array([region, rows, cols, iters], dtype=np.int64)
            )
        else:
            yield from ctx.sleep(1.0)

    def setup(ctx) -> Generator:
        yield from mats[0].write(ctx, 0, matrix0.ravel())
        yield from mats[1].write(ctx, 0, matrix0.ravel())
        yield from loop_params.write(
            ctx, 0, np.array([0, rows, cols, iters], dtype=np.int64)
        )

    cluster.simulate(setup, proc)
    elapsed = region_loop(
        cluster, proc, alloc, num_threads, nodes, migrate,
        n_regions, region_fn, serial_fn,
    )

    def collect(ctx) -> Generator:
        final = yield from mats[n_regions % 2].read(ctx)
        total = yield from checksum.get(ctx, 0)
        return final.reshape(rows, cols), float(total)

    final, total = cluster.simulate(collect, proc)
    return AppResult(
        app="FT",
        variant=variant,
        num_nodes=num_nodes,
        num_threads=num_threads,
        elapsed_us=elapsed,
        output=total,
        stats=proc.stats,
        correct=bool(np.allclose(final, expected)),
    )
