"""EP — the NPB embarrassingly-parallel kernel.

Generates pairs of uniform deviates, accepts those inside the unit circle,
transforms them into Gaussian pairs (Marsaglia polar method), and
histograms the accepted pairs by ``max(|x|, |y|)`` annulus — the
verification NPB itself uses.  One parallel region; the only shared state
is the final 10-bin histogram and the sum accumulators.

EP is the paper's best case: it scaled linearly in its *initial* port
(2 added lines).  The optimization (page-aligning the result bins) barely
matters because the shared page is touched once per thread.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

import numpy as np

from repro.apps.common import (
    AdaptationInfo,
    AppResult,
    check_variant,
    fresh_process,
    plan_nodes,
    run_workers,
    workload_seed,
)
from repro.params import SimParams
from repro.runtime.array import alloc_array

#: generating + transforming one pair
CPU_US_PER_PAIR = 0.2
#: work is split into fixed blocks so results are thread-count independent
N_BLOCKS = 256
N_BINS = 10

ADAPTATION = AdaptationInfo(
    multithread_impl="openmp",
    initial_loc=2,
    optimized_loc=4,
    regions=1,
    notes="one OpenMP region: one line each for forward/backward "
    "migration; optimization page-aligns the result histogram",
)


def _block_histogram(block: int, pairs: int, seed: int) -> Tuple[np.ndarray, float, float]:
    """Deterministic per-block computation (identical for reference and
    distributed runs regardless of thread count)."""
    rng = np.random.default_rng(seed * 100_003 + block)
    x = rng.uniform(-1.0, 1.0, pairs)
    y = rng.uniform(-1.0, 1.0, pairs)
    t = x * x + y * y
    ok = (t <= 1.0) & (t > 0.0)
    factor = np.sqrt(-2.0 * np.log(t[ok]) / t[ok])
    gx, gy = x[ok] * factor, y[ok] * factor
    annulus = np.minimum(np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64),
                         N_BINS - 1)
    hist = np.bincount(annulus, minlength=N_BINS)
    return hist, float(gx.sum()), float(gy.sum())


def reference(n_pairs: int, seed: int) -> np.ndarray:
    pairs_per_block = n_pairs // N_BLOCKS
    total = np.zeros(N_BINS, dtype=np.int64)
    for block in range(N_BLOCKS):
        hist, _, _ = _block_histogram(block, pairs_per_block, seed)
        total += hist
    return total


def run(
    num_nodes: int = 1,
    variant: str = "initial",
    threads_per_node: int = 8,
    n_pairs: int = 1_200_000,
    params: Optional[SimParams] = None,
    tracer=None,
    seed: Optional[int] = None,
) -> AppResult:
    """Run EP; output is the 10-bin annulus histogram."""
    check_variant(variant)
    seed = workload_seed(params, 19) if seed is None else seed
    cluster, proc, alloc = fresh_process(num_nodes, params)
    if tracer is not None:
        proc.attach_tracer(tracer)
    nodes = plan_nodes(cluster, num_nodes)
    num_threads = threads_per_node * num_nodes
    migrate = variant != "unmodified"
    optimized = variant == "optimized"

    expected = reference(n_pairs, seed)
    pairs_per_block = n_pairs // N_BLOCKS

    bins = alloc_array(alloc, np.int64, N_BINS, name="bins",
                       segment="globals", page_aligned=optimized)
    sums = alloc_array(alloc, np.float64, 2, name="sums",
                       segment="globals", page_aligned=optimized)

    def body(ctx, wid: int) -> Generator:
        local = np.zeros(N_BINS, dtype=np.int64)
        sx = sy = 0.0
        for block in range(wid, N_BLOCKS, num_threads):
            yield from ctx.compute(
                cpu_us=pairs_per_block * CPU_US_PER_PAIR,
                mem_bytes=pairs_per_block * 16,
            )
            hist, bx, by = _block_histogram(block, pairs_per_block, seed)
            local += hist
            sx += bx
            sy += by
        # fold the thread's results into the shared verification state
        for b in range(N_BINS):
            if local[b]:
                yield from bins.add(ctx, b, int(local[b]), site="ep:bins")
        yield from sums.add(ctx, 0, sx, site="ep:sums")
        yield from sums.add(ctx, 1, sy, site="ep:sums")

    elapsed = run_workers(cluster, proc, body, num_threads, nodes, migrate)

    def collect(ctx) -> Generator:
        hist = yield from bins.read(ctx)
        return hist

    output = cluster.simulate(collect, proc)
    return AppResult(
        app="EP",
        variant=variant,
        num_nodes=num_nodes,
        num_threads=num_threads,
        elapsed_us=elapsed,
        output=output,
        stats=proc.stats,
        correct=bool((output == expected).all()),
    )
