"""The OpenMP-conversion pattern shared by BT, EP, and FT (§V-A).

An NPB kernel is a sequence of parallel regions separated by serial master
sections.  On DeX, "we triggered thread migration at the beginning and end
of the OpenMP parallel regions": every worker migrates to its node at
region entry and returns to the origin at region exit.  Crucially the
region-end synchronization then happens **at the origin**, where the
barrier words and futexes are local — which is why repeated cheap
migrations (Table II's 236 us second migration) beat keeping threads
remote across the serial sections.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

from repro.apps.common import run_workers
from repro.core import DexCluster, DexProcess
from repro.runtime import Barrier, MemoryAllocator
from repro.runtime.openmp import node_for_worker


def region_loop(
    cluster: DexCluster,
    proc: DexProcess,
    alloc: MemoryAllocator,
    num_threads: int,
    nodes: Sequence[int],
    migrate: bool,
    n_regions: int,
    region_fn: Callable[..., Generator],
    serial_fn: Optional[Callable[..., Generator]] = None,
) -> float:
    """Run ``region_fn(ctx, wid, region)`` for each region in sequence,
    with per-region out-and-back migration and origin-local barriers;
    ``serial_fn(ctx, region)`` runs on the master between regions.
    Returns the elapsed time of the whole region sequence."""
    barrier = Barrier(alloc, num_threads, name="omp_join", page_aligned=True)

    def body(ctx, wid: int) -> Generator:
        for region in range(n_regions):
            if migrate:
                yield from ctx.migrate(
                    node_for_worker(wid, num_threads, list(nodes))
                )
            yield from region_fn(ctx, wid, region)
            if migrate:
                yield from ctx.migrate_back()
            # implicit OpenMP region-end barrier — at the origin, so cheap
            yield from barrier.wait(ctx)
            if wid == 0 and serial_fn is not None:
                yield from serial_fn(ctx, region)
            yield from barrier.wait(ctx)

    # migration is handled per-region above, not by the outer harness
    return run_workers(
        cluster, proc, body, num_threads, nodes, migrate=False
    )
