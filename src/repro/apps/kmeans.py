"""KMN — k-means clustering (§V, "simple" category).

Iteratively assigns points to the nearest of *k* centers and recomputes the
centers, until assignments settle or the iteration budget runs out.

* **initial** port: migration calls only.  The original layout bump-
  allocates the centroids, the reduction accumulators, and the
  converged-flag next to each other (one hot page), and every chunk of
  points updates the shared accumulators atomically and pokes the global
  changed-flag — "KMN updates a global flag and the clusters for points"
  (§V-C).  All of it ping-pongs between nodes.
* **optimized** port: centroids / accumulators / flag each get their own
  page, and each thread stages its partial sums locally, merging once per
  iteration under a mutex (§V-C's staging fix).
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

import numpy as np

from repro.apps import workloads
from repro.apps.common import (
    AdaptationInfo,
    AppResult,
    check_variant,
    fresh_process,
    plan_nodes,
    run_workers,
    workload_seed,
)
from repro.params import SimParams
from repro.runtime import Barrier
from repro.runtime.array import alloc_array

#: distance evaluation cost per point per iteration; the paper clusters
#: against 100 centers, so each point is ~100 3-D distance evaluations
CPU_US_PER_POINT = 0.35
#: folding a point into the cluster accumulators (the per-point update
#: loop of the original program, which runs with the accumulator page hot)
UPDATE_US_PER_POINT = 0.4
CHUNK_POINTS = 4096
DIM = 3

ADAPTATION = AdaptationInfo(
    multithread_impl="pthread",
    initial_loc=2,
    optimized_loc=26,
    notes="1 line each for forward/backward migration; optimization "
    "page-aligns centroids/accumulators/flag and stages per-thread "
    "partial sums, merging once per iteration",
)


def reference(
    points: np.ndarray, k: int, max_iters: int
) -> Tuple[np.ndarray, int]:
    """Single-threaded k-means with the same deterministic initialization
    (the first k points); returns (centroids, iterations_run)."""
    centers = points[:k].copy()
    assign = np.full(len(points), -1)
    for iteration in range(max_iters):
        d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_assign = d2.argmin(axis=1)
        changed = bool((new_assign != assign).any())
        assign = new_assign
        for c in range(k):
            members = points[assign == c]
            if len(members):
                centers[c] = members.mean(axis=0)
        if not changed:
            return centers, iteration + 1
    return centers, max_iters


def run(
    num_nodes: int = 1,
    variant: str = "initial",
    threads_per_node: int = 8,
    n_points: int = 500_000,
    k: int = 16,
    max_iters: int = 3,
    params: Optional[SimParams] = None,
    tracer=None,
    seed: Optional[int] = None,
) -> AppResult:
    """Run KMN; output is the final centroids, checked against the
    reference run with ``np.allclose`` (parallel reduction reorders float
    additions)."""
    check_variant(variant)
    seed = workload_seed(params, 11) if seed is None else seed
    cluster, proc, alloc = fresh_process(num_nodes, params)
    if tracer is not None:
        proc.attach_tracer(tracer)
    nodes = plan_nodes(cluster, num_nodes)
    num_threads = threads_per_node * num_nodes
    migrate = variant != "unmodified"
    optimized = variant == "optimized"

    points = workloads.clustered_points(n_points, k, DIM, seed=seed)
    expected, _ = reference(points, k, max_iters)

    # ---- layout ----------------------------------------------------------
    points_arr = alloc_array(alloc, np.float64, n_points * DIM, name="points",
                             page_aligned=True)
    aligned = optimized
    centroids = alloc_array(alloc, np.float64, k * DIM, name="centroids",
                            segment="globals", page_aligned=aligned)
    sums = alloc_array(alloc, np.float64, k * DIM, name="sums",
                       segment="globals", page_aligned=aligned)
    counts = alloc_array(alloc, np.int64, k, name="counts",
                         segment="globals", page_aligned=aligned)
    changed_flag = alloc_array(alloc, np.int64, 1, name="changed",
                               segment="globals", page_aligned=aligned)
    go = alloc_array(alloc, np.int64, max_iters, name="go",
                     segment="globals", page_aligned=aligned)
    barrier = Barrier(alloc, num_threads, name="kmn", page_aligned=aligned)

    part = (n_points + num_threads - 1) // num_threads

    # the original program works point-by-point: it re-reads the centroid
    # block continually while folding into the accumulators that share its
    # page, so on DeX the page is re-faulted after every invalidation.  The
    # optimized version snapshots the (page-aligned) centroids once per
    # iteration and processes large chunks.
    chunk_points = CHUNK_POINTS if optimized else CHUNK_POINTS // 16

    def body(ctx, wid: int) -> Generator:
        lo = wid * part
        hi = min(lo + part, n_points)
        prev_assign = np.full(hi - lo, -1, dtype=np.int64)
        for it in range(max_iters):
            centers = (yield from centroids.read(ctx, site="kmn:centers"))
            centers = centers.reshape(k, DIM)
            local_sums = np.zeros((k, DIM))
            local_counts = np.zeros(k, dtype=np.int64)
            local_changed = False
            pos = lo
            while pos < hi:
                if not optimized and pos != lo:
                    # re-read the centroid block: writes to the co-located
                    # accumulators keep invalidating our replica
                    centers = (
                        yield from centroids.read(ctx, site="kmn:centers")
                    ).reshape(k, DIM)
                take = min(chunk_points, hi - pos)
                raw = yield from points_arr.read(
                    ctx, pos * DIM, (pos + take) * DIM, site="kmn:points"
                )
                pts = raw.reshape(take, DIM)
                yield from ctx.compute(
                    cpu_us=take * CPU_US_PER_POINT,
                    mem_bytes=take * DIM * 8,
                )
                d2 = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
                assign = d2.argmin(axis=1)
                chunk_changed = bool(
                    (assign != prev_assign[pos - lo : pos - lo + take]).any()
                )
                prev_assign[pos - lo : pos - lo + take] = assign
                if optimized:
                    # the same per-point update work, but staged into the
                    # thread's private buffers (no shared page involved)
                    yield from ctx.compute(cpu_us=take * UPDATE_US_PER_POINT)
                    for c in range(k):
                        mask = assign == c
                        n_c = int(mask.sum())
                        if n_c:
                            local_sums[c] += pts[mask].sum(axis=0)
                            local_counts[c] += n_c
                    local_changed = local_changed or chunk_changed
                else:
                    # the original program folds point after point straight
                    # into the shared accumulators: the writes are spread
                    # through the whole per-point update window, so the
                    # accumulator page stays hot at this node and every
                    # theft by another node forces a refault mid-burst
                    slice_us = take * UPDATE_US_PER_POINT / k
                    for c in range(k):
                        mask = assign == c
                        n_c = int(mask.sum())
                        if n_c:
                            s = pts[mask].sum(axis=0)
                            for d in range(DIM):
                                yield from sums.add(ctx, c * DIM + d, s[d],
                                                    site="kmn:accumulate")
                            yield from counts.add(ctx, c, n_c,
                                                  site="kmn:accumulate")
                        yield from ctx.compute(cpu_us=slice_us)
                    if chunk_changed:
                        yield from changed_flag.set(ctx, 0, 1,
                                                    site="kmn:flag")
                pos += take
            if optimized:
                # merge once per iteration: back-to-back atomic folds, so
                # the accumulator pages change hands once per thread
                flat = local_sums.ravel()
                for idx in range(k * DIM):
                    if flat[idx]:
                        yield from sums.add(ctx, idx, flat[idx],
                                            site="kmn:merge")
                for c in range(k):
                    if local_counts[c]:
                        yield from counts.add(ctx, c, int(local_counts[c]),
                                              site="kmn:merge")
                if local_changed:
                    yield from changed_flag.set(ctx, 0, 1, site="kmn:flag")
            yield from barrier.wait(ctx)
            if wid == 0:
                all_sums = (yield from sums.read(ctx)).reshape(k, DIM)
                all_counts = yield from counts.read(ctx)
                new_centers = centers.copy()
                nz = all_counts > 0
                new_centers[nz] = all_sums[nz] / all_counts[nz, None]
                yield from centroids.write(ctx, 0, new_centers.ravel())
                yield from sums.write(ctx, 0, np.zeros(k * DIM))
                yield from counts.write(ctx, 0, np.zeros(k, dtype=np.int64))
                flag = yield from changed_flag.get(ctx, 0)
                yield from changed_flag.set(ctx, 0, 0)
                keep_going = 1 if (flag and it + 1 < max_iters) else 0
                yield from go.set(ctx, it, keep_going)
            yield from barrier.wait(ctx)
            cont = yield from go.get(ctx, it)
            if not cont:
                break

    def setup(ctx) -> Generator:
        yield from points_arr.write(ctx, 0, points.ravel())
        yield from centroids.write(ctx, 0, points[:k].ravel())

    cluster.simulate(setup, proc)
    elapsed = run_workers(cluster, proc, body, num_threads, nodes, migrate)

    def collect(ctx) -> Generator:
        final = yield from centroids.read(ctx)
        return final.reshape(k, DIM)

    output = cluster.simulate(collect, proc)
    return AppResult(
        app="KMN",
        variant=variant,
        num_nodes=num_nodes,
        num_threads=num_threads,
        elapsed_us=elapsed,
        output=output,
        stats=proc.stats,
        correct=bool(np.allclose(output, expected, rtol=1e-8, atol=1e-8)),
    )
