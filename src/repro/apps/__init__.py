"""The eight evaluation applications (§V), each in three variants:

* ``unmodified`` — the original single-machine program: worker threads stay
  at the origin (the 1-node baseline every Figure 2 point is normalized to);
* ``initial`` — the paper's first port: thread-migration calls inserted at
  parallel-region boundaries, nothing else changed (Table I, "Initial");
* ``optimized`` — after the §IV profile-guided fixes: page-aligned
  allocation of per-node data, local staging of global counters/flags,
  separated read-only parameter pages, stack arguments hoisted (Table I,
  "Optimized").

The variants differ by *real* allocation and access-pattern changes — false
sharing emerges from layout, it is not a performance knob.  Every app
checks its output against a plain single-threaded reference, so the DSM is
correctness-bearing.

Applications:

=======  =====================================  ==========================
GRP      :mod:`repro.apps.string_match`         shared-memory data processing
KMN      :mod:`repro.apps.kmeans`               shared-memory data processing
BT       :mod:`repro.apps.npb.bt`               NPB-like scientific kernel
EP       :mod:`repro.apps.npb.ep`               NPB-like scientific kernel
FT       :mod:`repro.apps.npb.ft`               NPB-like scientific kernel
BLK      :mod:`repro.apps.blackscholes`         PARSEC financial kernel
BFS      :mod:`repro.apps.polymer.bfs`          NUMA-aware graph analytics
BP       :mod:`repro.apps.polymer.bp`           NUMA-aware graph analytics
=======  =====================================  ==========================
"""

from repro.apps.common import AppResult, VARIANTS, AdaptationInfo

APP_NAMES = ["GRP", "KMN", "BT", "EP", "FT", "BLK", "BFS", "BP"]


def get_app(name: str):
    """The app module for a short name from :data:`APP_NAMES`."""
    from repro.apps import blackscholes, kmeans, string_match
    from repro.apps.npb import bt, ep, ft
    from repro.apps.polymer import bfs, bp

    table = {
        "GRP": string_match,
        "KMN": kmeans,
        "BT": bt,
        "EP": ep,
        "FT": ft,
        "BLK": blackscholes,
        "BFS": bfs,
        "BP": bp,
    }
    try:
        return table[name.upper()]
    except KeyError:
        raise ValueError(f"unknown app {name!r}; choose from {APP_NAMES}")


__all__ = ["APP_NAMES", "AdaptationInfo", "AppResult", "VARIANTS", "get_app"]
