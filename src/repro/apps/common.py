"""Shared scaffolding for the evaluation applications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro.core import DexCluster, DexProcess
from repro.core.stats import DexStats
from repro.params import SimParams
from repro.runtime import MemoryAllocator

VARIANTS = ("unmodified", "initial", "optimized")


@dataclass
class AdaptationInfo:
    """Table I metadata: how invasive each port was.

    ``initial_loc`` counts the lines the first port adds/changes (the
    migration calls, §V-A); ``optimized_loc`` counts the additional lines
    the §IV optimizations touch.  ``regions`` is the number of converted
    parallel regions for OpenMP apps (None for pthread apps)."""

    multithread_impl: str  # "pthread" | "openmp"
    initial_loc: int
    optimized_loc: int
    regions: Optional[int] = None
    notes: str = ""


@dataclass
class AppResult:
    """Outcome of one application run."""

    app: str
    variant: str
    num_nodes: int
    num_threads: int
    elapsed_us: float        # the timed parallel section
    output: Any              # app-specific result for correctness checks
    stats: DexStats
    correct: Optional[bool] = None  # set when the app verified itself

    @property
    def throughput(self) -> float:
        """Inverse runtime; Figure 2's y-axis is throughput ratios."""
        return 1.0 / self.elapsed_us if self.elapsed_us > 0 else float("inf")


def workload_seed(params: Optional[SimParams], default: int) -> int:
    """Resolve an app's workload-generation seed.

    ``SimParams.seed`` wins when the caller pinned one (so a single knob
    reproduces the whole run: engine event order, chaos schedule, *and*
    input data); otherwise the app's calibrated historical default is used,
    keeping existing timings bit-identical when no seed is requested."""
    if params is not None and params.seed is not None:
        return params.seed
    return default


def check_variant(variant: str) -> str:
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
    return variant


def plan_nodes(cluster: DexCluster, num_nodes: int) -> List[int]:
    """The node set an n-node run uses (origin first)."""
    if not 1 <= num_nodes <= cluster.num_nodes:
        raise ValueError(
            f"num_nodes must be in [1, {cluster.num_nodes}], got {num_nodes}"
        )
    return list(range(num_nodes))


def run_workers(
    cluster: DexCluster,
    proc: DexProcess,
    body: Callable[..., Generator],
    num_threads: int,
    nodes: Sequence[int],
    migrate: bool,
    args: tuple = (),
) -> float:
    """The common harness: spawn *num_threads* workers, each performing the
    paper's conversion (migrate out, run, migrate back) when *migrate*;
    block-assign workers to *nodes*.  Returns the elapsed simulated time of
    the parallel section."""
    from repro.runtime.openmp import node_for_worker

    start = cluster.engine.now

    def worker(ctx, wid: int) -> Generator:
        if migrate:
            yield from ctx.migrate(node_for_worker(wid, num_threads, list(nodes)))
        yield from body(ctx, wid, *args)
        if migrate:
            yield from ctx.migrate_back()

    threads = [
        proc.spawn_thread(worker, i, name=f"w{i}") for i in range(num_threads)
    ]

    def waiter(ctx) -> Generator:
        yield from proc.join_all(threads)

    cluster.simulate(waiter, proc)
    return cluster.engine.now - start


def fresh_process(num_nodes: int, params: Optional[SimParams] = None):
    """(cluster, process, allocator) for one app run.  The cluster always
    has 8 nodes (the testbed); *num_nodes* only controls placement."""
    cluster = DexCluster(num_nodes=max(num_nodes, 8), params=params)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    return cluster, proc, alloc
