"""Synthetic workload generators (the paper's inputs, scaled down).

* :func:`text_corpus` — stands in for the 8 GB Wikipedia text GRP scans;
* :func:`clustered_points` — the 5M-point 3-D k-means input;
* :func:`option_batch` — PARSEC blackscholes 'native'-style option batch;
* :func:`rmat_graph` — the R-MAT generator Polymer's inputs came from,
  with the Graph500 parameters the paper cites (a=0.57, b=0.19).

All generators are deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

DEFAULT_KEYS = (b"popcorn", b"kernel", b"migrate", b"infiniband")


def text_corpus(
    size_bytes: int,
    keys: Sequence[bytes] = DEFAULT_KEYS,
    seed: int = 7,
    plant_every: int = 8000,
) -> bytes:
    """Random lowercase text with the search keys planted roughly every
    *plant_every* bytes.

    Key occurrences are spread uniformly so every partition finds some —
    which is what makes GRP's global occurrence counter contended."""
    rng = np.random.default_rng(seed)
    text = rng.integers(ord("a"), ord("z") + 1, size=size_bytes, dtype=np.uint8)
    # sprinkle spaces for realism
    text[rng.random(size_bytes) < 0.15] = ord(" ")
    buffer = bytearray(text.tobytes())
    n_plants = max(size_bytes // plant_every, len(keys))
    positions = rng.integers(0, max(size_bytes - 16, 1), size=n_plants)
    for i, pos in enumerate(sorted(positions)):
        key = keys[i % len(keys)]
        buffer[pos : pos + len(key)] = key
    return bytes(buffer)


def count_occurrences(text: bytes, keys: Sequence[bytes]) -> List[int]:
    """Reference (non-overlapping) occurrence counts."""
    return [text.count(key) for key in keys]


def clustered_points(
    n_points: int, n_clusters: int, dim: int = 3, seed: int = 11
) -> np.ndarray:
    """Points drawn around *n_clusters* well-separated centers."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-100.0, 100.0, size=(n_clusters, dim))
    labels = rng.integers(0, n_clusters, size=n_points)
    return (centers[labels] + rng.normal(0.0, 2.0, size=(n_points, dim))).astype(
        np.float64
    )


@dataclass
class OptionBatch:
    """Black–Scholes inputs: spot, strike, risk-free rate, volatility,
    time-to-maturity, and call/put flag."""

    spot: np.ndarray
    strike: np.ndarray
    rate: np.ndarray
    volatility: np.ndarray
    maturity: np.ndarray
    is_call: np.ndarray

    def __len__(self) -> int:
        return len(self.spot)


def option_batch(n_options: int, seed: int = 13) -> OptionBatch:
    rng = np.random.default_rng(seed)
    return OptionBatch(
        spot=rng.uniform(20.0, 180.0, n_options),
        strike=rng.uniform(20.0, 180.0, n_options),
        rate=np.full(n_options, 0.02),
        volatility=rng.uniform(0.1, 0.6, n_options),
        maturity=rng.uniform(0.05, 2.0, n_options),
        is_call=rng.random(n_options) < 0.5,
    )


def black_scholes_reference(batch: OptionBatch) -> np.ndarray:
    """Closed-form prices (the reference every BLK run is checked against)."""
    from math import erf, exp, log, sqrt

    out = np.empty(len(batch))
    for i in range(len(batch)):
        s, k = batch.spot[i], batch.strike[i]
        r, v, t = batch.rate[i], batch.volatility[i], batch.maturity[i]
        d1 = (log(s / k) + (r + v * v / 2.0) * t) / (v * sqrt(t))
        d2 = d1 - v * sqrt(t)
        cnd = lambda x: 0.5 * (1.0 + erf(x / sqrt(2.0)))  # noqa: E731
        call = s * cnd(d1) - k * exp(-r * t) * cnd(d2)
        if batch.is_call[i]:
            out[i] = call
        else:
            out[i] = call - s + k * exp(-r * t)  # put-call parity
    return out


def rmat_graph(
    n_vertices: int,
    n_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 17,
) -> Tuple[np.ndarray, np.ndarray]:
    """An R-MAT graph in CSR form ``(indptr, indices)``.

    Recursive quadrant descent with the Graph500 parameters the paper used
    (α=0.57, β=0.19; the remaining mass splits between c and d).  Self
    loops are kept (as Graph500 does); duplicate edges are removed.
    """
    if n_vertices & (n_vertices - 1):
        # round up to a power of two for clean quadrant descent
        n_vertices = 1 << (n_vertices - 1).bit_length()
    levels = n_vertices.bit_length() - 1
    rng = np.random.default_rng(seed)
    # vectorized R-MAT: one quadrant decision per (edge, level)
    probs = rng.random((n_edges, levels))
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    p_a, p_ab, p_abc = a, a + b, a + b + c
    for level in range(levels):
        bit = 1 << (levels - 1 - level)
        p = probs[:, level]
        in_b = (p >= p_a) & (p < p_ab)
        in_c = (p >= p_ab) & (p < p_abc)
        in_d = p >= p_abc
        dst[in_b | in_d] += bit
        src[in_c | in_d] += bit
    # symmetrize (Polymer's inputs are undirected) and dedupe
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    order = np.lexsort((all_dst, all_src))
    all_src, all_dst = all_src[order], all_dst[order]
    keep = np.ones(len(all_src), dtype=bool)
    keep[1:] = (all_src[1:] != all_src[:-1]) | (all_dst[1:] != all_dst[:-1])
    all_src, all_dst = all_src[keep], all_dst[keep]
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.add.at(indptr, all_src + 1, 1)
    indptr = np.cumsum(indptr)
    return indptr, all_dst.astype(np.int64)


# ---------------------------------------------------------------------------
# Request-sized query adapters (DexServe).
#
# Each adapter is a *bounded* unit of work factored out of the batch apps:
# the same kernels, costs, and DSM access patterns as one chunk of the
# corresponding worker body, wrapped as a generator a serving thread can
# ``yield from`` per request.  The batch ``run()`` paths above and in the
# sibling app modules are untouched — the adapters import their kernels
# lazily (the app modules import this one, so top-level imports would
# cycle) and the differential tests pin adapter results to the batch
# references.
# ---------------------------------------------------------------------------


def kmn_query(ctx, points_arr, centroids, k: int, lo: int, hi: int,
              dim: int = 3):
    """Classify points ``[lo, hi)`` against the current centroids (one
    KMN model query).  Returns the assignment labels."""
    from repro.apps import kmeans

    centers = (yield from centroids.read(ctx, site="serve:kmn:centers"))
    centers = centers.reshape(k, dim)
    raw = yield from points_arr.read(ctx, lo * dim, hi * dim,
                                     site="serve:kmn:points")
    pts = raw.reshape(hi - lo, dim)
    yield from ctx.compute(cpu_us=(hi - lo) * kmeans.CPU_US_PER_POINT,
                           mem_bytes=(hi - lo) * dim * 8)
    d2 = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    return d2.argmin(axis=1)


def grp_lookup(ctx, text_arr, text_len: int, keys: Sequence[bytes],
               lo: int, hi: int):
    """Count key occurrences starting in ``[lo, hi)`` of the text (one
    GRP lookup).  Read-only: counts are staged locally and returned, as
    in the optimized batch variant."""
    from repro.apps.string_match import CPU_US_PER_BYTE, _count_starting_before

    max_key = max(len(k) for k in keys)
    take = hi - lo
    window = min(take + max_key - 1, text_len - lo)
    raw = yield from ctx.read(text_arr.addr + lo, window, site="serve:grp:scan")
    yield from ctx.compute(cpu_us=take * CPU_US_PER_BYTE, mem_bytes=take)
    return [_count_starting_before(raw, key, take) for key in keys]


def blk_price_query(ctx, inputs, flags, lo: int, hi: int):
    """Price options ``[lo, hi)`` (one BLK pricing call).  Reads the five
    input fields through the DSM and returns the prices without writing
    them back — serving returns results to the client, not to shared
    memory."""
    from repro.apps.blackscholes import CPU_US_PER_OPTION, _price_arrays

    take = hi - lo
    values = {}
    for name in ("spot", "strike", "rate", "volatility", "maturity"):
        values[name] = yield from inputs[name].read(ctx, lo, hi,
                                                    site="serve:blk:inputs")
    raw_flags = yield from ctx.read(flags.addr + lo, take,
                                    site="serve:blk:inputs")
    is_call = np.frombuffer(raw_flags, dtype=np.uint8).astype(bool)
    yield from ctx.compute(cpu_us=take * CPU_US_PER_OPTION,
                           mem_bytes=take * 48)
    return _price_arrays(
        values["spot"], values["strike"], values["rate"],
        values["volatility"], values["maturity"], is_call,
    )


def scan_query(ctx, text_arr, text_len: int, keys: Sequence[bytes],
               hits, lo: int, hi: int):
    """Scan text ``[lo, hi)`` and fold occurrence counts into the shared
    ``hits`` counters (one string-match scan).  Unlike :func:`grp_lookup`
    this *writes* shared state per request — the contended tenant shape,
    mirroring the initial batch variant's global-counter updates."""
    from repro.apps.string_match import CPU_US_PER_BYTE, _count_starting_before

    max_key = max(len(k) for k in keys)
    take = hi - lo
    window = min(take + max_key - 1, text_len - lo)
    raw = yield from ctx.read(text_arr.addr + lo, window,
                              site="serve:scan:scan")
    yield from ctx.compute(cpu_us=take * CPU_US_PER_BYTE, mem_bytes=take)
    found = [_count_starting_before(raw, key, take) for key in keys]
    for k, count in enumerate(found):
        if count:
            yield from hits.add(ctx, k, count, site="serve:scan:count")
    return found


def bfs_reference(indptr: np.ndarray, indices: np.ndarray, source: int) -> np.ndarray:
    """Single-threaded BFS distances (-1 = unreachable)."""
    n = len(indptr) - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        nxt = []
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                if dist[v] < 0:
                    dist[v] = level + 1
                    nxt.append(int(v))
        frontier = nxt
        level += 1
    return dist
