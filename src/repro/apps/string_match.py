"""GRP — string match (§V, "simple" category).

Looks up key strings in a text and counts their occurrences; the text is
partitioned and scanned by worker threads in parallel.

* **initial** port: two added lines (migrate out / back).  The original
  program's sins stay: all thread argument blocks live on a single page,
  and every occurrence found bumps a *global* counter — "the original
  implementations interfere with global variables — GRP updates a global
  variable when it finds an occurrence" (§V-C).  On DeX that page
  ping-pongs between all nodes.
* **optimized** port: thread arguments and counters are page-aligned via
  ``posix_memalign``-style allocation, and "each thread stages its updates
  locally before updating the shared global variables once after the
  computation" (§V-C).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.apps import workloads
from repro.apps.common import (
    AdaptationInfo,
    AppResult,
    check_variant,
    fresh_process,
    plan_nodes,
    run_workers,
    workload_seed,
)
from repro.params import SimParams
from repro.runtime.array import alloc_array

#: scan cost: ~0.02 us/byte ≈ 50 MB/s per worker thread (multi-key
#: byte-wise matching, as in the Phoenix string_match kernel)
CPU_US_PER_BYTE = 0.02
CHUNK = 64 * 1024

ADAPTATION = AdaptationInfo(
    multithread_impl="pthread",
    initial_loc=2,
    optimized_loc=18,
    notes="1 line each for forward/backward migration; optimization "
    "replaces malloc with posix_memalign for thread args and stages "
    "occurrence-counter updates locally",
)


def _count_starting_before(window: bytes, key: bytes, limit: int) -> int:
    """Occurrences of *key* starting at offsets < *limit* (the partition's
    own territory; the tail overlap belongs to the next partition)."""
    count = 0
    pos = window.find(key)
    while 0 <= pos < limit:
        count += 1
        pos = window.find(key, pos + 1)
    return count


def run(
    num_nodes: int = 1,
    variant: str = "initial",
    threads_per_node: int = 8,
    text_size: int = 16 * 1024 * 1024,
    keys: Sequence[bytes] = workloads.DEFAULT_KEYS,
    params: Optional[SimParams] = None,
    tracer=None,
    seed: Optional[int] = None,
    plant_every: int = 400,
) -> AppResult:
    """Run GRP; returns an :class:`AppResult` whose output is the list of
    per-key occurrence counts (verified against the reference scan)."""
    check_variant(variant)
    seed = workload_seed(params, 7) if seed is None else seed
    cluster, proc, alloc = fresh_process(num_nodes, params)
    if tracer is not None:
        proc.attach_tracer(tracer)
    nodes = plan_nodes(cluster, num_nodes)
    num_threads = threads_per_node * num_nodes
    migrate = variant != "unmodified"
    optimized = variant == "optimized"

    text = workloads.text_corpus(text_size, keys, seed=seed,
                                 plant_every=plant_every)
    expected = workloads.count_occurrences(text, keys)
    max_key = max(len(k) for k in keys)

    # ---- layout (where the variants differ) -----------------------------
    text_arr = alloc_array(alloc, np.uint8, len(text), name="text",
                           page_aligned=True)
    if optimized:
        # page-aligned counters and per-thread argument blocks
        counters = alloc_array(alloc, np.int64, len(keys), name="counters",
                               segment="globals", page_aligned=True)
        args = [
            alloc_array(alloc, np.int64, 2, name=f"args{i}",
                        segment="globals", page_aligned=True)
            for i in range(num_threads)
        ]
    else:
        # the unmodified layout: counters and every thread's argument block
        # bump-allocated together -> all on one or two pages
        counters = alloc_array(alloc, np.int64, len(keys), name="counters",
                               segment="globals")
        args = [
            alloc_array(alloc, np.int64, 2, name=f"args{i}", segment="globals")
            for i in range(num_threads)
        ]

    part = (len(text) + num_threads - 1) // num_threads

    def body(ctx, wid: int) -> Generator:
        lo = int((yield from args[wid].get(ctx, 0, site="grp:args")))
        hi = int((yield from args[wid].get(ctx, 1, site="grp:args")))
        local = [0] * len(keys)
        pos = lo
        while pos < hi:
            take = min(CHUNK, hi - pos)
            window = min(take + max_key - 1, len(text) - pos)
            raw = yield from ctx.read(text_arr.addr + pos, window,
                                      site="grp:scan")
            if optimized:
                # scan the chunk, staging counts locally (§V-C)
                yield from ctx.compute(cpu_us=take * CPU_US_PER_BYTE,
                                       mem_bytes=take)
                for k, key in enumerate(keys):
                    local[k] += _count_starting_before(raw, key, take)
            else:
                # the original program bumps the shared counter the moment
                # each occurrence is found, mid-scan: the scan compute is
                # interleaved with the global updates
                hits = []
                for k, key in enumerate(keys):
                    p = raw.find(key)
                    while 0 <= p < take:
                        hits.append((p, k))
                        p = raw.find(key, p + 1)
                hits.sort()
                slice_us = take * CPU_US_PER_BYTE / (len(hits) + 1)
                slice_bytes = take / (len(hits) + 1)
                for _, k in hits:
                    yield from ctx.compute(cpu_us=slice_us,
                                           mem_bytes=slice_bytes)
                    yield from counters.add(ctx, k, 1, site="grp:count")
                yield from ctx.compute(cpu_us=slice_us, mem_bytes=slice_bytes)
            pos += take
        if optimized:
            for k, found in enumerate(local):
                if found:
                    yield from counters.add(ctx, k, found, site="grp:count")

    def setup(ctx) -> Generator:
        yield from text_arr.write(ctx, 0,
                                  np.frombuffer(text, dtype=np.uint8))
        for i in range(num_threads):
            yield from args[i].write(
                ctx, 0,
                np.array([i * part, min((i + 1) * part, len(text))],
                         dtype=np.int64),
            )

    cluster.simulate(setup, proc)
    elapsed = run_workers(cluster, proc, body, num_threads, nodes, migrate)

    def collect(ctx) -> Generator:
        values = yield from counters.read(ctx)
        return [int(v) for v in values]

    output = cluster.simulate(collect, proc)
    return AppResult(
        app="GRP",
        variant=variant,
        num_nodes=num_nodes,
        num_threads=num_threads,
        elapsed_us=elapsed,
        output=output,
        stats=proc.stats,
        correct=(output == expected),
    )


def reference(text_size: int = 16 * 1024 * 1024,
              keys: Sequence[bytes] = workloads.DEFAULT_KEYS,
              seed: int = 7, plant_every: int = 400) -> List[int]:
    """The plain single-threaded answer."""
    return workloads.count_occurrences(
        workloads.text_corpus(text_size, keys, seed=seed,
                              plant_every=plant_every), keys
    )
