"""BP — belief propagation on the Polymer engine.

Jacobi-style iterations: each vertex's new belief mixes its own previous
belief with the mean of its neighbours' (a loopy-BP-shaped update that is
exactly reproducible in numpy).  BP "continues accessing a large amount of
memory without locality" (§V-B): per iteration every thread streams its
partition's edge lists and gathers scattered neighbour beliefs, so the
kernel is memory-bandwidth-bound on one machine — the paper observed
under-utilized CPUs there and **super-linear** scaling (3.84x from 1 to 2
nodes) once DeX spread the footprint over more memory systems.  The
per-node working set entering the LLC model shrinks with the node count,
which is what produces that super-linearity here too.

* **initial**: migration calls + numa_alloc -> malloc; belief partitions
  are unaligned (boundary pages bounce every iteration) and each thread
  pokes the global convergence flag per chunk (§IV-C).
* **optimized**: page-aligned per-node belief partitions, locally staged
  convergence flags.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.apps import workloads
from repro.apps.common import (
    AdaptationInfo,
    AppResult,
    check_variant,
    fresh_process,
    plan_nodes,
    run_workers,
    workload_seed,
)
from repro.apps.polymer.graph import edge_balanced_partitions, load_graph
from repro.params import SimParams
from repro.runtime import Barrier
from repro.runtime.array import alloc_array

#: arithmetic per edge (gather + mix)
CPU_US_PER_EDGE = 0.02
#: DRAM traffic per edge: a scattered gather touches a full cache line,
#: and the loopy-BP message state adds another line's worth
BYTES_PER_EDGE = 96
CONVERGE_EPS = 1e-9

ADAPTATION = AdaptationInfo(
    multithread_impl="pthread",
    initial_loc=12,
    optimized_loc=42,
    notes="migration calls plus numa_alloc_local -> malloc (§V-A); "
    "optimization packs per-node belief partitions page-aligned and "
    "stages the convergence flag locally",
)


def reference(
    indptr: np.ndarray, indices: np.ndarray, beliefs0: np.ndarray, iters: int
) -> np.ndarray:
    # beliefs are stored float32 (as Polymer does for big graphs); the
    # reference reproduces the same per-iteration rounding
    b = beliefs0.astype(np.float32)
    n = len(indptr) - 1
    deg = np.maximum(indptr[1:] - indptr[:-1], 1)
    for _ in range(iters):
        gathered = np.zeros(n)
        np.add.at(gathered, np.repeat(np.arange(n), indptr[1:] - indptr[:-1]),
                  b[indices].astype(np.float64))
        b = (0.5 * b.astype(np.float64) + 0.5 * gathered / deg).astype(
            np.float32
        )
    return b


def run(
    num_nodes: int = 1,
    variant: str = "initial",
    threads_per_node: int = 8,
    n_vertices: int = 65_536,
    n_edges: int = 1_000_000,
    iters: int = 5,
    params: Optional[SimParams] = None,
    tracer=None,
    seed: Optional[int] = None,
) -> AppResult:
    """Run BP; output is the final belief vector, checked against the
    reference (float64 math on both sides, so allclose is tight)."""
    check_variant(variant)
    seed = workload_seed(params, 31) if seed is None else seed
    cluster, proc, alloc = fresh_process(num_nodes, params)
    if tracer is not None:
        proc.attach_tracer(tracer)
    nodes = plan_nodes(cluster, num_nodes)
    num_threads = threads_per_node * num_nodes
    migrate = variant != "unmodified"
    optimized = variant == "optimized"

    indptr, indices = workloads.rmat_graph(n_vertices, n_edges, seed=seed)
    n_vertices = len(indptr) - 1
    rng = np.random.default_rng(seed + 1)
    beliefs0 = rng.uniform(0.0, 1.0, n_vertices)
    expected = reference(indptr, indices, beliefs0, iters)

    graph, edge_data = load_graph(alloc, indptr, indices)
    beliefs = [
        alloc_array(alloc, np.float32, n_vertices, name=f"beliefs{p}",
                    page_aligned=optimized)
        for p in range(2)
    ]
    flag = alloc_array(alloc, np.int64, 1, name="bp_flag",
                       segment="globals", page_aligned=optimized)
    barrier = Barrier(alloc, num_threads, name="bp", page_aligned=optimized)

    thread_parts = edge_balanced_partitions(indptr, num_threads)
    #: the hot footprint an n-node run spreads: edge lists (with their
    #: gather metadata) + both belief arrays, per node (drives the
    #: LLC-miss model in ctx.compute)
    hot_bytes = graph.indices.nbytes * 2 + 2 * beliefs[0].nbytes

    def body(ctx, wid: int) -> Generator:
        vlo, vhi = thread_parts[wid]
        for it in range(iters):
            src = beliefs[it % 2]
            dst = beliefs[1 - it % 2]
            if vhi > vlo:
                iptr = yield from graph.indptr.read(ctx, vlo, vhi + 1,
                                                    site="bp:indptr")
                elo, ehi = int(iptr[0]), int(iptr[-1])
                if ehi > elo:
                    edges = yield from graph.indices.read(
                        ctx, elo, ehi, site="bp:edges"
                    )
                else:
                    edges = np.empty(0, dtype=np.int64)
                # gather neighbour beliefs: scattered across the whole
                # array, so page granularity pulls in (almost) all of it
                all_b = yield from src.read(ctx, 0, n_vertices,
                                            site="bp:gather")
                n_my_edges = ehi - elo
                yield from ctx.compute(
                    cpu_us=n_my_edges * CPU_US_PER_EDGE,
                    mem_bytes=n_my_edges * BYTES_PER_EDGE,
                    working_set=hot_bytes / max(num_nodes, 1),
                )
                counts = (iptr[1:] - iptr[:-1]).astype(np.int64)
                deg = np.maximum(counts, 1)
                gathered = np.zeros(vhi - vlo)
                if n_my_edges:
                    np.add.at(
                        gathered,
                        np.repeat(np.arange(vhi - vlo), counts),
                        all_b[edges].astype(np.float64),
                    )
                mine = all_b[vlo:vhi].astype(np.float64)
                new = (0.5 * mine + 0.5 * gathered / deg).astype(np.float32)
                yield from dst.write(ctx, vlo, new, site="bp:scatter")
                changed = bool(
                    (np.abs(new.astype(np.float64) - mine) > CONVERGE_EPS).any()
                )
            else:
                changed = False
            if changed:
                if optimized:
                    # stage locally: publish once, at the last iteration
                    if it == iters - 1:
                        yield from flag.set(ctx, 0, 1, site="bp:flag")
                else:
                    # the original pokes the global flag as it goes
                    yield from flag.set(ctx, 0, 1, site="bp:flag")
            yield from barrier.wait(ctx)

    def setup(ctx) -> Generator:
        yield from graph.indptr.write(ctx, 0, indptr)
        if len(edge_data):
            yield from graph.indices.write(ctx, 0, edge_data)
        yield from beliefs[0].write(ctx, 0, beliefs0)

    cluster.simulate(setup, proc)
    elapsed = run_workers(cluster, proc, body, num_threads, nodes, migrate)

    def collect(ctx) -> Generator:
        final = yield from beliefs[iters % 2].read(ctx)
        return final

    output = cluster.simulate(collect, proc)
    return AppResult(
        app="BP",
        variant=variant,
        num_nodes=num_nodes,
        num_threads=num_threads,
        elapsed_us=elapsed,
        output=output,
        stats=proc.stats,
        correct=bool(np.allclose(output, expected, rtol=1e-5, atol=1e-6)),
    )
