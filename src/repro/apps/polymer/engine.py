"""Polymer's per-node frontier machinery, in both layouts.

The *initial* port (§V-A) replaces Polymer's ``numa_alloc_local`` calls
with plain ``malloc`` — so the frontier arrays, the per-node staging
buffers, and the continue-flag all come from one bump-allocated run of the
heap and share pages across nodes.  The *optimized* port (§V-C) restores
the intent on DeX: per-node structures are page-aligned, the flag lives
alone, and per-thread updates are staged locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.runtime.alloc import MemoryAllocator
from repro.runtime.array import DistArray, alloc_array


@dataclass
class FrontierState:
    """Byte-per-vertex frontier arrays plus per-node staging buffers.

    ``current[parity]`` holds this level's frontier; workers push
    discoveries either straight into the other parity (initial) or into
    their node's ``staging`` buffer, which per-node leaders merge at the
    level barrier (optimized).
    """

    current: List[DistArray]          # two parities
    staging: List[DistArray]          # one per node (optimized layout)
    go: DistArray                     # per-level continue counts
    flag_addr: int                    # the §IV-C globally-shared flag

    def frontier(self, level: int) -> DistArray:
        return self.current[level % 2]

    def next_frontier(self, level: int) -> DistArray:
        return self.current[1 - level % 2]


def make_frontier_state(
    alloc: MemoryAllocator,
    n_vertices: int,
    num_nodes: int,
    max_levels: int,
    optimized: bool,
) -> FrontierState:
    aligned = optimized
    current = [
        alloc_array(alloc, np.uint8, n_vertices, name=f"frontier{p}",
                    page_aligned=aligned)
        for p in range(2)
    ]
    staging = [
        alloc_array(alloc, np.uint8, n_vertices, name=f"staging{k}",
                    page_aligned=aligned)
        for k in range(num_nodes)
    ]
    go = alloc_array(alloc, np.int64, max_levels, name="go",
                     segment="globals", page_aligned=aligned)
    flag_addr = alloc.alloc_global(
        8, align=alloc.page_size if aligned else 8, tag="frontier_flag"
    )
    return FrontierState(current=current, staging=staging, go=go,
                         flag_addr=flag_addr)
