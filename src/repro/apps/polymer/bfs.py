"""BFS — level-synchronous breadth-first search on the Polymer engine.

Per level, every thread scans its vertex partition's slice of the current
frontier, expands the active vertices' edges, and publishes discoveries.

* **initial** (libNUMA calls swapped for malloc, §V-A): discoveries are
  written straight into the shared next-frontier array and the shared
  distance array — cross-node scattered writes that bounce pages — and
  the global "frontier non-empty" flag is poked on every discovery batch
  (§IV-C's anti-pattern).
* **optimized** (§V-C): discoveries go to the discovering node's staging
  buffer; at the level barrier, one leader thread per node merges all
  staging slices for *its* vertex range, updates its distances locally,
  and builds the next frontier — Polymer's per-node design restored.

Either way the computed distances must equal the reference BFS exactly.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.apps import workloads
from repro.apps.common import (
    AdaptationInfo,
    AppResult,
    check_variant,
    fresh_process,
    plan_nodes,
    run_workers,
    workload_seed,
)
from repro.apps.polymer.engine import make_frontier_state
from repro.apps.polymer.graph import edge_balanced_partitions, load_graph
from repro.params import SimParams
from repro.runtime import Barrier, MemoryAllocator
from repro.runtime.array import alloc_array

CPU_US_PER_EDGE = 0.05
CPU_US_PER_VERTEX = 0.005
MAX_LEVELS = 48

ADAPTATION = AdaptationInfo(
    multithread_impl="pthread",
    initial_loc=11,
    optimized_loc=38,
    notes="migration calls plus numa_alloc_local -> malloc replacement "
    "(§V-A); optimization restores page-aligned per-node frontier and "
    "distance structures and stages the non-empty flag locally",
)


def run(
    num_nodes: int = 1,
    variant: str = "initial",
    threads_per_node: int = 8,
    n_vertices: int = 65_536,
    n_edges: int = 260_000,
    source: int = 0,
    params: Optional[SimParams] = None,
    tracer=None,
    seed: Optional[int] = None,
) -> AppResult:
    """Run BFS; output is the distance vector, checked against the
    single-threaded reference."""
    check_variant(variant)
    seed = workload_seed(params, 17) if seed is None else seed
    cluster, proc, alloc = fresh_process(num_nodes, params)
    if tracer is not None:
        proc.attach_tracer(tracer)
    nodes = plan_nodes(cluster, num_nodes)
    num_threads = threads_per_node * num_nodes
    migrate = variant != "unmodified"
    optimized = variant == "optimized"

    indptr, indices = workloads.rmat_graph(n_vertices, n_edges, seed=seed)
    n_vertices = len(indptr) - 1  # rmat may round up to a power of two
    expected = workloads.bfs_reference(indptr, indices, source)

    graph, edge_data = load_graph(alloc, indptr, indices)
    dist = alloc_array(alloc, np.int64, n_vertices, name="dist",
                       page_aligned=optimized)
    state = make_frontier_state(alloc, n_vertices, num_nodes, MAX_LEVELS,
                                optimized)
    barrier = Barrier(alloc, num_threads, name="bfs", page_aligned=optimized)

    thread_parts = edge_balanced_partitions(indptr, num_threads)
    # contiguous per-node ranges (threads are block-assigned to nodes)
    node_ranges = []
    for k in range(num_nodes):
        first = k * threads_per_node
        last = first + threads_per_node - 1
        node_ranges.append((thread_parts[first][0], thread_parts[last][1]))

    def body(ctx, wid: int) -> Generator:
        vlo, vhi = thread_parts[wid]
        my_node = wid // threads_per_node
        nlo, nhi = node_ranges[my_node]
        is_leader = wid % threads_per_node == 0
        for level in range(MAX_LEVELS):
            cur = state.frontier(level)
            nxt = state.next_frontier(level)
            discovered_any = False
            if vhi > vlo:
                mine = yield from cur.read(ctx, vlo, vhi, site="bfs:frontier")
                active = np.nonzero(mine)[0] + vlo
            else:
                active = np.empty(0, dtype=np.int64)
            if active.size:
                iptr = yield from graph.indptr.read(ctx, vlo, vhi + 1,
                                                    site="bfs:indptr")
                elo, ehi = int(iptr[0]), int(iptr[-1])
                if ehi > elo:
                    edges = yield from graph.indices.read(
                        ctx, elo, ehi, site="bfs:edges"
                    )
                else:
                    edges = np.empty(0, dtype=np.int64)
                starts = iptr[active - vlo] - elo
                stops = iptr[active - vlo + 1] - elo
                n_active_edges = int((stops - starts).sum())
                yield from ctx.compute(
                    cpu_us=n_active_edges * CPU_US_PER_EDGE
                    + len(active) * CPU_US_PER_VERTEX,
                    mem_bytes=n_active_edges * 16,
                )
                if n_active_edges:
                    nbrs = np.unique(
                        np.concatenate(
                            [edges[a:b] for a, b in zip(starts, stops)]
                        )
                    )
                else:
                    nbrs = np.empty(0, dtype=np.int64)
                if optimized:
                    # push into this node's staging buffer (page-aligned,
                    # only this node's threads write it)
                    stage = state.staging[my_node]
                    for v in nbrs:
                        yield from ctx.write(stage.addr + int(v), b"\x01",
                                             site="bfs:stage")
                    discovered_any = bool(nbrs.size)
                else:
                    # check and write the shared distance array directly,
                    # publish into the shared next frontier, poke the flag
                    page = cluster.params.page_size
                    per = page // 8
                    newly: List[int] = []
                    for pg in np.unique(nbrs // per):
                        base = int(pg) * per
                        raw = yield from ctx.read(
                            dist.addr + base * 8,
                            min(per, n_vertices - base) * 8,
                            site="bfs:dist_check",
                        )
                        vals = np.frombuffer(raw, dtype=np.int64)
                        local = nbrs[(nbrs >= base) & (nbrs < base + per)]
                        newly.extend(
                            int(v) for v in local if vals[v - base] < 0
                        )
                    for i, v in enumerate(newly):
                        yield from dist.set(ctx, v, level + 1,
                                            site="bfs:dist_write")
                        yield from ctx.write(nxt.addr + v, b"\x01",
                                             site="bfs:next")
                        if i % 16 == 0:
                            # "rather than blindly checking and setting the
                            # flag..." (§IV-C) — the original sets the
                            # global flag as it discovers
                            yield from ctx.write_i64(state.flag_addr, 1,
                                                     site="bfs:flag")
                    discovered_any = bool(newly)
            yield from barrier.wait(ctx)
            # ---- merge / level bookkeeping --------------------------------
            if optimized and is_leader and nhi > nlo:
                union = np.zeros(nhi - nlo, dtype=np.uint8)
                for k in range(num_nodes):
                    part = yield from state.staging[k].read(
                        ctx, nlo, nhi, site="bfs:merge"
                    )
                    if part.any():
                        union |= part
                        yield from state.staging[k].write(
                            ctx, nlo, np.zeros(nhi - nlo, dtype=np.uint8),
                            site="bfs:merge_clear",
                        )
                my_dist = yield from dist.read(ctx, nlo, nhi,
                                               site="bfs:merge")
                newly_mask = (union > 0) & (my_dist < 0)
                count = int(newly_mask.sum())
                if count:
                    my_dist[newly_mask] = level + 1
                    yield from dist.write(ctx, nlo, my_dist,
                                          site="bfs:merge")
                next_bytes = newly_mask.astype(np.uint8)
                yield from nxt.write(ctx, nlo, next_bytes, site="bfs:merge")
                yield from ctx.compute(
                    cpu_us=(nhi - nlo) * 0.002 * num_nodes
                )
                if count:
                    yield from state.go.add(ctx, level, count,
                                            site="bfs:go")
            elif not optimized:
                # clear my slice of the dying frontier for reuse
                if vhi > vlo:
                    yield from cur.write(
                        ctx, vlo, np.zeros(vhi - vlo, dtype=np.uint8),
                        site="bfs:clear",
                    )
                if wid == 0:
                    flag = yield from ctx.read_i64(state.flag_addr)
                    if flag:
                        yield from state.go.add(ctx, level, 1)
                        yield from ctx.write_i64(state.flag_addr, 0)
            yield from barrier.wait(ctx)
            keep_going = yield from state.go.get(ctx, level, site="bfs:go")
            if not keep_going:
                break

    def setup(ctx) -> Generator:
        yield from graph.indptr.write(ctx, 0, indptr)
        if len(edge_data):
            yield from graph.indices.write(ctx, 0, edge_data)
        yield from dist.write(ctx, 0, np.full(n_vertices, -1, dtype=np.int64))
        yield from dist.set(ctx, source, 0)
        yield from ctx.write(state.current[0].addr + source, b"\x01")

    cluster.simulate(setup, proc)
    elapsed = run_workers(cluster, proc, body, num_threads, nodes, migrate)

    def collect(ctx) -> Generator:
        result = yield from dist.read(ctx)
        return result

    output = cluster.simulate(collect, proc)
    return AppResult(
        app="BFS",
        variant=variant,
        num_nodes=num_nodes,
        num_threads=num_threads,
        elapsed_us=elapsed,
        output=output,
        stats=proc.stats,
        correct=bool((output == expected).all()),
    )
