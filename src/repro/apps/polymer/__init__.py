"""Polymer-like NUMA-aware graph analytics (§V: BFS and BP).

Polymer is a graph engine that co-locates per-node (NUMA-node) data with
the threads that use it.  This package rebuilds its essentials on DeX:

* :mod:`repro.apps.polymer.graph` — CSR graphs in distributed memory with
  per-node vertex partitions;
* :mod:`repro.apps.polymer.engine` — the per-node frontier/flag machinery
  in its *initial* (shared, libNUMA calls replaced by plain malloc, §V-A)
  and *optimized* (page-aligned per-node structures, locally-staged flags,
  §V-C) layouts;
* :mod:`repro.apps.polymer.bfs` / :mod:`repro.apps.polymer.bp` — the two
  applications the paper evaluates.
"""
