"""CSR graphs in distributed memory, with per-node vertex partitions.

Polymer partitions the graph per NUMA node and co-locates each partition
with the threads that process it; on DeX the same layout keeps each
node's adjacency pages and vertex-state pages exclusively on that node
after warm-up.  The adjacency arrays are read-only, so their pages
replicate once and stay cached everywhere they are needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.runtime.alloc import MemoryAllocator
from repro.runtime.array import DistArray, alloc_array


@dataclass
class DistGraph:
    """A CSR graph living in the distributed address space."""

    n_vertices: int
    n_edges: int
    indptr: DistArray    # int64[n_vertices + 1]
    indices: DistArray   # int64[n_edges]
    #: host-side copies for partition planning (setup-time only; worker
    #: threads read the DSM arrays)
    host_indptr: np.ndarray
    host_indices: np.ndarray

    @property
    def bytes_total(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes


def load_graph(
    alloc: MemoryAllocator,
    indptr: np.ndarray,
    indices: np.ndarray,
) -> Tuple[DistGraph, "np.ndarray"]:
    """Allocate the CSR arrays (page-aligned; the adjacency layout is not
    what the §IV optimizations change) and return the graph plus the data
    that must be written into it by a setup thread."""
    n = len(indptr) - 1
    graph = DistGraph(
        n_vertices=n,
        n_edges=len(indices),
        indptr=alloc_array(alloc, np.int64, n + 1, name="indptr",
                           page_aligned=True),
        indices=alloc_array(alloc, np.int64, max(len(indices), 1),
                            name="indices", page_aligned=True),
        host_indptr=indptr,
        host_indices=indices,
    )
    return graph, indices


def vertex_partitions(n_vertices: int, parts: int) -> List[Tuple[int, int]]:
    """Even block partition of the vertex set."""
    size = (n_vertices + parts - 1) // parts
    return [
        (min(i * size, n_vertices), min((i + 1) * size, n_vertices))
        for i in range(parts)
    ]


def edge_balanced_partitions(
    indptr: np.ndarray, parts: int
) -> List[Tuple[int, int]]:
    """Partition vertices so each part holds ~the same number of edges
    (Polymer's balance criterion; block partitions of an R-MAT graph are
    badly skewed otherwise)."""
    n = len(indptr) - 1
    total = int(indptr[-1])
    bounds = [0]
    for p in range(1, parts):
        target = total * p // parts
        bounds.append(int(np.searchsorted(indptr, target)))
    bounds.append(n)
    # ensure monotonicity under skew
    for i in range(1, len(bounds)):
        bounds[i] = max(bounds[i], bounds[i - 1])
    return [(bounds[i], bounds[i + 1]) for i in range(parts)]
