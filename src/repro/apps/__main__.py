"""CLI: ``python -m repro.apps <APP>`` — run one evaluation application.

Examples::

    python -m repro.apps GRP --nodes 4 --variant optimized
    python -m repro.apps BP --nodes 1 2 4 8 --variant initial --scale paper
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APP_NAMES
from repro.bench.runner import run_point


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps",
        description="Run one of the paper's eight applications on the "
        "simulated rack.",
    )
    parser.add_argument("app", choices=APP_NAMES, type=str.upper)
    parser.add_argument("--nodes", nargs="+", type=int, default=[1],
                        help="node counts to run (each is a separate run)")
    parser.add_argument("--variant",
                        choices=["unmodified", "initial", "optimized"],
                        default="initial")
    parser.add_argument("--threads-per-node", type=int, default=8)
    parser.add_argument("--scale", choices=["small", "paper"],
                        default="small")
    args = parser.parse_args(argv)

    baseline = None
    for n in args.nodes:
        result = run_point(
            args.app, args.variant, n, scale=args.scale,
            threads_per_node=args.threads_per_node,
        )
        if baseline is None:
            base = run_point(args.app, "unmodified", 1, scale=args.scale,
                             threads_per_node=args.threads_per_node)
            baseline = base.elapsed_us
            print(f"{args.app} baseline (unmodified, 1 node, "
                  f"{args.threads_per_node} threads): "
                  f"{baseline / 1000:.2f} ms\n")
        stats = result.stats
        print(
            f"{args.app} {args.variant} n={n}: "
            f"{result.elapsed_us / 1000:8.2f} ms  "
            f"({baseline / result.elapsed_us:5.2f}x)  "
            f"correct={result.correct}  "
            f"faults={stats.total_faults} retries={stats.fault_retries} "
            f"pages={stats.pages_transferred} "
            f"migrations={len(stats.migrations)}"
        )
        if result.correct is False:
            print("ERROR: wrong application output", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
