"""BLK — PARSEC blackscholes (pthread version, 'native'-scale input).

Prices a batch of European options with the closed-form Black–Scholes
formula.  Inputs are read-only and outputs are partitioned per thread, so
the application is *scale-ready*: the paper reports BLK scaling linearly
in its initial two-line port.  The optimized variant page-aligns the
per-thread output slices (the only cross-thread pages in the program),
a marginal win.
"""

from __future__ import annotations

from math import sqrt
from typing import Generator, Optional

import numpy as np

from repro.apps import workloads
from repro.apps.common import (
    AdaptationInfo,
    AppResult,
    check_variant,
    fresh_process,
    plan_nodes,
    run_workers,
    workload_seed,
)
from repro.params import SimParams
from repro.runtime.array import DistArray, alloc_array

#: pricing one option (log, sqrt, two erf evaluations)
CPU_US_PER_OPTION = 0.8
CHUNK = 8192
FIELDS = ("spot", "strike", "rate", "volatility", "maturity")

ADAPTATION = AdaptationInfo(
    multithread_impl="pthread",
    initial_loc=2,
    optimized_loc=6,
    notes="1 line each for forward/backward migration; optimization "
    "page-aligns the per-thread output slices",
)


def _erf(x: np.ndarray) -> np.ndarray:
    from scipy.special import erf

    return erf(x)


def _price_arrays(
    s: np.ndarray,
    k: np.ndarray,
    r: np.ndarray,
    v: np.ndarray,
    t: np.ndarray,
    is_call: np.ndarray,
) -> np.ndarray:
    d1 = (np.log(s / k) + (r + v * v / 2.0) * t) / (v * np.sqrt(t))
    d2 = d1 - v * np.sqrt(t)
    cnd1 = 0.5 * (1.0 + _erf(d1 / sqrt(2.0)))
    cnd2 = 0.5 * (1.0 + _erf(d2 / sqrt(2.0)))
    call = s * cnd1 - k * np.exp(-r * t) * cnd2
    put = call - s + k * np.exp(-r * t)
    return np.where(is_call, call, put)


def _price(batch: workloads.OptionBatch, lo: int, hi: int) -> np.ndarray:
    return _price_arrays(
        batch.spot[lo:hi],
        batch.strike[lo:hi],
        batch.rate[lo:hi],
        batch.volatility[lo:hi],
        batch.maturity[lo:hi],
        batch.is_call[lo:hi],
    )


def reference(n_options: int, seed: int = 13) -> np.ndarray:
    batch = workloads.option_batch(n_options, seed)
    return _price(batch, 0, n_options)


def run(
    num_nodes: int = 1,
    variant: str = "initial",
    threads_per_node: int = 8,
    n_options: int = 400_000,
    params: Optional[SimParams] = None,
    tracer=None,
    seed: Optional[int] = None,
) -> AppResult:
    """Run BLK; output is the option price vector."""
    check_variant(variant)
    seed = workload_seed(params, 13) if seed is None else seed
    cluster, proc, alloc = fresh_process(num_nodes, params)
    if tracer is not None:
        proc.attach_tracer(tracer)
    nodes = plan_nodes(cluster, num_nodes)
    num_threads = threads_per_node * num_nodes
    migrate = variant != "unmodified"
    optimized = variant == "optimized"

    batch = workloads.option_batch(n_options, seed)
    expected = _price(batch, 0, n_options)

    inputs = {
        name: alloc_array(alloc, np.float64, n_options, name=name,
                          page_aligned=True)
        for name in FIELDS
    }
    flags = alloc_array(alloc, np.uint8, n_options, name="is_call",
                        page_aligned=True)
    part = (n_options + num_threads - 1) // num_threads
    if optimized:
        outputs = [
            alloc_array(alloc, np.float64, min(part, n_options - i * part),
                        name=f"out{i}", page_aligned=True)
            for i in range(num_threads)
            if i * part < n_options
        ]
    else:
        # one contiguous output vector: adjacent threads share the pages
        # at their partition boundaries
        whole = alloc_array(alloc, np.float64, n_options, name="out")
        outputs = [
            DistArray(whole.addr + i * part * 8, np.float64,
                      min(part, n_options - i * part), name=f"out{i}")
            for i in range(num_threads)
            if i * part < n_options
        ]

    def body(ctx, wid: int) -> Generator:
        lo = wid * part
        hi = min(lo + part, n_options)
        if lo >= hi:
            return
        pos = lo
        while pos < hi:
            take = min(CHUNK, hi - pos)
            # the prices are computed from what the DSM actually delivers
            values = {}
            for name in FIELDS:
                values[name] = yield from inputs[name].read(
                    ctx, pos, pos + take, site="blk:inputs"
                )
            raw_flags = yield from ctx.read(flags.addr + pos, take,
                                            site="blk:inputs")
            is_call = np.frombuffer(raw_flags, dtype=np.uint8).astype(bool)
            yield from ctx.compute(
                cpu_us=take * CPU_US_PER_OPTION, mem_bytes=take * 48
            )
            prices = _price_arrays(
                values["spot"], values["strike"], values["rate"],
                values["volatility"], values["maturity"], is_call,
            )
            yield from outputs[wid].write(ctx, pos - lo, prices,
                                          site="blk:output")
            pos += take

    def setup(ctx) -> Generator:
        for name in FIELDS:
            yield from inputs[name].write(ctx, 0, getattr(batch, name))
        yield from ctx.write(flags.addr,
                             batch.is_call.astype(np.uint8).tobytes())

    cluster.simulate(setup, proc)
    elapsed = run_workers(cluster, proc, body, num_threads, nodes, migrate)

    def collect(ctx) -> Generator:
        parts = []
        for out in outputs:
            data = yield from out.read(ctx)
            parts.append(data)
        return np.concatenate(parts)

    output = cluster.simulate(collect, proc)
    return AppResult(
        app="BLK",
        variant=variant,
        num_nodes=num_nodes,
        num_threads=num_threads,
        elapsed_us=elapsed,
        output=output,
        stats=proc.stats,
        correct=bool(np.allclose(output, expected)),
    )
