"""CLI: ``python -m repro.bench <experiment>``.

Experiments: table1, table2, figure2, figure3, pagefault, ablation, all.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APP_NAMES
from repro.bench import experiments, reporting


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables and figures of the DeX paper.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "figure2", "figure3", "pagefault",
                 "ablation", "perf", "all"],
    )
    parser.add_argument(
        "--apps", nargs="*", default=list(APP_NAMES),
        help="apps for figure2 (default: all eight)",
    )
    parser.add_argument(
        "--nodes", nargs="*", type=int, default=[1, 2, 4, 8],
        help="node counts for figure2",
    )
    parser.add_argument(
        "--scale", choices=["small", "paper"], default="small",
        help="workload scale: 'small' runs in seconds, 'paper' uses the "
        "full scaled-down defaults",
    )
    parser.add_argument(
        "--directory", choices=["origin", "sharded"], default=None,
        help="coherence-directory backend for figure2 (default: the "
        "paper's origin-resident directory)",
    )
    perf_group = parser.add_argument_group("perf", "options for 'perf'")
    perf_group.add_argument(
        "--quick", action="store_true",
        help="scaled-down point set (CI): writes BENCH_PR.json and guards "
        "the wall-clock trend against the committed BENCH_engine.json",
    )
    perf_group.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_engine.json, or BENCH_PR.json "
        "with --quick)",
    )
    perf_group.add_argument(
        "--baseline", default=None,
        help="baseline BENCH json to guard against (default with --quick: "
        "BENCH_engine.json when present)",
    )
    perf_group.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed wall-clock regression before the guard fails "
        "(default 0.25 = 25%%)",
    )
    perf_group.add_argument(
        "--repeats", type=int, default=None,
        help="best-of-N repetitions per point (default 3, 2 with --quick)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "perf":
        from repro.bench.perf import perf_main

        return perf_main(args)
    todo = (
        ["table1", "table2", "figure3", "pagefault", "figure2", "ablation"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in todo:
        if name == "table1":
            print(reporting.render_table1(experiments.table1()))
        elif name == "table2":
            print(reporting.render_table2(experiments.migration_microbench()))
        elif name == "figure3":
            print(reporting.render_figure3(experiments.migration_microbench()))
        elif name == "pagefault":
            print(reporting.render_pagefault(experiments.pagefault_micro()))
        elif name == "figure2":
            points = experiments.figure2(
                apps=args.apps, node_counts=args.nodes, scale=args.scale,
                directory=args.directory,
            )
            print(reporting.render_figure2(points))
        elif name == "ablation":
            print(reporting.render_ablation(
                "Ablation: leader-follower fault coalescing (§III-C)",
                experiments.ablation_coalescing(),
            ))
            print(reporting.render_ablation(
                "Ablation: page-data transfer path (§III-E)",
                experiments.ablation_transfer_mode(),
            ))
            print(reporting.render_ablation(
                "Ablation: data-transfer skip for up-to-date copies (§III-B)",
                experiments.ablation_transfer_skip(),
            ))
            print(reporting.render_ablation(
                "Ablation: coherence-directory placement "
                "(origin-resident vs sharded home-node)",
                experiments.ablation_directory(),
            ))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
