"""CLI: ``python -m repro.bench <experiment>``.

Experiments: table1, table2, figure2, figure3, pagefault, ablation, all.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APP_NAMES
from repro.bench import experiments, reporting


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables and figures of the DeX paper.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "figure2", "figure3", "pagefault",
                 "ablation", "all"],
    )
    parser.add_argument(
        "--apps", nargs="*", default=list(APP_NAMES),
        help="apps for figure2 (default: all eight)",
    )
    parser.add_argument(
        "--nodes", nargs="*", type=int, default=[1, 2, 4, 8],
        help="node counts for figure2",
    )
    parser.add_argument(
        "--scale", choices=["small", "paper"], default="small",
        help="workload scale: 'small' runs in seconds, 'paper' uses the "
        "full scaled-down defaults",
    )
    parser.add_argument(
        "--directory", choices=["origin", "sharded"], default=None,
        help="coherence-directory backend for figure2 (default: the "
        "paper's origin-resident directory)",
    )
    args = parser.parse_args(argv)
    todo = (
        ["table1", "table2", "figure3", "pagefault", "figure2", "ablation"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in todo:
        if name == "table1":
            print(reporting.render_table1(experiments.table1()))
        elif name == "table2":
            print(reporting.render_table2(experiments.migration_microbench()))
        elif name == "figure3":
            print(reporting.render_figure3(experiments.migration_microbench()))
        elif name == "pagefault":
            print(reporting.render_pagefault(experiments.pagefault_micro()))
        elif name == "figure2":
            points = experiments.figure2(
                apps=args.apps, node_counts=args.nodes, scale=args.scale,
                directory=args.directory,
            )
            print(reporting.render_figure2(points))
        elif name == "ablation":
            print(reporting.render_ablation(
                "Ablation: leader-follower fault coalescing (§III-C)",
                experiments.ablation_coalescing(),
            ))
            print(reporting.render_ablation(
                "Ablation: page-data transfer path (§III-E)",
                experiments.ablation_transfer_mode(),
            ))
            print(reporting.render_ablation(
                "Ablation: data-transfer skip for up-to-date copies (§III-B)",
                experiments.ablation_transfer_skip(),
            ))
            print(reporting.render_ablation(
                "Ablation: coherence-directory placement "
                "(origin-resident vs sharded home-node)",
                experiments.ablation_directory(),
            ))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
