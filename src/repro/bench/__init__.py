"""The experiment harness: regenerates every table and figure of §V.

* :func:`repro.bench.experiments.table1` — adaptation complexity (Table I)
* :func:`repro.bench.experiments.figure2` — application scalability sweep
* :func:`repro.bench.experiments.table2` — migration latencies (Table II)
* :func:`repro.bench.experiments.figure3` — migration breakdown (Fig. 3)
* :func:`repro.bench.experiments.pagefault_micro` — the bimodal
  fault-latency microbenchmark of §V-D
* :func:`repro.bench.experiments.ablation_*` — design-choice ablations

``python -m repro.bench <experiment>`` prints the paper-style report.
"""

from repro.bench.runner import SCALE_PRESETS, ScalingPoint, run_point, run_scaling

__all__ = ["SCALE_PRESETS", "ScalingPoint", "run_point", "run_scaling"]
