"""Run (app, variant, node-count) points and normalize like Figure 2.

Two workload scales are provided: ``small`` finishes a full sweep in
seconds (CI-friendly), ``paper`` uses each app's default (scaled-down but
contention-faithful) workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps import get_app
from repro.apps.common import AppResult
from repro.params import SimParams

#: per-app workload overrides for the fast scale
SCALE_PRESETS: Dict[str, Dict[str, Dict]] = {
    # sizes chosen as the smallest that keep each app's Figure 2 shape:
    # below them, fixed costs (migration, barriers, cold page transfer)
    # swamp the effects the figure is about
    "small": {
        "GRP": {"text_size": 2 * 1024 * 1024},
        "KMN": {"n_points": 80_000, "max_iters": 2},
        "BT": {"grid_cells": 262_144, "iters": 2},
        "EP": {"n_pairs": 480_000},
        "FT": {"rows": 256, "cols": 256, "iters": 1},
        "BLK": {"n_options": 160_000},
        "BFS": {"n_vertices": 16_384, "n_edges": 60_000},
        "BP": {"n_vertices": 65_536, "n_edges": 1_000_000, "iters": 2},
    },
    "paper": {name: {} for name in
              ("GRP", "KMN", "BT", "EP", "FT", "BLK", "BFS", "BP")},
}


@dataclass
class ScalingPoint:
    """One point of the Figure 2 sweep."""

    app: str
    variant: str
    num_nodes: int
    elapsed_us: float
    normalized: float  # vs. the unmodified 1-node run, higher is better
    correct: bool
    faults: int
    retries: int
    #: mean latency over every recorded fault (leaders and followers)
    mean_fault_us: float = 0.0
    #: owner-hint cache hit rate (None when no resolution ran: single
    #: node, or the origin directory backend)
    hint_hit_rate: Optional[float] = None


def _mean_fault_us(result: AppResult) -> float:
    records = result.stats.fault_latencies
    if not records:
        return 0.0
    return sum(r.latency_us for r in records) / len(records)


def run_point(app: str, variant: str, num_nodes: int, scale: str = "small",
              directory: Optional[str] = None, **overrides) -> AppResult:
    """One application run.  *directory* selects the coherence-directory
    backend ("origin" | "sharded") without hand-building SimParams; an
    explicit ``params=`` override wins."""
    module = get_app(app)
    kwargs = dict(SCALE_PRESETS[scale].get(app.upper(), {}))
    kwargs.update(overrides)
    if directory is not None and "params" not in kwargs:
        kwargs["params"] = SimParams(directory=directory)
    return module.run(num_nodes=num_nodes, variant=variant, **kwargs)


def _scaling_point(result: AppResult, baseline_us: float) -> ScalingPoint:
    return ScalingPoint(
        app=result.app.upper(),
        variant=result.variant,
        num_nodes=result.num_nodes,
        elapsed_us=result.elapsed_us,
        normalized=baseline_us / result.elapsed_us,
        correct=bool(result.correct),
        faults=result.stats.total_faults,
        retries=result.stats.fault_retries,
        mean_fault_us=_mean_fault_us(result),
        hint_hit_rate=result.stats.hint_hit_rate,
    )


def run_scaling(
    app: str,
    node_counts: Sequence[int] = (1, 2, 4, 8),
    variants: Sequence[str] = ("initial", "optimized"),
    scale: str = "small",
    directory: Optional[str] = None,
    **overrides,
) -> List[ScalingPoint]:
    """The Figure 2 series for one app: every (variant, nodes) point,
    normalized to the unmodified single-node baseline."""
    baseline = run_point(app, "unmodified", 1, scale, directory=directory,
                         **overrides)
    if baseline.correct is False:
        raise AssertionError(f"{app}: baseline run produced a wrong answer")
    points = [_scaling_point(baseline, baseline.elapsed_us)]
    for variant in variants:
        for n in node_counts:
            result = run_point(app, variant, n, scale, directory=directory,
                               **overrides)
            points.append(_scaling_point(result, baseline.elapsed_us))
    return points
