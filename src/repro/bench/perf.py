"""Engine performance trajectory: measure, record, guard (``BENCH_*.json``).

``python -m repro.bench perf`` times the hot-loop engine on a fixed point
set and writes a machine-readable record:

* ``dispatch_storm`` — raw event-dispatch throughput: four processes each
  yielding a long chain of timeouts, nothing else.  This isolates the
  scheduler (heap + fast lane + dispatch) from all model code.
* ``pagefault_micro`` — the §V-D ping-pong microbenchmark, the repo's
  canonical hot loop (atomic add + compute per iteration).
* three Figure-2 application points (``initial`` variant) — end-to-end
  runs where the engine shares the profile with app and protocol code.

Every point records best-of-N wall-clock *and* CPU time (CPU time is far
more stable on shared machines; the CI guard uses wall with a generous
threshold).  Throughput is reported two ways, because the DexSpeed engine
*collapses* dispatches (inline resume, fire-collapse) and therefore runs
fewer engine events for the same simulated work:

* ``events_per_sec`` — dispatches of *this* engine / wall;
* ``workload_events_per_sec`` — the same workload's **pre-refactor**
  dispatch count / wall.  This is the apples-to-apples "event throughput"
  of the fixed workload and the number the trajectory tracks.

``--quick`` measures a scaled-down point set (seconds, CI-friendly) and,
when a baseline file exists, fails if any point's wall-clock regressed
more than ``--max-regression`` (default 25%).

Each run *appends* a timestamped entry to the document's ``trajectory``
list (capped, oldest dropped) rather than overwriting history, so the
output file accumulates a run-over-run performance record;
``python -m repro.obs diff --bench BENCH_engine.json`` trend-checks it.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.experiments import pagefault_micro
from repro.bench.runner import run_point
from repro.sim.engine import Engine

#: pre-refactor (pre-DexSpeed) reference, measured on the commit preceding
#: this engine with the identical harness, workloads, and best-of-3
#: methodology, in one session interleaved with the post-refactor runs
#: (CPython 3.11, Linux x86-64).  ``workload_events`` is that engine's
#: dispatch count for the fixed workload — the denominator both engines'
#: ``workload_events_per_sec`` share.
PRE_REFACTOR_REFERENCE: Dict[str, Dict[str, float]] = {
    "dispatch_storm": {
        "wall_s": 3.13, "cpu_s": 3.13,
        "events": 1_000_000, "events_per_sec": 319_679,
    },
    "pagefault_micro": {
        "wall_s": 9.42, "cpu_s": 9.23,
        "events_dispatched": 2_750_233,
        "workload_events": 2_750_233,
        "workload_events_per_sec": 291_957,
    },
    "KMN-initial-8": {"wall_s": 1.303, "cpu_s": 1.278,
                      "elapsed_us": 20618.727},
    "GRP-initial-8": {"wall_s": 0.470, "cpu_s": 0.465,
                      "elapsed_us": 8921.851},
    "BLK-initial-8": {"wall_s": 0.401, "cpu_s": 0.396,
                      "elapsed_us": 4418.511},
}

#: pre-refactor dispatch counts per workload, for workload_events_per_sec
_WORKLOAD_EVENTS = {
    "pagefault_micro": 2_750_233,
}


def _best_of(fn: Callable[[], object], repeats: int) -> Tuple[float, float, object]:
    """Run *fn* *repeats* times; return (best wall, best cpu, last result)."""
    wall_best = cpu_best = float("inf")
    result = None
    for _ in range(repeats):
        w0 = time.perf_counter()
        c0 = time.process_time()
        result = fn()
        wall = time.perf_counter() - w0
        cpu = time.process_time() - c0
        wall_best = min(wall_best, wall)
        cpu_best = min(cpu_best, cpu)
    return wall_best, cpu_best, result


def measure_dispatch_storm(
    events: int = 1_000_000, procs: int = 4, repeats: int = 3
) -> Dict[str, float]:
    """Pure scheduler throughput: *procs* chains of timeout yields."""
    per_proc = events // procs

    def one_run() -> int:
        engine = Engine(seed=1)

        def chain(n: int = per_proc):
            for _ in range(n):
                yield engine.timeout(0.1)

        for _ in range(procs):
            engine.process(chain())
        engine.run()
        return engine.events_dispatched

    wall, cpu, dispatched = _best_of(one_run, repeats)
    return {
        "events": int(dispatched),
        "wall_s": round(wall, 4),
        "cpu_s": round(cpu, 4),
        "events_per_sec": round(dispatched / wall),
    }


def measure_micro(duration_us: float = 100_000.0, repeats: int = 3) -> Dict[str, float]:
    wall, cpu, report = _best_of(lambda: pagefault_micro(duration_us), repeats)
    point = {
        "wall_s": round(wall, 4),
        "cpu_s": round(cpu, 4),
        "events_dispatched": report.events_dispatched,
        "events_per_sec": round(report.events_dispatched / wall),
        "lost_updates": report.lost_updates,
    }
    workload = _WORKLOAD_EVENTS.get("pagefault_micro")
    if workload is not None and duration_us == 100_000.0:
        point["workload_events"] = workload
        point["workload_events_per_sec"] = round(workload / wall)
    return point


def measure_app(
    app: str, variant: str, num_nodes: int, repeats: int = 3
) -> Dict[str, float]:
    wall, cpu, result = _best_of(
        lambda: run_point(app, variant, num_nodes), repeats
    )
    return {
        "wall_s": round(wall, 4),
        "cpu_s": round(cpu, 4),
        "elapsed_us": round(result.elapsed_us, 3),
        "correct": bool(result.correct),
    }


def run_perf(quick: bool = False, repeats: Optional[int] = None) -> Dict[str, Dict]:
    """Measure one point set; ``quick`` shrinks every workload so the whole
    sweep fits in CI seconds (its numbers only compare against other quick
    runs)."""
    if repeats is None:
        repeats = int(os.environ.get("DEX_BENCH_REPEATS", "2" if quick else "3"))
    points: Dict[str, Dict] = {}
    if quick:
        points["dispatch_storm"] = measure_dispatch_storm(
            events=200_000, repeats=repeats
        )
        points["pagefault_micro"] = measure_micro(
            duration_us=20_000.0, repeats=repeats
        )
        for app in ("KMN", "GRP", "BLK"):
            points[f"{app}-initial-4"] = measure_app(app, "initial", 4, repeats)
    else:
        points["dispatch_storm"] = measure_dispatch_storm(repeats=repeats)
        points["pagefault_micro"] = measure_micro(repeats=repeats)
        for app in ("KMN", "GRP", "BLK"):
            points[f"{app}-initial-8"] = measure_app(app, "initial", 8, repeats)
    return points


def compare(
    current: Dict[str, Dict],
    baseline: Dict[str, Dict],
    max_regression: float = 0.25,
) -> List[str]:
    """Wall-clock trend guard: one line per point that regressed beyond
    *max_regression*; empty when the trend holds."""
    failures = []
    for name, base in baseline.items():
        cur = current.get(name)
        if cur is None or "wall_s" not in base or "wall_s" not in cur:
            continue
        limit = base["wall_s"] * (1.0 + max_regression)
        if cur["wall_s"] > limit:
            failures.append(
                f"{name}: wall {cur['wall_s']:.3f}s exceeds baseline "
                f"{base['wall_s']:.3f}s by more than {max_regression:.0%}"
            )
    return failures


def render(points: Dict[str, Dict], reference: Dict[str, Dict]) -> str:
    """Human-readable trajectory table."""
    lines = [
        f"{'point':<18} {'wall_s':>8} {'cpu_s':>8} {'pre-refactor':>13} {'speedup':>8}"
    ]
    for name, cur in points.items():
        ref = reference.get(name, {})
        ref_wall = ref.get("wall_s")
        speed = f"{ref_wall / cur['wall_s']:.2f}x" if ref_wall else "-"
        lines.append(
            f"{name:<18} {cur['wall_s']:>8.3f} {cur['cpu_s']:>8.3f} "
            f"{ref_wall if ref_wall is not None else '-':>13} {speed:>8}"
        )
    return "\n".join(lines)


#: trajectory entries retained in the bench document (oldest dropped)
TRAJECTORY_CAP = 200


def update_bench_doc(
    existing: Optional[Dict],
    mode: str,
    points: Dict[str, Dict],
    timestamp: float,
) -> Dict:
    """Fold one measured point set into the bench document.

    The latest measurement replaces the top-level ``points`` (so existing
    consumers keep reading the newest numbers), and is *appended* to the
    ``trajectory`` list — the run-over-run history ``repro.obs diff
    --bench`` trend-checks — instead of overwriting it.  History is capped
    at :data:`TRAJECTORY_CAP` entries; pure, so unit tests exercise the
    append/cap behaviour without running a benchmark."""
    doc = dict(existing) if existing else {}
    doc["schema"] = 1
    doc["bench"] = "DexSpeed engine trajectory"
    doc["mode"] = mode
    doc["points"] = points
    entry = {
        "ts": round(float(timestamp), 3),
        "date": time.strftime("%Y-%m-%d %H:%M:%SZ", time.gmtime(timestamp)),
        "mode": mode,
        "points": points,
    }
    trajectory = list(doc.get("trajectory", []))
    trajectory.append(entry)
    doc["trajectory"] = trajectory[-TRAJECTORY_CAP:]
    return doc


def perf_main(args) -> int:
    """Driver for ``python -m repro.bench perf``."""
    points = run_perf(quick=args.quick, repeats=args.repeats)
    mode = "quick" if args.quick else "full"
    out = args.out or ("BENCH_PR.json" if args.quick else "BENCH_engine.json")
    existing: Optional[Dict] = None
    if os.path.exists(out):
        try:
            with open(out) as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = None  # corrupt/legacy file: start a fresh document
    doc = update_bench_doc(existing, mode, points, time.time())
    if not args.quick:
        # a full run also records the quick point set so that later
        # quick (CI) runs have same-workload numbers to compare against
        doc["quick_points"] = run_perf(quick=True, repeats=args.repeats)
        doc["reference"] = {"pre_refactor": PRE_REFACTOR_REFERENCE}
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    print(render(points, PRE_REFACTOR_REFERENCE if not args.quick else {}))
    print(f"\nwrote {out}")
    baseline_path = args.baseline
    if baseline_path is None and args.quick and os.path.exists("BENCH_engine.json"):
        baseline_path = "BENCH_engine.json"
    if baseline_path:
        with open(baseline_path) as fh:
            base_doc = json.load(fh)
        base_points = base_doc.get("quick_points" if args.quick else "points", {})
        if not base_points:
            print(f"baseline {baseline_path} has no comparable point set; skipping guard")
            return 0
        failures = compare(points, base_points, args.max_regression)
        if failures:
            print("\nperformance regression against", baseline_path)
            for line in failures:
                print(" ", line)
            return 1
        print(f"trend guard OK vs {baseline_path} "
              f"(threshold {args.max_regression:.0%})")
    return 0
