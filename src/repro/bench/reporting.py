"""Text rendering of the experiment results, row-for-row with the paper."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.experiments import (
    PAPER_TABLE1,
    FaultReport,
    MigrationReport,
    figure2_summary,
)
from repro.bench.runner import ScalingPoint


def render_table1(rows: List[Dict]) -> str:
    lines = [
        "Table I: complexity to apply DeX to existing applications",
        f"{'App':5s} {'Impl':12s} {'Initial LoC':>12s} {'Optimized LoC':>14s} "
        f"{'Paper (i/o)':>12s}",
    ]
    for row in rows:
        paper = PAPER_TABLE1.get(row["app"], ("?", "?"))
        lines.append(
            f"{row['app']:5s} {row['impl']:12s} {row['initial_loc']:>12d} "
            f"{row['optimized_loc']:>14d} {paper[0]:>6}/{paper[1]}"
        )
    total_i = sum(r["initial_loc"] for r in rows)
    total_o = sum(r["optimized_loc"] for r in rows)
    lines.append(f"total changed LoC: initial={total_i} optimized={total_o} "
                 "(paper: ~110 added initial, 246 modified optimized)")
    return "\n".join(lines)


def render_figure2(points: List[ScalingPoint]) -> str:
    apps = sorted({p.app for p in points})
    node_counts = sorted({p.num_nodes for p in points if p.variant != "unmodified"})
    lines = [
        "Figure 2: scalability (performance normalized to the unmodified",
        "single-node run; >1.0 means faster than one machine)",
        "",
        f"{'App':5s} {'Variant':10s} " + " ".join(f"n={n:<5d}" for n in node_counts)
        + " correct",
    ]
    for app in apps:
        for variant in ("initial", "optimized"):
            series = {
                p.num_nodes: p
                for p in points
                if p.app == app and p.variant == variant
            }
            if not series:
                continue
            cells = " ".join(
                f"{series[n].normalized:6.2f}" if n in series else "     -"
                for n in node_counts
            )
            ok = all(p.correct for p in series.values())
            hint_rates = [
                p.hint_hit_rate for p in series.values()
                if p.hint_hit_rate is not None
            ]
            hints = (
                f"  hint-hit {100 * max(hint_rates):.0f}%" if hint_rates else ""
            )
            lines.append(f"{app:5s} {variant:10s} {cells}   {ok}{hints}")
    summary = figure2_summary(points)
    lines.append("")
    lines.append(
        f"{summary['count_beyond']} of {summary['total_apps']} apps scale "
        f"beyond single-machine performance "
        f"({', '.join(summary['apps_beyond_single_machine'])}); "
        f"peak speedup {summary['peak_speedup']:.2f}x "
        f"(paper: 6 of 8, up to 10.06x); all outputs correct: "
        f"{summary['all_correct']}"
    )
    return "\n".join(lines)


def render_table2(report: MigrationReport) -> str:
    lines = [
        "Table II: migration latency (microseconds)",
        f"{'':16s} {'origin':>8s} {'remote':>8s} {'total':>8s} {'paper total':>12s}",
    ]
    paper = {"1st forward": 812.1, "2nd forward": 236.6, "backward": 24.7}
    for label, sides in (
        ("1st forward", report.first_forward),
        ("2nd forward", report.second_forward),
        ("backward", report.backward),
    ):
        lines.append(
            f"{label:16s} {sides['origin_us']:8.1f} {sides['remote_us']:8.1f} "
            f"{sides['total_us']:8.1f} {paper[label]:12.1f}"
        )
    return "\n".join(lines)


def render_figure3(report: MigrationReport) -> str:
    lines = [
        "Figure 3: breakdown of the migration latency at the remote node",
        "",
        "first migration to a node:",
    ]
    for comp, us in sorted(report.breakdown_first.items(),
                           key=lambda kv: -kv[1]):
        lines.append(f"  {comp:18s} {us:8.1f} us")
    lines.append("  (paper: ~620 us of the first migration is the "
                 "'Remote Worker' setup)")
    lines.append("subsequent migration to the same node:")
    for comp, us in sorted(report.breakdown_second.items(),
                           key=lambda kv: -kv[1]):
        lines.append(f"  {comp:18s} {us:8.1f} us")
    return "\n".join(lines)


def render_pagefault(report: FaultReport) -> str:
    total = max(report.total_faults, 1)
    return "\n".join(
        [
            "§V-D page-fault handling microbenchmark",
            f"faults observed: {report.total_faults} "
            f"(lost updates: {report.lost_updates})",
            f"fast path:  {report.fast_count} faults "
            f"({100 * report.fast_count / total:.1f}%), "
            f"mean {report.fast_mean_us:.1f} us   (paper: 19.3 us, 27.5%)",
            f"contended:  {report.contended_count} faults "
            f"({100 * report.contended_count / total:.1f}%), "
            f"mean {report.contended_mean_us:.1f} us  (paper: 158.8 us)",
            f"bimodal ratio: {report.bimodal_ratio:.1f}x (paper: 8.2x)",
            f"messaging-layer 4KB page retrieval: "
            f"{report.page_retrieval_us:.1f} us (paper: 13.6 us)",
        ]
    )


def _fmt_metric(value: float) -> str:
    # ratios (hit rates, load shares) need decimals; big counts do not
    return f"{value:.3f}" if -10.0 < value < 10.0 else f"{value:.1f}"


def render_ablation(title: str, data: Dict) -> str:
    lines = [title]
    for key, value in data.items():
        if isinstance(value, dict):
            detail = " ".join(f"{k}={_fmt_metric(v)}" for k, v in value.items())
            lines.append(f"  {key:16s} {detail}")
        else:
            lines.append(f"  {key:16s} {value:12.1f} us")
    return "\n".join(lines)
