"""Drivers for every table and figure of the paper's evaluation (§V)."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import DexCluster, SimParams
from repro.apps import APP_NAMES, get_app
from repro.bench.runner import ScalingPoint, run_point, run_scaling
from repro.runtime import MemoryAllocator


# ---------------------------------------------------------------------------
# Table I — adaptation complexity
# ---------------------------------------------------------------------------

#: the paper's Table I numbers (total changed LoC: initial, optimized)
PAPER_TABLE1 = {
    "GRP": (2, 18), "KMN": (2, 26), "BT": (38, 61), "EP": (2, 4),
    "FT": (20, 44), "BLK": (2, 6), "BFS": (11, 38), "BP": (12, 42),
}


def table1() -> List[Dict]:
    """Adaptation-complexity rows from each app's recorded metadata."""
    rows = []
    for name in APP_NAMES:
        info = get_app(name).ADAPTATION
        rows.append(
            {
                "app": name,
                "impl": info.multithread_impl
                + (f" ({info.regions})" if info.regions else ""),
                "initial_loc": info.initial_loc,
                "optimized_loc": info.optimized_loc,
                "notes": info.notes,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 2 — application scalability
# ---------------------------------------------------------------------------


def figure2(
    apps: Sequence[str] = APP_NAMES,
    node_counts: Sequence[int] = (1, 2, 4, 8),
    variants: Sequence[str] = ("initial", "optimized"),
    scale: str = "small",
    directory: Optional[str] = None,
) -> List[ScalingPoint]:
    """The full scalability sweep, optionally under a non-default
    coherence-directory backend."""
    points: List[ScalingPoint] = []
    for app in apps:
        points.extend(run_scaling(app, node_counts, variants, scale,
                                  directory=directory))
    return points


def figure2_summary(points: List[ScalingPoint]) -> Dict[str, object]:
    """The headline claims derived from the sweep: how many of the eight
    apps end above single-machine performance, and the best speedup."""
    best_at_max: Dict[str, float] = {}
    max_nodes = max(p.num_nodes for p in points)
    for p in points:
        if p.num_nodes == max_nodes and p.variant == "optimized":
            best_at_max[p.app] = max(best_at_max.get(p.app, 0.0), p.normalized)
    scaled = sorted(app for app, s in best_at_max.items() if s > 1.0)
    peak = max((p.normalized for p in points), default=0.0)
    return {
        "apps_beyond_single_machine": scaled,
        "count_beyond": len(scaled),
        "total_apps": len(best_at_max),
        "peak_speedup": peak,
        "all_correct": all(p.correct for p in points),
    }


# ---------------------------------------------------------------------------
# Table II + Figure 3 — migration latency & breakdown
# ---------------------------------------------------------------------------


@dataclass
class MigrationReport:
    first_forward: Dict[str, float]
    second_forward: Dict[str, float]
    backward: Dict[str, float]
    breakdown_first: Dict[str, float]   # Figure 3 components (us)
    breakdown_second: Dict[str, float]


def migration_microbench(
    rounds: int = 10, params: Optional[SimParams] = None
) -> MigrationReport:
    """The §V-D migration microbenchmark: migrate one thread back and
    forth; report per-side latencies and the remote-side breakdown."""
    cluster = DexCluster(num_nodes=2, params=params)
    proc = cluster.create_process()

    def main(ctx):
        for _ in range(rounds):
            yield from ctx.migrate(1)
            yield from ctx.sleep(1_000_000.0)  # "every second"
            yield from ctx.migrate_back()
            yield from ctx.sleep(1_000_000.0)

    cluster.simulate(main, proc)
    records = proc.stats.migrations
    firsts = [m for m in records if m.kind == "forward" and m.first_on_node]
    seconds = [m for m in records if m.kind == "forward" and not m.first_on_node]
    backs = [m for m in records if m.kind == "backward"]

    def sides(ms):
        return {
            "origin_us": statistics.mean(m.origin_us for m in ms),
            "remote_us": statistics.mean(m.remote_us for m in ms),
            "total_us": statistics.mean(m.total_us for m in ms),
        }

    return MigrationReport(
        first_forward=sides(firsts),
        second_forward=sides(seconds),
        backward=sides(backs),
        breakdown_first=dict(firsts[0].components),
        breakdown_second=dict(seconds[0].components),
    )


# ---------------------------------------------------------------------------
# §V-D — page-fault handling microbenchmark
# ---------------------------------------------------------------------------


@dataclass
class FaultReport:
    total_faults: int
    fast_count: int
    fast_mean_us: float
    contended_count: int
    contended_mean_us: float
    page_retrieval_us: float  # messaging-layer 4KB fetch (paper: 13.6us)
    lost_updates: int         # must be zero
    #: engine dispatches of the hammer cluster (perf trajectory input;
    #: not part of the behavioural digest)
    events_dispatched: int = 0

    @property
    def bimodal_ratio(self) -> float:
        if self.fast_mean_us <= 0:
            return 0.0
        return self.contended_mean_us / self.fast_mean_us


def pagefault_micro(
    duration_us: float = 100_000.0, params: Optional[SimParams] = None
) -> FaultReport:
    """Two threads on two nodes ping-ponging one global variable (§V-D)."""
    cluster = DexCluster(num_nodes=2, params=params)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    var = alloc.alloc_global(8, tag="shared_var")

    def hammer(ctx, dest):
        count = 0
        if dest is not None:
            yield from ctx.migrate(dest)
        while ctx.now < duration_us:
            yield from ctx.atomic_add_i64(var, 1, site="hammer")
            yield from ctx.compute(cpu_us=0.1)
            count += 1
        return count

    t1 = proc.spawn_thread(hammer, None)
    t2 = proc.spawn_thread(hammer, 1)

    def main(ctx):
        counts = yield from proc.join_all([t1, t2])
        value = yield from ctx.read_i64(var)
        return counts, value

    counts, value = cluster.simulate(main, proc)
    recs = [r for r in proc.stats.fault_latencies if not r.coalesced]
    fast = [r.latency_us for r in recs if r.retries == 0]
    slow = [r.latency_us for r in recs if r.retries > 0]
    # messaging-layer page retrieval: one cold remote 4KB fetch
    cluster2 = DexCluster(num_nodes=2, params=params)
    proc2 = cluster2.create_process()

    def fetch(ctx):
        yield from ctx.migrate(1)
        # warm the VMA replica so the measured fault is pure page fetch
        yield from ctx.read(0x1000_0000 + 8192, 8)
        start = ctx.now
        yield from ctx.read(0x1000_0000, 8)
        return ctx.now - start

    fetch_latency = cluster2.simulate(fetch, proc2)
    # strip the fault-handling side costs, leaving the messaging layer's
    # request + 4KB RDMA delivery (what the paper's 13.6us measures)
    trap_side = (
        cluster2.params.fault_trap_cost
        + cluster2.params.fault_coalesce_lookup_cost
        + cluster2.params.page_alloc_cost
        + cluster2.params.pte_update_cost
        + cluster2.params.protocol_handler_cost
    )
    return FaultReport(
        total_faults=len(recs),
        fast_count=len(fast),
        fast_mean_us=statistics.mean(fast) if fast else 0.0,
        contended_count=len(slow),
        contended_mean_us=statistics.mean(slow) if slow else 0.0,
        page_retrieval_us=fetch_latency - trap_side,
        lost_updates=sum(counts) - value,
        events_dispatched=cluster.engine.events_dispatched,
    )


# ---------------------------------------------------------------------------
# Ablations — design choices §III calls out
# ---------------------------------------------------------------------------


def ablation_coalescing(app: str = "KMN", num_nodes: int = 4,
                        scale: str = "small") -> Dict[str, Dict[str, float]]:
    """Leader–follower fault coalescing (§III-C) on vs off."""
    out = {}
    for label, enabled in (("coalescing_on", True), ("coalescing_off", False)):
        result = run_point(app, "initial", num_nodes, scale,
                           params=SimParams(enable_fault_coalescing=enabled))
        out[label] = {
            "elapsed_us": result.elapsed_us,
            "faults": float(result.stats.total_faults),
            "coalesced": float(result.stats.faults_coalesced),
            "retries": float(result.stats.fault_retries),
            "correct": float(bool(result.correct)),
        }
    return out


def ablation_transfer_mode(app: str = "GRP", num_nodes: int = 4,
                           scale: str = "small") -> Dict[str, float]:
    """Page-data path (§III-E): the RDMA-sink hybrid vs verb-only vs
    per-page region registration."""
    out = {}
    for mode in ("rdma_sink", "verb", "rdma_register"):
        result = run_point(app, "optimized", num_nodes, scale,
                           params=SimParams(page_transfer_mode=mode))
        assert result.correct, f"{app} wrong under transfer mode {mode}"
        out[mode] = result.elapsed_us
    return out


def ablation_transfer_skip(app: str = "KMN", num_nodes: int = 4,
                           scale: str = "small") -> Dict[str, Dict[str, float]]:
    """Skipping data transfer for up-to-date copies (§III-B) on vs off."""
    out = {}
    for label, enabled in (("skip_on", True), ("skip_off", False)):
        result = run_point(app, "optimized", num_nodes, scale,
                           params=SimParams(enable_transfer_skip=enabled))
        out[label] = {
            "elapsed_us": result.elapsed_us,
            "pages_transferred": float(result.stats.pages_transferred),
            "transfers_skipped": float(result.stats.transfers_skipped),
            "correct": float(bool(result.correct)),
        }
    return out


def ablation_directory(app: str = "KMN", num_nodes: int = 8,
                       scale: str = "small") -> Dict[str, Dict[str, float]]:
    """Coherence-directory placement: the paper's origin-resident
    directory vs the sharded home-node directory.

    The fault-heavy *initial* variants hammer the directory, so this is
    where decongesting the origin shows: the sharded backend spreads
    metadata service (and the page flush/grant data traffic that follows
    it) across home nodes, lowering the mean fault-handling latency."""
    out = {}
    for backend in ("origin", "sharded"):
        result = run_point(app, "initial", num_nodes, scale,
                           params=SimParams(directory=backend))
        assert result.correct, f"{app} wrong under directory={backend}"
        stats = result.stats
        records = stats.fault_latencies
        mean_fault = (
            sum(r.latency_us for r in records) / len(records) if records else 0.0
        )
        requests = stats.directory_requests
        total_requests = sum(requests.values()) or 1
        row = {
            "elapsed_us": result.elapsed_us,
            "mean_fault_us": mean_fault,
            "faults": float(stats.total_faults),
            "retries": float(stats.fault_retries),
            # share of directory requests the origin node served: 1.0 by
            # construction for the origin backend, <1 once shards spread
            "origin_dir_share": requests.get(0, 0) / total_requests,
        }
        if stats.hint_hit_rate is not None:
            row["hint_hit_rate"] = stats.hint_hit_rate
        out[backend] = row
    return out
