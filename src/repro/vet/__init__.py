"""DexVet: whole-program static analysis for the coherence protocol.

One parse of the package feeds four cooperating passes:

1. **loader** — AST per module, parse failures as violations;
2. **call graph** — name-based over-approximation of who calls whom;
3. **effect inference** — blocking (generator) vs pure, propagated to a
   fixed point through ``return f(...)`` wrappers;
4. **message graph** — per ``MsgType`` member: send sites, registered
   handlers, and request↔reply pairing via reachability.

Rules (the seven ported per-file lint rules plus seven whole-program
protocol rules) run off the shared :class:`~repro.vet.rules.VetContext`.
Entry point: ``python -m repro.vet`` — see :mod:`repro.vet.cli`.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.vet.callgraph import CallGraph
from repro.vet.effects import infer_effects
from repro.vet.loader import load_paths, package_root, repo_root
from repro.vet.msggraph import MessageGraph, ModuleScan
from repro.vet.rules import REGISTRY, VetContext, Violation, run_rules
from repro.vet import legacy as _legacy  # registers the seven ported rules
from repro.vet.legacy import LEGACY_RULES

#: the whole-program rules that need the shared graph/effect passes
GRAPH_RULES = (
    "handler-totality",
    "orphan-message-type",
    "reply-pairing",
    "dropped-wait",
    "inject-coverage",
    "chaos-reachability",
    "lens-sink-discipline",
    "metric-discipline",
    "serve-discipline",
)

#: every selectable rule, in report order
ALL_RULES = tuple(REGISTRY)


def build_context(
    paths: Sequence[Path], repo_mode: bool = False
) -> VetContext:
    """Parse *paths* once and run every shared analysis pass."""
    modules, failures = load_paths(paths)
    scans = [ModuleScan(m) for m in modules]
    callgraph = CallGraph(modules)
    effects = infer_effects(callgraph)
    graph = MessageGraph(scans, callgraph)
    return VetContext(
        modules=modules,
        failures=failures,
        scans=scans,
        callgraph=callgraph,
        effects=effects,
        graph=graph,
        repo_mode=repo_mode,
    )


def vet_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[str]] = None,
    repo_mode: bool = False,
) -> List[Violation]:
    """One-call convenience: build the context and run *rules* over it."""
    return run_rules(build_context(paths, repo_mode=repo_mode), rules)


def vet_repo(
    root: Optional[Path] = None, rules: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Vet the installed ``repro`` package sources with repo exemptions."""
    if root is None:
        root = package_root()
    return vet_paths([root], rules=rules, repo_mode=True)
