"""``python -m repro.vet`` — see :mod:`repro.vet.cli`."""

from __future__ import annotations

import sys

from repro.vet.cli import main

if __name__ == "__main__":
    sys.exit(main())
