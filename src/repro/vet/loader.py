"""AST loading for DexVet.

Parses every Python file under the requested paths once and hands the
trees to the downstream passes (call graph, effect inference, message
graph, rules).  Files that fail to parse become ``parse-error``
violations rather than aborting the run — a half-broken tree must still
be vettable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple


@dataclass
class ParseFailure:
    """A file the loader could not parse."""

    path: str
    line: int
    message: str


class ModuleInfo:
    """One parsed module plus the path bookkeeping every pass needs."""

    __slots__ = ("path", "tree", "rel", "parts")

    def __init__(self, path: Path, tree: ast.Module, rel: str):
        self.path = path
        self.tree = tree
        #: display/graph name: posix path relative to the scan root when
        #: the file lives under one (``core/protocol.py``), else the
        #: path as given
        self.rel = rel
        #: directory parts, used by scoped rules (exemptions, slots scope)
        self.parts = path.parts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ModuleInfo {self.rel}>"


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand *paths* (files or directories) into a sorted file list."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _relative_name(path: Path, roots: Sequence[Path]) -> str:
    resolved = path.resolve()
    for root in roots:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            continue
    return path.name


def load_paths(
    paths: Sequence[Path],
) -> Tuple[List[ModuleInfo], List[ParseFailure]]:
    """Parse every file under *paths*.  Returns ``(modules, failures)``."""
    roots = [p for p in paths if p.is_dir()]
    modules: List[ModuleInfo] = []
    failures: List[ParseFailure] = []
    for path in iter_python_files(paths):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as err:
            failures.append(
                ParseFailure(str(path), err.lineno or 0, str(err.msg))
            )
            continue
        modules.append(ModuleInfo(path, tree, _relative_name(path, roots)))
    return modules, failures


def package_root() -> Path:
    """The installed ``repro`` package directory (the default scan root)."""
    import repro

    return Path(repro.__file__).parent


def repo_root() -> Optional[Path]:
    """The repository checkout containing the package, when the package
    is run from a ``src`` layout (``<repo>/src/repro``); else None."""
    pkg = package_root()
    if pkg.parent.name == "src":
        return pkg.parent.parent
    return None
