"""Baseline suppression for DexVet (``vet-baseline.toml``).

Suppressions live in a checked-in TOML file, never inline — a reviewer
sees every accepted violation in one place, with its reason, in diffs:

.. code-block:: toml

    [[suppress]]
    rule = "dropped-wait"
    path = "core/protocol.py"    # suffix match against the violation path
    line = 123                   # optional: pin to a line
    match = "acquire"            # optional: message substring
    reason = "driven manually by the recovery harness"
    expires = "2026-12-31"       # optional: stops suppressing after this

Semantics under ``--strict`` (the CI mode):

* an entry must carry a non-empty ``reason`` — unexplained suppressions
  are themselves violations;
* an **expired** entry no longer suppresses anything and is reported
  (``baseline-expired``) until it is deleted or re-justified;
* a **stale** entry (matches nothing in this run) is reported
  (``baseline-stale``) — baselines may only shrink silently, never rot.

Parsing prefers the stdlib ``tomllib`` (3.11+) and falls back to a
minimal built-in parser for the subset above, so the CI 3.10 job needs
no third-party TOML package.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.vet.rules import Violation

try:  # Python 3.11+
    import tomllib  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised on the 3.10 CI job
    tomllib = None

DEFAULT_BASELINE_NAME = "vet-baseline.toml"

_KV_RE = re.compile(
    r"""^(?P<key>[A-Za-z_][A-Za-z0-9_-]*)\s*=\s*
        (?:"(?P<str>[^"]*)"|(?P<int>-?\d+))\s*(?:\#.*)?$""",
    re.VERBOSE,
)


def _parse_toml_subset(text: str) -> Dict[str, Any]:
    """Parse the ``[[suppress]]``/``key = value`` subset used above.

    Good enough for the baseline format; anything else raises."""
    out: Dict[str, Any] = {}
    current: Optional[Dict[str, Any]] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            current = {}
            out.setdefault(name, []).append(current)
            continue
        match = _KV_RE.match(line)
        if match is None or current is None:
            raise ValueError(
                f"baseline parse error at line {lineno}: {raw.strip()!r}"
            )
        value: Any = (
            match.group("str") if match.group("str") is not None
            else int(match.group("int"))
        )
        current[match.group("key")] = value
    return out


@dataclass
class Suppression:
    rule: str
    path: str
    reason: str
    line: Optional[int] = None
    match: Optional[str] = None
    expires: Optional[datetime.date] = None
    #: how many violations this entry absorbed in the current run
    hits: int = field(default=0, compare=False)

    def matches(self, violation: Violation) -> bool:
        if violation.rule != self.rule:
            return False
        # suffix match lets the baseline stay stable across checkouts
        vpath = violation.path.replace("\\", "/")
        if not (vpath == self.path or vpath.endswith("/" + self.path)):
            return False
        if self.line is not None and violation.line != self.line:
            return False
        if self.match is not None and self.match not in violation.message:
            return False
        return True

    def expired(self, today: datetime.date) -> bool:
        return self.expires is not None and self.expires < today


class Baseline:
    """A loaded suppression file, with apply/audit semantics."""

    def __init__(self, entries: List[Suppression], path: Optional[Path] = None):
        self.entries = entries
        self.path = path

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        text = path.read_text()
        if tomllib is not None:
            data = tomllib.loads(text)
        else:
            data = _parse_toml_subset(text)
        entries: List[Suppression] = []
        for raw in data.get("suppress", []):
            expires: Optional[datetime.date] = None
            raw_expires = raw.get("expires")
            if raw_expires is not None:
                if isinstance(raw_expires, datetime.date):
                    expires = raw_expires
                else:
                    expires = datetime.date.fromisoformat(str(raw_expires))
            entries.append(Suppression(
                rule=str(raw.get("rule", "")),
                path=str(raw.get("path", "")).replace("\\", "/"),
                reason=str(raw.get("reason", "")),
                line=int(raw["line"]) if "line" in raw else None,
                match=str(raw["match"]) if "match" in raw else None,
                expires=expires,
            ))
        return cls(entries, path=path)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([])

    def apply(
        self,
        violations: List[Violation],
        strict: bool = False,
        today: Optional[datetime.date] = None,
    ) -> Tuple[List[Violation], List[Violation]]:
        """Split *violations* into ``(reported, suppressed)``.

        Under *strict*, baseline hygiene problems (missing reason,
        expired entry, stale entry) are appended to the reported list as
        synthetic ``baseline-*`` violations."""
        if today is None:
            today = datetime.date.today()
        for entry in self.entries:
            entry.hits = 0
        reported: List[Violation] = []
        suppressed: List[Violation] = []
        live = [e for e in self.entries if not e.expired(today)]
        for violation in violations:
            absorbed = None
            for entry in live:
                if entry.matches(violation):
                    absorbed = entry
                    break
            if absorbed is not None:
                absorbed.hits += 1
                suppressed.append(violation)
            else:
                reported.append(violation)
        if strict:
            src = str(self.path) if self.path else DEFAULT_BASELINE_NAME
            for entry in self.entries:
                where = f"{entry.rule} @ {entry.path}"
                if not entry.reason.strip():
                    reported.append(Violation(
                        rule="baseline-unjustified", path=src, line=0,
                        message=f"suppression [{where}] has no reason — "
                                f"every baseline entry must be justified",
                    ))
                if entry.expired(today):
                    reported.append(Violation(
                        rule="baseline-expired", path=src, line=0,
                        message=f"suppression [{where}] expired "
                                f"{entry.expires.isoformat()} — delete it "
                                f"or re-justify with a new date",
                    ))
                elif entry.hits == 0:
                    reported.append(Violation(
                        rule="baseline-stale", path=src, line=0,
                        message=f"suppression [{where}] matches nothing — "
                                f"the violation is gone, delete the entry",
                    ))
        reported.sort(key=lambda v: (v.path, v.line, v.rule))
        return reported, suppressed


def render(violations: List[Violation], reason: str = "TODO: justify") -> str:
    """Render *violations* as a fresh baseline file (``--update-baseline``)."""
    lines = [
        "# DexVet suppression baseline — every entry needs a reason.",
        "# Entries that stop matching become strict-mode errors; prune them.",
    ]
    for v in violations:
        path = v.path.replace("\\", "/")
        # keep the path portable: suffix-match from the package dir down
        marker = "/repro/"
        if marker in path:
            path = path.split(marker, 1)[1]
        lines.extend([
            "",
            "[[suppress]]",
            f'rule = "{v.rule}"',
            f'path = "{path}"',
            f"line = {v.line}",
            f'reason = "{reason}"',
        ])
    return "\n".join(lines) + "\n"
