"""Report rendering for DexVet: text, JSON, and DOT outputs."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.vet.msggraph import MessageGraph
from repro.vet.rules import Violation


def render_text(
    violations: List[Violation],
    suppressed: int = 0,
    checked: Optional[int] = None,
) -> str:
    """The CLI check report: one line per violation plus a summary."""
    lines = [v.format() for v in violations]
    summary = (
        f"{len(violations)} violation(s)"
        if violations else "clean"
    )
    if suppressed:
        summary += f", {suppressed} suppressed by baseline"
    if checked is not None:
        summary += f" ({checked} file(s) checked)"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(
    violations: List[Violation], suppressed: List[Violation]
) -> str:
    def row(v: Violation) -> Dict[str, object]:
        return {"rule": v.rule, "path": v.path, "line": v.line,
                "message": v.message}

    return json.dumps(
        {
            "violations": [row(v) for v in violations],
            "suppressed": [row(v) for v in suppressed],
        },
        indent=2,
    ) + "\n"


def render_graph_text(graph: MessageGraph) -> str:
    """Human-oriented summary of the message graph, one block per type."""
    lines: List[str] = []
    for name in sorted(graph.nodes):
        node = graph.nodes[name]
        kind = "reply" if node.is_reply_type else (
            "request" if node.is_requested else "one-way"
        )
        lines.append(f"MsgType.{name}  [{kind}]")
        for site in sorted(node.send_sites,
                           key=lambda s: (s.module.rel, s.line)):
            tag = " (reply)" if site.is_reply else ""
            lines.append(
                f"  send    {site.via:<8} {site.module.rel}:{site.line}{tag}"
            )
        for fn in sorted(node.handler_fns, key=lambda f: f.qualname):
            lines.append(f"  handle  {fn.qualname}")
        if node.replies:
            lines.append(f"  replies {', '.join(sorted(node.replies))}")
        if not node.send_sites and not node.handler_fns:
            lines.append("  (unwired)")
    return "\n".join(lines) + "\n"


def render_graph_json(graph: MessageGraph) -> str:
    return json.dumps(graph.to_dict(), indent=2, sort_keys=True) + "\n"
