"""The seven per-file lint rules, ported onto the DexVet framework.

These are the PR-2/PR-3/PR-4/PR-6 rules that used to live as a
standalone pass in ``repro.check.lint``; that module is now a thin shim
over this one.  Semantics and messages are unchanged — the rules just
run off the shared :class:`~repro.vet.msggraph.ModuleScan` instead of a
private scan, so one parse feeds both the legacy rules and the
whole-program rules.

Rule rationale lives with each check below; the short version:

* ``unhandled-message-type`` — an enum member nothing handles is dead
  protocol surface.
* ``directory-encapsulation`` — only ``core/directory.py`` may touch the
  directory backends' storage internals.
* ``sim-nondeterminism`` — no wall clocks, OS entropy, or unseeded RNG
  inside simulation code; determinism per seed is load-bearing.
* ``yield-discipline`` — generator processes may only yield waitables.
* ``span-discipline`` — spans close via ``with``; trace ids cross
  processes only through the Message header fields.
* ``slots-discipline`` — engine-core classes declare ``__slots__``.
* ``retry-discipline`` — request-class messages declare a timeout class;
  nobody hand-rolls exponential backoff.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Sequence, Set

from repro.vet.callgraph import dotted_name
from repro.vet.msggraph import ModuleScan, msgtype_member
from repro.vet.rules import rule, Violation, VetContext

#: the seven ported rule names, in the order the old pass reported them
LEGACY_RULES = (
    "unhandled-message-type",
    "directory-encapsulation",
    "sim-nondeterminism",
    "yield-discipline",
    "span-discipline",
    "slots-discipline",
    "retry-discipline",
)

#: attribute names that are directory storage internals
_DIRECTORY_INTERNALS = frozenset({"directory_shard", "shard_map", "_lru"})
#: the one module allowed to touch them
_DIRECTORY_MODULE = "directory.py"

#: fully dotted call suffixes that read wall clocks or OS entropy
_WALL_CLOCK_CALLS = frozenset({
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("os", "urandom"),
    ("uuid", "uuid4"),
})

#: numpy.random constructors that are deterministic when given a seed
_SEEDED_RNG_CTORS = frozenset({"default_rng", "RandomState", "SeedSequence",
                               "Generator", "PCG64", "Philox"})

#: modules exempt from the nondeterminism rule when linting the repo:
#: offline tooling that never runs inside a simulation
_NONDETERMINISM_EXEMPT_PARTS = ("bench", "tools", "check", "vet")

#: packages exempt from the span-discipline rule when linting the repo:
#: the tracing machinery itself builds spans and serializes their ids
_SPAN_EXEMPT_PARTS = ("obs",)

#: dict keys that would smuggle trace context outside the Message fields
_TRACE_ID_KEYS = frozenset({"trace_id", "parent_span", "span_id"})


def nondeterminism_exempt(path: Path) -> bool:
    return any(part in _NONDETERMINISM_EXEMPT_PARTS for part in path.parts)


def span_exempt(path: Path) -> bool:
    return any(part in _SPAN_EXEMPT_PARTS for part in path.parts)


@rule("unhandled-message-type")
def check_unhandled_message_types(ctx: VetContext) -> List[Violation]:
    scans = ctx.scans
    violations: List[Violation] = []
    handled: Set[str] = set()
    for scan in scans:
        handled |= scan.handled_members
        if not scan.defines_msgtype:
            # dict keys in the defining module are metadata tables
            # (CONTROL_SIZES), not dispatch wiring
            handled |= scan.dict_key_members
    for scan in scans:
        for member, line in sorted(scan.msgtype_members.items(),
                                   key=lambda kv: kv[1]):
            if member not in handled:
                violations.append(Violation(
                    rule="unhandled-message-type",
                    path=str(scan.path),
                    line=line,
                    message=(
                        f"MsgType.{member} has no registered handler, "
                        f"routes-dict entry, or make_reply producer — "
                        f"dead protocol surface"
                    ),
                ))
    return violations


@rule("directory-encapsulation")
def check_directory_encapsulation(ctx: VetContext) -> List[Violation]:
    violations: List[Violation] = []
    for scan in ctx.scans:
        if scan.path.name == _DIRECTORY_MODULE:
            continue
        for node in ast.walk(scan.tree):
            if isinstance(node, ast.Attribute) and \
                    node.attr in _DIRECTORY_INTERNALS:
                violations.append(Violation(
                    rule="directory-encapsulation",
                    path=str(scan.path),
                    line=node.lineno,
                    message=(
                        f"access to directory internal '.{node.attr}' "
                        f"outside core/directory.py; go through the "
                        f"CoherenceDirectory interface"
                    ),
                ))
    return violations


def _scan_nondeterminism(scan: ModuleScan) -> List[Violation]:
    violations: List[Violation] = []
    for node in ast.walk(scan.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    violations.append(Violation(
                        rule="sim-nondeterminism",
                        path=str(scan.path), line=node.lineno,
                        message="import of the unseeded 'random' module "
                                "inside sim code",
                    ))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                violations.append(Violation(
                    rule="sim-nondeterminism",
                    path=str(scan.path), line=node.lineno,
                    message="import from the unseeded 'random' module "
                            "inside sim code",
                ))
        elif isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if len(dotted) < 2:
                continue
            suffix = dotted[-2:]
            if suffix in _WALL_CLOCK_CALLS:
                violations.append(Violation(
                    rule="sim-nondeterminism",
                    path=str(scan.path), line=node.lineno,
                    message=f"wall-clock/entropy call "
                            f"'{'.'.join(dotted)}()' inside sim code; use "
                            f"engine time",
                ))
            elif "random" in dotted[:-1]:
                # something.random.<fn>(...): numpy-style RNG access
                fn = dotted[-1]
                if fn not in _SEEDED_RNG_CTORS:
                    violations.append(Violation(
                        rule="sim-nondeterminism",
                        path=str(scan.path), line=node.lineno,
                        message=f"'{'.'.join(dotted)}()' draws from global "
                                f"RNG state; use a seeded default_rng",
                    ))
                elif not node.args and not node.keywords:
                    violations.append(Violation(
                        rule="sim-nondeterminism",
                        path=str(scan.path), line=node.lineno,
                        message=f"'{'.'.join(dotted)}()' without a seed is "
                                f"nondeterministic",
                    ))
            elif dotted[0] == "random":
                violations.append(Violation(
                    rule="sim-nondeterminism",
                    path=str(scan.path), line=node.lineno,
                    message=f"'{'.'.join(dotted)}()' uses the unseeded "
                            f"'random' module inside sim code",
                ))
    return violations


@rule("sim-nondeterminism")
def check_sim_nondeterminism(ctx: VetContext) -> List[Violation]:
    violations: List[Violation] = []
    for scan in ctx.scans:
        if ctx.repo_mode and nondeterminism_exempt(scan.path):
            continue
        violations.extend(_scan_nondeterminism(scan))
    return violations


@rule("yield-discipline")
def check_yield_discipline(ctx: VetContext) -> List[Violation]:
    violations: List[Violation] = []
    for scan in ctx.scans:
        for node in ast.walk(scan.tree):
            if isinstance(node, ast.Yield):
                value = node.value
                if value is None or isinstance(value, ast.Constant):
                    shown = "bare yield" if value is None else \
                        f"yield {value.value!r}"
                    violations.append(Violation(
                        rule="yield-discipline",
                        path=str(scan.path), line=node.lineno,
                        message=f"{shown}: generator processes may only "
                                f"yield waitables (Event/Timeout/Process)",
                    ))
    return violations


def _scan_spans(scan: ModuleScan) -> List[Violation]:
    violations: List[Violation] = []
    # calls that appear as a with-statement item are the sanctioned form
    with_calls: Set[int] = set()
    for node in ast.walk(scan.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    with_calls.add(id(item.context_expr))
    for node in ast.walk(scan.tree):
        if isinstance(node, ast.Call):
            func = node.func
            opens_span = (
                (isinstance(func, ast.Attribute) and func.attr == "span")
                or (isinstance(func, ast.Name) and func.id == "maybe_span")
            )
            if opens_span and id(node) not in with_calls:
                shown = "maybe_span" if isinstance(func, ast.Name) else \
                    f"{'.'.join(dotted_name(func)) or '<expr>.span'}"
                violations.append(Violation(
                    rule="span-discipline",
                    path=str(scan.path), line=node.lineno,
                    message=f"'{shown}(...)' outside a with statement: "
                            f"spans must be closed by their context "
                            f"manager or end_us never stamps",
                ))
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if (
                    isinstance(key, ast.Constant)
                    and key.value in _TRACE_ID_KEYS
                ):
                    violations.append(Violation(
                        rule="span-discipline",
                        path=str(scan.path), line=key.lineno,
                        message=f"dict key {key.value!r}: trace ids cross "
                                f"processes only via the Message "
                                f"trace_id/parent_span fields",
                    ))
    return violations


@rule("span-discipline")
def check_span_discipline(ctx: VetContext) -> List[Violation]:
    violations: List[Violation] = []
    for scan in ctx.scans:
        if ctx.repo_mode and span_exempt(scan.path):
            continue
        violations.extend(_scan_spans(scan))
    return violations


#: base-class names that exempt a class from the slots rule
_SLOTS_EXEMPT_BASES = frozenset({
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
    "BaseException", "Exception", "Warning",
})


def _slots_scope(path: Path) -> bool:
    """Is *path* on an engine-core path the slots rule covers?"""
    parents = path.parts[:-1]
    if "sim" in parents:
        return True
    return path.name == "messages.py" and "net" in parents


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and \
                    stmt.target.id == "__slots__":
                return True
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = dotted_name(deco.func)
        if name and name[-1] == "dataclass":
            for kw in deco.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False


def _slots_exempt_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = dotted_name(base)
        last = name[-1] if name else ""
        if last in _SLOTS_EXEMPT_BASES or last.endswith("Error") or \
                last.endswith("Exception"):
            return True
    return False


@rule("slots-discipline")
def check_slots_discipline(ctx: VetContext) -> List[Violation]:
    violations: List[Violation] = []
    for scan in ctx.scans:
        if not _slots_scope(scan.path):
            continue
        for node in ast.walk(scan.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _slots_exempt_class(node):
                continue
            if not _declares_slots(node):
                violations.append(Violation(
                    rule="slots-discipline",
                    path=str(scan.path),
                    line=node.lineno,
                    message=(
                        f"class {node.name} on an engine-core path "
                        f"declares no __slots__ (use a class-body literal "
                        f"or @dataclass(slots=True)); hot-loop objects "
                        f"must not carry an instance __dict__"
                    ),
                ))
    return violations


#: attribute-call names that put a message on the wire
_SEND_CALL_ATTRS = frozenset({"send", "post", "request"})


def _scan_manual_backoff(scan: ModuleScan) -> List[Violation]:
    """A while-loop that sends *and* scales its own delay (``*=`` or
    ``**``) is a hand-rolled exponential retransmit loop — unless the
    function delegates the arithmetic to the shared ``backoff_delay``
    helper.  Constant-delay loops are fine."""
    violations: List[Violation] = []
    for fn in ast.walk(scan.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        uses_helper = any(
            isinstance(node, ast.Call)
            and (
                (isinstance(node.func, ast.Name)
                 and node.func.id == "backoff_delay")
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "backoff_delay")
            )
            for node in ast.walk(fn)
        )
        if uses_helper:
            continue
        for loop in ast.walk(fn):
            if not isinstance(loop, ast.While):
                continue
            sends = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SEND_CALL_ATTRS
                for node in ast.walk(loop)
            )
            scales = any(
                (isinstance(node, ast.AugAssign)
                 and isinstance(node.op, (ast.Mult, ast.Pow)))
                or (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Pow))
                for node in ast.walk(loop)
            )
            if sends and scales:
                violations.append(Violation(
                    rule="retry-discipline",
                    path=str(scan.path),
                    line=loop.lineno,
                    message=(
                        "retransmit loop scales its own delay: use "
                        "net.retry.backoff_delay (capped exponential, "
                        "bounded attempts) instead of hand-rolled backoff"
                    ),
                ))
    return violations


@rule("retry-discipline")
def check_retry_discipline(ctx: VetContext) -> List[Violation]:
    scans = ctx.scans
    violations: List[Violation] = []
    # part one: every request-class MsgType declares a timeout class.
    # Skipped entirely when no scanned module defines the dict (partial
    # scans of modules that merely *use* the transport would otherwise
    # all fail).
    if any(scan.defines_timeout_classes for scan in scans):
        declared: Set[str] = set()
        for scan in scans:
            declared |= scan.timeout_class_members
        for scan in scans:
            for member, line in scan.requested_members:
                if member not in declared:
                    violations.append(Violation(
                        rule="retry-discipline",
                        path=str(scan.path),
                        line=line,
                        message=(
                            f"MsgType.{member} is awaited via .request() "
                            f"but declares no entry in TIMEOUT_CLASSES — "
                            f"the retransmission loop has no reply "
                            f"deadline for it"
                        ),
                    ))
    # part two: no hand-rolled exponential backoff
    for scan in scans:
        violations.extend(_scan_manual_backoff(scan))
    return violations
