"""DexVet rule framework and the whole-program protocol rules.

A rule is a function from the shared :class:`VetContext` (parsed
modules, call graph, effect table, message graph) to a list of
:class:`Violation`.  Rules register themselves by name; the CLI and the
legacy lint shim both select from the same registry.

The six whole-program rules — none expressible file-at-a-time:

* ``handler-totality`` — every message type that is *sent* somewhere
  must have a handler *registered* somewhere, or dispatch raises on
  delivery.
* ``orphan-message-type`` — a member that is never sent, posted,
  requested, or produced as a reply is dead protocol surface from the
  send side.
* ``reply-pairing`` — a type awaited via ``.request(...)`` must have a
  reply (``make_reply``) reachable from its handlers, or the requester
  waits forever.
* ``dropped-wait`` — effect inference: a call to a blocking (generator)
  function whose result is discarded builds the generator and never
  drives it, so the simulated wait silently does not happen.
* ``inject-coverage`` — cross-node sends must pass through a fabric
  frontend that stamps trace context (``Tracer.inject``); direct
  ``.dispatch(...)`` outside the ``net`` layer bypasses it.
* ``chaos-reachability`` — every message type needs a ``CONTROL_SIZES``
  entry (or fault injection cannot size/target its frames), and
  fabric-internal delivery helpers (``_send_impl``/``_wire``) may not be
  called from outside the fabric, or the chaos hooks are bypassed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.vet.callgraph import CallGraph, FunctionInfo, call_name, iter_own_nodes
from repro.vet.effects import call_effect, BLOCKING
from repro.vet.loader import ModuleInfo, ParseFailure
from repro.vet.msggraph import MessageGraph, ModuleScan


@dataclass
class Violation:
    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class VetContext:
    """Everything the rules share: one parse, one graph, one effect table."""

    __slots__ = (
        "modules", "failures", "scans", "callgraph", "effects",
        "graph", "repo_mode",
    )

    def __init__(
        self,
        modules: List[ModuleInfo],
        failures: List[ParseFailure],
        scans: List[ModuleScan],
        callgraph: CallGraph,
        effects: Dict[FunctionInfo, str],
        graph: MessageGraph,
        repo_mode: bool,
    ):
        self.modules = modules
        self.failures = failures
        self.scans = scans
        self.callgraph = callgraph
        self.effects = effects
        self.graph = graph
        self.repo_mode = repo_mode


RuleFn = Callable[[VetContext], List[Violation]]

#: name -> rule function, in registration order
REGISTRY: Dict[str, RuleFn] = {}


def rule(name: str) -> Callable[[RuleFn], RuleFn]:
    def register(fn: RuleFn) -> RuleFn:
        REGISTRY[name] = fn
        return fn
    return register


def run_rules(
    ctx: VetContext, names: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Run the selected rules (default: all registered) plus parse
    failures, sorted by ``(path, line, rule)``."""
    selected = list(REGISTRY) if names is None else list(names)
    violations: List[Violation] = [
        Violation("parse-error", f.path, f.line, f.message)
        for f in ctx.failures
    ]
    for name in selected:
        try:
            fn = REGISTRY[name]
        except KeyError:
            raise ValueError(f"unknown rule: {name!r}") from None
        violations.extend(fn(ctx))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


# ---------------------------------------------------------------------------
# whole-program rules


@rule("handler-totality")
def _check_handler_totality(ctx: VetContext) -> List[Violation]:
    violations: List[Violation] = []
    for name in sorted(ctx.graph.nodes):
        node = ctx.graph.nodes[name]
        sends = node.one_way_sends
        if sends and not node.handler_regs:
            site = min(sends, key=lambda s: (s.module.rel, s.line))
            violations.append(Violation(
                rule="handler-totality",
                path=str(site.module.path),
                line=site.line,
                message=(
                    f"MsgType.{name} is sent via .{site.via}() but no "
                    f"handler is registered on any Router — delivery "
                    f"raises at dispatch"
                ),
            ))
    return violations


@rule("orphan-message-type")
def _check_orphan_message_types(ctx: VetContext) -> List[Violation]:
    violations: List[Violation] = []
    for name in sorted(ctx.graph.nodes):
        node = ctx.graph.nodes[name]
        if not node.send_sites and not node.is_reply_type:
            violations.append(Violation(
                rule="orphan-message-type",
                path=_defining_path(ctx, node.defined_in),
                line=node.defined_line,
                message=(
                    f"MsgType.{name} is never sent, posted, requested, or "
                    f"produced as a reply — dead protocol surface on the "
                    f"send side (wire it or delete it)"
                ),
            ))
    return violations


def _defining_path(ctx: VetContext, rel: str) -> str:
    for module in ctx.modules:
        if module.rel == rel:
            return str(module.path)
    return rel


@rule("reply-pairing")
def _check_reply_pairing(ctx: VetContext) -> List[Violation]:
    violations: List[Violation] = []
    for name in sorted(ctx.graph.nodes):
        node = ctx.graph.nodes[name]
        if not node.is_requested:
            continue
        if node.replies:
            continue
        site = min(
            (s for s in node.send_sites if s.via == "request"),
            key=lambda s: (s.module.rel, s.line),
        )
        if not node.handler_fns:
            detail = "its registered handler resolves to no known function"
            if not node.handler_regs:
                detail = "it has no registered handler at all"
            message = (
                f"MsgType.{name} is awaited via .request() but {detail} — "
                f"the requester would wait forever"
            )
        else:
            message = (
                f"MsgType.{name} is awaited via .request() but no "
                f"make_reply is reachable from its handlers — the "
                f"requester would wait forever"
            )
        violations.append(Violation(
            rule="reply-pairing",
            path=str(site.module.path),
            line=site.line,
            message=message,
        ))
    return violations


#: call names sanctioned to *consume* a generator: the engine spawners
#: drive it as a process, carry() adopts it for tracing
SPAWNER_NAMES = frozenset({"process", "run_process", "all_of", "any_of", "carry"})


@rule("dropped-wait")
def _check_dropped_wait(ctx: VetContext) -> List[Violation]:
    violations: List[Violation] = []
    for fn in ctx.callgraph.functions:
        own = list(iter_own_nodes(fn.node))
        loads: Set[str] = {
            n.id for n in own
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }
        for node in own:
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                if call_effect(ctx.callgraph, ctx.effects, call) is BLOCKING:
                    name = call_name(call)
                    violations.append(Violation(
                        rule="dropped-wait",
                        path=str(fn.module.path),
                        line=call.lineno,
                        message=(
                            f"call to blocking '{name}(...)' as a bare "
                            f"statement: the generator is built and "
                            f"dropped, the simulated wait never happens — "
                            f"drive it with 'yield from' or spawn it via "
                            f"engine.process(...)"
                        ),
                    ))
            elif isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
                call = node.value
                if call_effect(ctx.callgraph, ctx.effects, call) is BLOCKING:
                    name = call_name(call)
                    violations.append(Violation(
                        rule="dropped-wait",
                        path=str(fn.module.path),
                        line=call.lineno,
                        message=(
                            f"'yield {name}(...)' hands the engine a "
                            f"generator, not a waitable — use "
                            f"'yield from {name}(...)'"
                        ),
                    ))
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                call = node.value
                target = node.targets[0].id
                if (
                    target not in loads
                    and call_effect(ctx.callgraph, ctx.effects, call)
                    is BLOCKING
                ):
                    name = call_name(call)
                    violations.append(Violation(
                        rule="dropped-wait",
                        path=str(fn.module.path),
                        line=call.lineno,
                        message=(
                            f"result of blocking '{name}(...)' bound to "
                            f"'{target}' but never driven — the simulated "
                            f"wait never happens"
                        ),
                    ))
    return violations


@rule("inject-coverage")
def _check_inject_coverage(ctx: VetContext) -> List[Violation]:
    violations: List[Violation] = []
    # (a) direct dispatch outside the net layer bypasses trace stamping
    #     and the chaos delivery hooks
    for scan in ctx.scans:
        if "net" in scan.module.parts:
            continue
        for node in ast.walk(scan.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "dispatch"
            ):
                violations.append(Violation(
                    rule="inject-coverage",
                    path=str(scan.path),
                    line=node.lineno,
                    message=(
                        "direct '.dispatch(...)' outside the net layer "
                        "bypasses Tracer.inject and the chaos delivery "
                        "hooks — go through send/post/request"
                    ),
                ))
    # (b) a fabric frontend (class with both send and _send_impl) must
    #     stamp trace context before handing off
    for scan in ctx.scans:
        for cls in ast.walk(scan.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            defs = {
                stmt.name: stmt for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "send" not in defs or "_send_impl" not in defs:
                continue
            send_def = defs["send"]
            injects = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "inject"
                for node in ast.walk(send_def)
            )
            if not injects:
                violations.append(Violation(
                    rule="inject-coverage",
                    path=str(scan.path),
                    line=send_def.lineno,
                    message=(
                        f"{cls.name}.send has no Tracer.inject call — "
                        f"cross-node messages leave without trace context "
                        f"and spans cannot be stitched across nodes"
                    ),
                ))
    return violations


#: fabric-internal delivery helpers: calling these directly skips the
#: chaos on_send/on_deliver interposition points
_FABRIC_INTERNALS = frozenset({"_send_impl", "_wire", "_wire_impl"})


@rule("chaos-reachability")
def _check_chaos_reachability(ctx: VetContext) -> List[Violation]:
    violations: List[Violation] = []
    # (a) CONTROL_SIZES totality, when the table is in scope
    if any(scan.defines_control_sizes for scan in ctx.scans):
        sized: Set[str] = set()
        for scan in ctx.scans:
            sized |= scan.control_size_members
        for scan in ctx.scans:
            for member, line in sorted(scan.msgtype_members.items(),
                                       key=lambda kv: kv[1]):
                if member not in sized:
                    violations.append(Violation(
                        rule="chaos-reachability",
                        path=str(scan.path),
                        line=line,
                        message=(
                            f"MsgType.{member} has no CONTROL_SIZES entry "
                            f"— the fabric cannot size its frames and "
                            f"fault injection cannot target it"
                        ),
                    ))
    # (b) fabric internals called from outside their defining module
    defining: Dict[str, Set[str]] = {}
    for fn in ctx.callgraph.functions:
        if fn.name in _FABRIC_INTERNALS:
            defining.setdefault(fn.name, set()).add(fn.module.rel)
    if defining:
        for scan in ctx.scans:
            for node in ast.walk(scan.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in defining
                ):
                    continue
                if scan.module.rel in defining[node.func.attr]:
                    continue
                violations.append(Violation(
                    rule="chaos-reachability",
                    path=str(scan.path),
                    line=node.lineno,
                    message=(
                        f"call to fabric-internal "
                        f"'{node.func.attr}(...)' from outside the fabric "
                        f"bypasses the chaos on_send/on_deliver hooks — "
                        f"go through send/post/request"
                    ),
                ))
    return violations

#: the tracer's sink registries; only Tracer.add_sink (obs/tracing.py)
#: may touch them — everything else must go through the hook
_SINK_LISTS = frozenset({"_sinks", "_sink_close", "_sink_msg"})
_LIST_MUTATORS = frozenset({"append", "extend", "insert", "remove", "clear"})


@rule("lens-sink-discipline")
def _check_lens_sink_discipline(ctx: VetContext) -> List[Violation]:
    """DexLens consumers: (a) sinks hook in via Tracer.add_sink only —
    mutating the tracer's sink lists directly skips the pre-bound callback
    registration and the one sanctioned subscription point; (b) critical-
    path phase labels come from the PathPhase enum (repro.obs.export),
    never re-spelled as string literals."""
    violations: List[Violation] = []
    for scan in ctx.scans:
        owns_lists = scan.module.rel.endswith("obs/tracing.py")
        for node in ast.walk(scan.tree):
            if not isinstance(node, (ast.Call, ast.Assign, ast.AugAssign)):
                continue
            # (a) direct mutation of a tracer's sink lists
            if not owns_lists:
                touched: Optional[ast.Attribute] = None
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _LIST_MUTATORS
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr in _SINK_LISTS
                ):
                    touched = node.func.value
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr in _SINK_LISTS
                        ):
                            touched = target
                            break
                if touched is not None:
                    violations.append(Violation(
                        rule="lens-sink-discipline",
                        path=str(scan.path),
                        line=node.lineno,
                        message=(
                            f"direct mutation of tracer sink list "
                            f"'.{touched.attr}' — register online span "
                            f"consumers via Tracer.add_sink(...) only"
                        ),
                    ))
            # (b) phase labels spelled as string literals
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg == "phase"
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                    ):
                        violations.append(Violation(
                            rule="lens-sink-discipline",
                            path=str(scan.path),
                            line=kw.value.lineno,
                            message=(
                                f"critical-path phase label "
                                f"{kw.value.value!r} spelled as a string "
                                f"literal — use the shared PathPhase enum "
                                f"(repro.obs.export), e.g. "
                                f"PathPhase.QUEUE.value"
                            ),
                        ))
    return violations


# -- metric-discipline ---------------------------------------------------------

#: the typed metric constructors of repro.obs.metrics; outside the obs
#: layer they must be reached through MetricsRegistry registration
_METRIC_CTORS = frozenset({"Counter", "Gauge", "Histogram"})
_METRIC_MODULES = frozenset({"repro.obs.metrics", "repro.obs"})
#: attribute names that smell like a hand-rolled metrics store
_STAT_DICT_NAMES = ("stats", "metrics", "counters")


def _is_stat_dict_name(attr: str) -> bool:
    return attr in _STAT_DICT_NAMES or any(
        attr.endswith("_" + name) for name in _STAT_DICT_NAMES
    )


@rule("metric-discipline")
def _check_metric_discipline(ctx: VetContext) -> List[Violation]:
    """Metrics go through a MetricsRegistry, nowhere else.

    Outside the obs layer, (a) constructing ``Counter``/``Gauge``/
    ``Histogram`` directly bypasses the registry's single registration,
    snapshot, and report path (and its kind-collision check); (b) a
    ``self.stats = {}``-style ad-hoc dict in place of registry families
    dodges the typed metrics entirely — per-key bounds, label handling,
    and the manifest/diff export all miss it.  Import-aware: only names
    actually imported from ``repro.obs.metrics`` count, so
    ``collections.Counter`` users stay clean."""
    violations: List[Violation] = []
    for scan in ctx.scans:
        if "obs" in scan.module.parts:
            continue  # the metrics layer itself wires its own internals
        metric_aliases: Dict[str, str] = {}
        module_aliases: Set[str] = set()
        for node in ast.walk(scan.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module in _METRIC_MODULES:
                    for alias in node.names:
                        if alias.name in _METRIC_CTORS:
                            metric_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _METRIC_MODULES and alias.asname:
                        module_aliases.add(alias.asname)
        for node in ast.walk(scan.tree):
            if isinstance(node, ast.Call):
                ctor: Optional[str] = None
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in metric_aliases
                ):
                    ctor = metric_aliases[node.func.id]
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _METRIC_CTORS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in module_aliases
                ):
                    ctor = node.func.attr
                if ctor is not None:
                    violations.append(Violation(
                        rule="metric-discipline",
                        path=str(scan.path),
                        line=node.lineno,
                        message=(
                            f"direct {ctor}(...) construction outside the "
                            f"obs layer — register through a "
                            f"MetricsRegistry family "
                            f"(registry.{ctor.lower()}(name, ...)) so the "
                            f"metric shares the snapshot/report path"
                        ),
                    ))
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if not isinstance(value, ast.Dict):
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _is_stat_dict_name(target.attr)
                    ):
                        violations.append(Violation(
                            rule="metric-discipline",
                            path=str(scan.path),
                            line=node.lineno,
                            message=(
                                f"ad-hoc stat dict 'self.{target.attr}' — "
                                f"use MetricsRegistry counter/gauge "
                                f"families instead of a hand-rolled dict "
                                f"(typed, bounded, exported by manifests)"
                            ),
                        ))
    return violations


# -- serve-discipline ----------------------------------------------------------

#: the policy-only mutation surface of repro.serve.queueing.ServeQueue
_SERVE_QUEUE_API = frozenset({"commit_admit", "evict_oldest"})
#: every way the backlog deque can be mutated
_BACKLOG_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "clear",
    "pop", "popleft",
})
#: admission-decision tallies that belong in the metrics registry
_SERVE_DECISION_COUNTS = frozenset({
    "injected", "admitted", "rejected", "throttled", "shed",
})


def _serve_queue_owner(rel: str) -> bool:
    return rel.endswith("serve/queueing.py")


def _serve_policy_layer(rel: str) -> bool:
    return rel.endswith("serve/policy.py") or _serve_queue_owner(rel)


@rule("serve-discipline")
def _check_serve_discipline(ctx: VetContext) -> List[Violation]:
    """DexServe admission control flows through the policy interface and
    its accounting through the metrics registry, nowhere else.

    (a) ``_backlog`` is ServeQueue-private: mutating it from outside
    ``serve/queueing.py`` bypasses the depth high-water mark and the
    one-waiter-per-admit wakeup; (b) ``commit_admit``/``evict_oldest``
    are the policy layer's entry points — a manager or worker calling
    them has made an admission decision outside any policy; (c) an
    :class:`AdmissionDecision` minted outside ``serve/policy.py`` is an
    unaccountable decision (import-aware, so unrelated classes of the
    same name stay clean); (d) tallying decisions on ad-hoc ``self``
    attributes instead of registry counters hides them from the SLO
    report and the scope time-series."""
    violations: List[Violation] = []

    def flag(scan: ModuleScan, line: int, message: str) -> None:
        violations.append(Violation(
            rule="serve-discipline", path=str(scan.path),
            line=line, message=message,
        ))

    for scan in ctx.scans:
        rel = scan.module.rel
        owns_queue = _serve_queue_owner(rel)
        is_policy = _serve_policy_layer(rel)
        mints_decisions = rel.endswith("serve/policy.py")
        serveish = "serve" in scan.module.parts
        decision_aliases: Set[str] = set()
        for node in ast.walk(scan.tree):
            if isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if (
                    mod in ("repro.serve", "repro.serve.policy", "policy")
                    or mod.endswith(".serve")
                    or mod.endswith("serve.policy")
                ):
                    serveish = True
                    for alias in node.names:
                        if alias.name == "AdmissionDecision":
                            decision_aliases.add(alias.asname or alias.name)
        for node in ast.walk(scan.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    not owns_queue
                    and isinstance(func, ast.Attribute)
                    and func.attr in _BACKLOG_MUTATORS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "_backlog"
                ):
                    flag(scan, node.lineno, (
                        f"direct '._backlog.{func.attr}(...)' outside "
                        f"ServeQueue — admit through an AdmissionPolicy "
                        f"(queue.commit_admit is the policy-only surface)"
                    ))
                elif (
                    not is_policy
                    and isinstance(func, ast.Attribute)
                    and func.attr in _SERVE_QUEUE_API
                ):
                    flag(scan, node.lineno, (
                        f"'.{func.attr}(...)' called outside the admission "
                        f"policy layer — route the request through "
                        f"AdmissionPolicy.decide(...) instead"
                    ))
                elif (
                    not mints_decisions
                    and isinstance(func, ast.Name)
                    and func.id in decision_aliases
                ):
                    flag(scan, node.lineno, (
                        "AdmissionDecision minted outside serve/policy.py "
                        "— only policies may decide; return one from an "
                        "AdmissionPolicy.decide(...) override"
                    ))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        not owns_queue
                        and isinstance(target, ast.Attribute)
                        and target.attr == "_backlog"
                    ):
                        flag(scan, node.lineno, (
                            "assignment to '._backlog' outside ServeQueue "
                            "— the backlog deque is queue-private"
                        ))
                    elif (
                        serveish
                        and isinstance(node, ast.AugAssign)
                        and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr in _SERVE_DECISION_COUNTS
                    ):
                        flag(scan, node.lineno, (
                            f"ad-hoc decision tally 'self.{target.attr}' — "
                            f"count admission outcomes through the "
                            f"MetricsRegistry serve_*_total counters so "
                            f"the SLO report and scope series see them"
                        ))
    return violations
