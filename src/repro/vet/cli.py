"""CLI entry point: ``python -m repro.vet [check|graph] [paths...]``.

``check`` (the default) runs every registered rule.  With no paths it
vets the installed ``repro`` package in repo mode (offline-tooling
exemptions apply) and honors the checked-in ``vet-baseline.toml``; with
explicit paths it vets exactly those files with no exemptions and no
baseline unless ``--baseline`` is given.  Exits 1 when anything is
reported.

``graph`` prints the extracted message graph — text by default,
``--dot`` for Graphviz, ``--json`` for the golden-snapshot dict.

Under ``--strict`` (the CI mode) baseline hygiene is enforced too:
entries must be justified, expired entries must be pruned, and entries
that no longer match anything are errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.vet import ALL_RULES, build_context, run_rules
from repro.vet.baseline import Baseline, DEFAULT_BASELINE_NAME, render
from repro.vet.loader import package_root, repo_root
from repro.vet.report import (
    render_graph_json, render_graph_text, render_json, render_text,
)
from repro.vet.rules import Violation


def _default_baseline_path() -> Optional[Path]:
    """The checked-in baseline: ``<repo>/vet-baseline.toml`` when the
    package runs from a src layout, else ``./vet-baseline.toml``."""
    root = repo_root()
    candidates = []
    if root is not None:
        candidates.append(root / DEFAULT_BASELINE_NAME)
    candidates.append(Path.cwd() / DEFAULT_BASELINE_NAME)
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.vet",
        description="DexVet: whole-program message-graph and effect "
                    "analysis for the coherence protocol",
    )
    parser.add_argument(
        "command", nargs="?", default="check", choices=("check", "graph"),
        help="check (default): run the rules; graph: print the message graph",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule subset (default: all)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also enforce baseline hygiene (justified, unexpired, "
             "non-stale entries)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"suppression file (default: the checked-in "
             f"{DEFAULT_BASELINE_NAME} when vetting the repo)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the current violations to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule names",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output",
    )
    parser.add_argument(
        "--dot", action="store_true",
        help="graph command: emit Graphviz DOT",
    )
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="write the report to a file instead of stdout",
    )
    return parser


def _emit(text: str, output: Optional[Path]) -> None:
    if output is None:
        sys.stdout.write(text)
    else:
        output.write_text(text)
        print(f"wrote {output}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for name in ALL_RULES:
            print(name)
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in ALL_RULES]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    repo_scan = not args.paths
    paths = args.paths or [package_root()]
    ctx = build_context(paths, repo_mode=repo_scan)

    if args.command == "graph":
        if args.dot:
            _emit(ctx.graph.to_dot(), args.output)
        elif args.json:
            _emit(render_graph_json(ctx.graph), args.output)
        else:
            _emit(render_graph_text(ctx.graph), args.output)
        return 0

    violations = run_rules(ctx, rules)

    baseline_path = args.baseline
    if baseline_path is None and repo_scan and not args.no_baseline:
        baseline_path = _default_baseline_path()
    if args.update_baseline:
        # Explicit-path runs default to ./vet-baseline.toml: never reach
        # for the repo's checked-in baseline unless vetting the repo (or
        # told to via --baseline).
        default_root = (repo_root() if repo_scan else None) or Path.cwd()
        target = baseline_path or default_root / DEFAULT_BASELINE_NAME
        target.write_text(render(violations))
        print(f"wrote {len(violations)} suppression(s) to {target}")
        return 0

    suppressed: List[Violation] = []
    if baseline_path is not None and not args.no_baseline:
        baseline = Baseline.load(baseline_path)
        violations, suppressed = baseline.apply(
            violations, strict=args.strict
        )

    if args.json:
        _emit(render_json(violations, suppressed), args.output)
    else:
        _emit(
            render_text(violations, suppressed=len(suppressed),
                        checked=len(ctx.modules)),
            args.output,
        )
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
