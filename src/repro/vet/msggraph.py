"""Message-graph extraction: the protocol's wiring, recovered from source.

For every ``MsgType`` member the scan recovers:

* **send sites** — every place a message of that type enters the fabric:
  ``net.send(...)`` / ``net.post(...)`` / ``net.request(...)`` calls whose
  argument is (or is a local binding of) a ``Message(MsgType.X, ...)`` /
  ``obtain_message(MsgType.X, ...)`` / ``msg.make_reply(MsgType.X, ...)``
  construction;
* **handler registrations** — both literal ``router.register(MsgType.X,
  fn)`` calls and routes-dict wiring (``{MsgType.X: lambda p:
  p.svc.handler, ...}``), resolved to function definitions through the
  call graph;
* **reply production** — which functions build a reply of that type with
  ``make_reply``; combined with call-graph reachability from each
  handler this yields the request ↔ reply pairing (``PAGE_REQUEST`` is
  answered by ``PAGE_GRANT`` / ``PAGE_RETRY`` / ``PAGE_REDIRECT``, ...);
* the declared ``TIMEOUT_CLASSES`` retry class and ``CONTROL_SIZES``
  wire size.

The per-module collection (:class:`ModuleScan`) also gathers everything
the ported per-file lint rules need, so the legacy rules and the
whole-program rules share one scan.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.vet.callgraph import (
    CallGraph, FunctionInfo, dotted_name, iter_own_nodes,
)
from repro.vet.loader import ModuleInfo

#: attribute-call names that put a message on the wire
SEND_ATTRS = frozenset({"send", "post", "request"})

#: constructor callables that build a Message of a literal type
_CTOR_NAMES = frozenset({"Message", "obtain_message"})


def msgtype_member(node: ast.AST) -> Optional[str]:
    """The member name when *node* is a ``MsgType.X`` reference."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "MsgType"
    ):
        return node.attr
    return None


def message_ctor_member(node: ast.AST) -> Optional[Tuple[str, bool]]:
    """``(member, is_reply)`` when *node* constructs a message of a
    literal type: ``Message(MsgType.X, ...)``, ``obtain_message(
    MsgType.X, ...)``, or ``msg.make_reply(MsgType.X, ...)``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    first: Optional[ast.expr] = None
    if node.args:
        first = node.args[0]
    else:
        for kw in node.keywords:
            if kw.arg == "msg_type":
                first = kw.value
                break
    if first is None:
        return None
    member = msgtype_member(first)
    if member is None:
        return None
    if isinstance(func, ast.Name) and func.id in _CTOR_NAMES:
        return member, False
    if isinstance(func, ast.Attribute) and func.attr == "make_reply":
        return member, True
    return None


class SendSite:
    """One place a typed message enters the fabric."""

    __slots__ = ("member", "via", "is_reply", "module", "line", "func")

    def __init__(
        self,
        member: str,
        via: str,
        is_reply: bool,
        module: ModuleInfo,
        line: int,
        func: Optional[str],
    ):
        self.member = member
        self.via = via              # "send" | "post" | "request"
        self.is_reply = is_reply    # built with make_reply
        self.module = module
        self.line = line
        self.func = func            # enclosing function qualname, if any

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SendSite {self.member} via {self.via} @{self.module.rel}:{self.line}>"


class HandlerReg:
    """One handler wiring for a message type."""

    __slots__ = ("member", "handler_name", "module", "line", "via")

    def __init__(
        self, member: str, handler_name: str, module: ModuleInfo, line: int, via: str
    ):
        self.member = member
        self.handler_name = handler_name
        self.module = module
        self.line = line
        self.via = via              # "register" | "routes-dict"


class ModuleScan:
    """Everything one parsed module contributes to the analysis."""

    def __init__(self, module: ModuleInfo):
        self.module = module
        self.path = module.path
        self.tree = module.tree
        #: MsgType members defined here: name -> line
        self.msgtype_members: Dict[str, int] = {}
        self.defines_msgtype = False
        #: members referenced in handler positions (register/make_reply)
        self.handled_members: Set[str] = set()
        #: members used as dict-literal keys (only counts as handling
        #: outside the defining module, to ignore size/metadata tables)
        self.dict_key_members: Set[str] = set()
        #: keys of ``TIMEOUT_CLASSES = {...}`` / ``CONTROL_SIZES = {...}``
        self.timeout_class_members: Set[str] = set()
        self.defines_timeout_classes = False
        self.control_size_members: Set[str] = set()
        self.defines_control_sizes = False
        #: member -> declared timeout class string (when literal)
        self.timeout_class_of: Dict[str, str] = {}
        #: MsgType members this module passes to ``.request(...)``:
        #: (member, line), resolved through function-local bindings
        self.requested_members: List[Tuple[str, int]] = []
        #: typed send sites (send/post/request of a constructed message)
        self.send_sites: List[SendSite] = []
        #: handler registrations (literal + routes-dict)
        self.handler_regs: List[HandlerReg] = []
        #: function qualname -> set of reply members it builds
        self.reply_producers: Dict[str, Set[str]] = {}
        self._collect()
        self._collect_functions()

    # -- module-level collection ----------------------------------------

    def _collect(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                target = node.target if isinstance(node, ast.AnnAssign) else (
                    node.targets[0] if len(node.targets) == 1 else None
                )
                if (
                    isinstance(target, ast.Name)
                    and isinstance(node.value, ast.Dict)
                    and target.id in ("TIMEOUT_CLASSES", "CONTROL_SIZES")
                ):
                    members: Set[str] = set()
                    for key, value in zip(node.value.keys, node.value.values):
                        member = msgtype_member(key) if key is not None else None
                        if member is None:
                            continue
                        members.add(member)
                        if (
                            target.id == "TIMEOUT_CLASSES"
                            and isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                        ):
                            self.timeout_class_of[member] = value.value
                    if target.id == "TIMEOUT_CLASSES":
                        self.defines_timeout_classes = True
                        self.timeout_class_members |= members
                    else:
                        self.defines_control_sizes = True
                        self.control_size_members |= members
            if isinstance(node, ast.ClassDef) and node.name == "MsgType":
                self.defines_msgtype = True
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                self.msgtype_members[target.id] = stmt.lineno
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("register", "make_reply")
                    and node.args
                ):
                    member = msgtype_member(node.args[0])
                    if member is not None:
                        self.handled_members.add(member)
                        if func.attr == "register" and len(node.args) >= 2:
                            handler = self._handler_name(node.args[1])
                            if handler is not None:
                                self.handler_regs.append(HandlerReg(
                                    member, handler, self.module,
                                    node.lineno, "register",
                                ))
            elif isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    member = msgtype_member(key) if key is not None else None
                    if member is None:
                        continue
                    self.dict_key_members.add(member)
                    handler = self._handler_name(value)
                    if handler is not None:
                        self.handler_regs.append(HandlerReg(
                            member, handler, self.module,
                            key.lineno, "routes-dict",
                        ))

    @staticmethod
    def _handler_name(node: ast.AST) -> Optional[str]:
        """The bare handler name wired by a register arg or routes-dict
        value: a function reference, attribute path, or a dispatch
        lambda (``lambda p: p.protocol.handle_x``)."""
        if isinstance(node, ast.Lambda):
            node = node.body
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    # -- per-function collection ----------------------------------------

    def _collect_functions(self) -> None:
        self._walk_scope(self.tree, "")

    def _walk_scope(self, node: ast.AST, owner: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = f"{owner}.{child.name}" if owner else child.name
                self._scan_function(child, inner)
                self._walk_scope(child, inner)
            elif isinstance(child, ast.ClassDef):
                inner = f"{owner}.{child.name}" if owner else child.name
                self._walk_scope(child, inner)
            else:
                self._walk_scope(child, owner)

    def _scan_function(self, fn: ast.AST, qual: str) -> None:
        qualname = f"{self.module.rel}::{qual}"
        # own body only: nested defs get their own _scan_function visit,
        # so walking into them here would double-count their send sites
        own = list(iter_own_nodes(fn))
        # function-local `msg = Message(MsgType.X, ...)` bindings
        bindings: Dict[str, Tuple[str, bool]] = {}
        for node in own:
            if isinstance(node, ast.Assign):
                ctor = message_ctor_member(node.value)
                if ctor is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            bindings[target.id] = ctor
        for node in own:
            if not isinstance(node, ast.Call):
                continue
            ctor = message_ctor_member(node)
            if ctor is not None and ctor[1]:
                self.reply_producers.setdefault(qualname, set()).add(ctor[0])
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in SEND_ATTRS
                and node.args
            ):
                continue
            arg = node.args[0]
            resolved = message_ctor_member(arg)
            if resolved is None and isinstance(arg, ast.Name):
                resolved = bindings.get(arg.id)
            if resolved is None:
                continue  # not a typed message send (e.g. generator.send)
            member, is_reply = resolved
            self.send_sites.append(SendSite(
                member, func.attr, is_reply, self.module, node.lineno, qualname,
            ))
            if func.attr == "request":
                self.requested_members.append((member, node.lineno))


class MsgNode:
    """Everything the graph knows about one message type."""

    __slots__ = (
        "name", "defined_in", "defined_line", "send_sites", "handler_regs",
        "handler_fns", "replies", "reply_producer_fns", "timeout_class",
        "has_control_size",
    )

    def __init__(self, name: str, defined_in: str, defined_line: int):
        self.name = name
        self.defined_in = defined_in
        self.defined_line = defined_line
        self.send_sites: List[SendSite] = []
        self.handler_regs: List[HandlerReg] = []
        self.handler_fns: List[FunctionInfo] = []
        #: reply members produced by code reachable from this type's handlers
        self.replies: Set[str] = set()
        #: function qualnames that build this member as a make_reply
        self.reply_producer_fns: Set[str] = set()
        self.timeout_class: Optional[str] = None
        self.has_control_size = False

    @property
    def is_requested(self) -> bool:
        return any(s.via == "request" and not s.is_reply for s in self.send_sites)

    @property
    def is_reply_type(self) -> bool:
        return bool(self.reply_producer_fns)

    @property
    def one_way_sends(self) -> List[SendSite]:
        return [s for s in self.send_sites if not s.is_reply]


class MessageGraph:
    """The whole-program send → handler → reply graph."""

    def __init__(self, scans: List[ModuleScan], callgraph: CallGraph):
        self.nodes: Dict[str, MsgNode] = {}
        self.scans = scans
        for scan in scans:
            for member, line in scan.msgtype_members.items():
                self.nodes[member] = MsgNode(member, scan.module.rel, line)
        known = self.nodes
        for scan in scans:
            for site in scan.send_sites:
                if site.member in known:
                    known[site.member].send_sites.append(site)
            for reg in scan.handler_regs:
                if reg.member in known:
                    known[reg.member].handler_regs.append(reg)
            for qualname, members in scan.reply_producers.items():
                for member in members:
                    if member in known:
                        known[member].reply_producer_fns.add(qualname)
            for member, cls in scan.timeout_class_of.items():
                if member in known:
                    known[member].timeout_class = cls
            for member in scan.control_size_members:
                if member in known:
                    known[member].has_control_size = True
        # resolve handlers and compute the reply closure per request type.
        # The transport layer is opaque to the traversal: the fabric
        # *delivers* messages (and its dynamic dispatch would make every
        # handler reachable from every other), it does not produce
        # protocol replies — its own make_reply (the duplicate-
        # suppression REQUEST_ACK) is transport-internal.
        producers_by_qualname: Dict[str, Set[str]] = {}
        for scan in scans:
            for qualname, members in scan.reply_producers.items():
                producers_by_qualname.setdefault(qualname, set()).update(members)

        def in_net(fn: FunctionInfo) -> bool:
            return "net" in fn.module.parts

        for node in self.nodes.values():
            seen: Set[str] = set()
            for reg in node.handler_regs:
                for fn in callgraph.resolve(reg.handler_name):
                    if fn.qualname in seen:
                        continue
                    seen.add(fn.qualname)
                    node.handler_fns.append(fn)
                    for reached in callgraph.reachable(fn, prune=in_net):
                        node.replies.update(
                            producers_by_qualname.get(reached.qualname, ())
                        )

    # -- exports ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """A stable, diff-friendly summary (the golden-snapshot format).

        Deliberately line-number-free so the snapshot only breaks when
        the *wiring* changes, not when code above it moves."""
        out: Dict[str, Dict[str, object]] = {}
        for name in sorted(self.nodes):
            node = self.nodes[name]
            out[name] = {
                "defined_in": node.defined_in,
                "send_sites": sorted({
                    f"{s.via} {s.func or s.module.rel}"
                    + (" (reply)" if s.is_reply else "")
                    for s in node.send_sites
                }),
                "handlers": sorted(f.qualname for f in node.handler_fns),
                "replies": sorted(node.replies),
                "requested": node.is_requested,
                "reply_type": node.is_reply_type,
                "timeout_class": node.timeout_class,
                "sized": node.has_control_size,
            }
        return out

    def to_dot(self) -> str:
        """Graphviz DOT of the send → handler → reply wiring."""
        lines = [
            "digraph dexvet {",
            "  rankdir=LR;",
            '  node [fontname="Helvetica"];',
        ]
        msg_nodes: Set[str] = set()
        fn_nodes: Set[str] = set()
        edges: Set[str] = set()

        def msg(name: str) -> str:
            ident = f"msg_{name}"
            if name not in msg_nodes:
                msg_nodes.add(name)
                node = self.nodes[name]
                shape = "box" if not node.is_reply_type else "box,style=rounded"
                lines.append(
                    f'  {ident} [label="{name}" shape={shape.split(",")[0]}'
                    + (
                        ' style="rounded,filled" fillcolor="#eef4ff"'
                        if node.is_reply_type else ' style=filled fillcolor="#fff7e6"'
                    )
                    + "];"
                )
            return ident

        def fn(qualname: str) -> str:
            ident = "fn_" + "".join(
                c if c.isalnum() else "_" for c in qualname
            )
            if qualname not in fn_nodes:
                fn_nodes.add(qualname)
                label = qualname.split("::")[-1]
                lines.append(f'  {ident} [label="{label}" shape=ellipse];')
            return ident

        for name in sorted(self.nodes):
            msg(name)  # every type gets a node, even if unwired
        for name in sorted(self.nodes):
            node = self.nodes[name]
            for site in node.send_sites:
                if site.func and not site.is_reply:
                    edge = f'  {fn(site.func)} -> {msg(name)} [label="{site.via}"];'
                    if edge not in edges:
                        edges.add(edge)
                        lines.append(edge)
            for handler in node.handler_fns:
                edge = f"  {msg(name)} -> {fn(handler.qualname)};"
                if edge not in edges:
                    edges.add(edge)
                    lines.append(edge)
                for reply in sorted(node.replies):
                    if reply not in self.nodes:
                        continue
                    edge = (
                        f"  {fn(handler.qualname)} -> {msg(reply)}"
                        ' [style=dashed label="reply"];'
                    )
                    if edge not in edges:
                        edges.add(edge)
                        lines.append(edge)
        lines.append("}")
        return "\n".join(lines) + "\n"
