"""Effect inference: which functions *block* (suspend in simulated time)?

The simulator is generator-based: a blocking operation is a generator
function whose yields hand waitables to the engine.  Calling one does
nothing by itself — it builds a generator object; the wait only happens
when that object is driven (``yield from`` it, or spawn it as a process).
The classic silently-dropped-wait bug is calling a blocking function as
a statement: the generator is created, never iterated, and the simulated
work it models simply does not happen.  No test fails loudly — time is
just wrong.

The lattice has two points per function:

* ``BLOCKING`` — the function is a generator (lexically yields), or
  every return path hands back a call to a blocking function
  (``def fwd(m): return self._send(m)`` is as blocking as ``_send``).
  The caller must consume the result through the engine.
* ``PURE`` — anything else: ordinary code, or engine plumbing that
  returns :class:`~repro.sim.engine.Event` objects for a plain ``yield``.

Propagation runs to a fixed point over the name-based call graph.  To
keep the downstream rule free of false positives, a *call site* is only
considered blocking when **every** scanned definition its name can
resolve to is blocking — mixed name collisions (e.g. ``acquire`` naming
both a generator pool method and an event-returning resource method)
are skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.vet.callgraph import (
    UBIQUITOUS_METHODS, CallGraph, FunctionInfo, call_name,
)

PURE = "pure"
BLOCKING = "blocking"


def infer_effects(graph: CallGraph) -> Dict[FunctionInfo, str]:
    """Classify every scanned function as ``BLOCKING`` or ``PURE``."""
    effects: Dict[FunctionInfo, str] = {
        fn: BLOCKING if fn.is_generator else PURE for fn in graph.functions
    }
    # fixed point: effect flows through `return f(...)` wrappers
    changed = True
    while changed:
        changed = False
        for fn in graph.functions:
            if effects[fn] is BLOCKING:
                continue
            for name in fn.return_call_names:
                candidates = graph.resolve(name)
                if candidates and all(
                    effects[c] is BLOCKING for c in candidates
                ):
                    effects[fn] = BLOCKING
                    changed = True
                    break
    return effects


def call_effect(
    graph: CallGraph, effects: Dict[FunctionInfo, str], call: ast.Call
) -> Optional[str]:
    """The effect of *call*, or None when unresolvable/ambiguous.

    Returns ``BLOCKING`` only when every candidate definition is
    blocking; returns ``PURE`` when every candidate is pure; returns
    None for unknown names and mixed candidate sets."""
    name = call_name(call)
    if name is None:
        return None
    if isinstance(call.func, ast.Attribute) and name in UBIQUITOUS_METHODS:
        return None
    candidates = graph.resolve(name)
    if not candidates:
        return None
    kinds = {effects[c] for c in candidates}
    if len(kinds) == 1:
        return kinds.pop()
    return None


def blocking_candidates(
    graph: CallGraph, effects: Dict[FunctionInfo, str], call: ast.Call
) -> List[FunctionInfo]:
    """The (all-blocking) candidate set of *call*, or ``[]``."""
    if call_effect(graph, effects, call) is not BLOCKING:
        return []
    return graph.resolve_call(call)
