"""Whole-program call graph over the scanned modules.

Python's dynamism means a sound points-to analysis is out of reach for a
linter; DexVet uses the classic *name-based* approximation (class
hierarchy analysis without the hierarchy): a call ``x.f(...)`` may reach
any function or method named ``f`` in the scanned code.  That is
imprecise but safely over-approximates reachability — good enough for
reply-pairing closure — and the effect rules sharpen it by only firing
when *every* candidate agrees (see :mod:`repro.vet.effects`).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.vet.loader import ModuleInfo

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: method names shared with builtin containers/files (``set.add``,
#: ``list.append``, ``dict.get``, ...).  The name-based call graph
#: cannot see builtin types, so an attribute call to one of these names
#: almost always targets a builtin object, not a same-named scanned def
#: (e.g. ``DexArray.add``).  Such calls contribute no call-graph edges
#: and have unknown effect — the cost is missing analysis through such a
#: method, the benefit is zero false edges from idiomatic container code.
UBIQUITOUS_METHODS = frozenset({
    "add", "append", "appendleft", "extend", "insert", "remove",
    "discard", "pop", "popleft", "popitem", "clear", "update", "sort",
    "reverse", "setdefault", "get", "write", "read", "close", "flush",
    "join", "split", "strip", "format", "items", "keys", "values",
    "copy",
})


def dotted_name(node: ast.AST) -> Tuple[str, ...]:
    """The attribute chain of *node* as a name tuple, e.g.
    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def call_name(call: ast.Call) -> Optional[str]:
    """The bare callee name of *call* (attribute tail or plain name)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def iter_own_nodes(fn: ast.AST) -> Iterable[ast.AST]:
    """Walk *fn*'s body without descending into nested function/class
    definitions (their yields and calls belong to the inner scope)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(fn: ast.AST) -> bool:
    for node in iter_own_nodes(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


class FunctionInfo:
    """One function or method definition."""

    __slots__ = (
        "name", "qualname", "module", "node", "lineno",
        "is_generator", "called_names", "return_call_names",
    )

    def __init__(self, module: ModuleInfo, node: ast.AST, owner: str):
        self.module = module
        self.node = node
        self.name = node.name
        self.qualname = (
            f"{module.rel}::{owner}.{node.name}" if owner
            else f"{module.rel}::{node.name}"
        )
        self.lineno = node.lineno
        self.is_generator = _is_generator(node)
        #: bare names of every call in this function's own body
        self.called_names: Set[str] = set()
        #: bare names called directly in a ``return f(...)`` statement —
        #: the function hands its caller whatever f produces, so effects
        #: propagate through it (``def post(m): return engine.process(...)``)
        self.return_call_names: Set[str] = set()
        def edge_name(call: ast.Call) -> Optional[str]:
            name = call_name(call)
            if name is None:
                return None
            if isinstance(call.func, ast.Attribute) and \
                    name in UBIQUITOUS_METHODS:
                return None
            return name

        for sub in iter_own_nodes(node):
            if isinstance(sub, ast.Call):
                name = edge_name(sub)
                if name is not None:
                    self.called_names.add(name)
            elif isinstance(sub, ast.Return) and isinstance(sub.value, ast.Call):
                name = edge_name(sub.value)
                if name is not None:
                    self.return_call_names.add(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "gen" if self.is_generator else "fn"
        return f"<{tag} {self.qualname}>"


class CallGraph:
    """Name-indexed function registry with reachability queries."""

    def __init__(self, modules: List[ModuleInfo]):
        self.functions: List[FunctionInfo] = []
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        for module in modules:
            self._collect(module)
        for fn in self.functions:
            self.by_name.setdefault(fn.name, []).append(fn)

    def _collect(self, module: ModuleInfo) -> None:
        def visit(node: ast.AST, owner: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _FUNC_NODES):
                    self.functions.append(FunctionInfo(module, child, owner))
                    # nested defs are indexed too (closures can block)
                    inner = f"{owner}.{child.name}" if owner else child.name
                    visit(child, inner)
                elif isinstance(child, ast.ClassDef):
                    inner = f"{owner}.{child.name}" if owner else child.name
                    visit(child, inner)
                else:
                    visit(child, owner)

        visit(module.tree, "")

    # -- queries -----------------------------------------------------------

    def resolve(self, name: str) -> List[FunctionInfo]:
        """Every scanned definition a call to *name* may reach."""
        return self.by_name.get(name, [])

    def resolve_call(self, call: ast.Call) -> List[FunctionInfo]:
        name = call_name(call)
        if name is None:
            return []
        return self.resolve(name)

    def callees(self, fn: FunctionInfo) -> Set[FunctionInfo]:
        out: Set[FunctionInfo] = set()
        for name in fn.called_names:
            out.update(self.by_name.get(name, ()))
        return out

    def reachable(
        self,
        fn: FunctionInfo,
        prune: Optional[Callable[[FunctionInfo], bool]] = None,
    ) -> Set[FunctionInfo]:
        """Transitive closure of :meth:`callees` from *fn* (inclusive).

        *prune* stops the traversal at matching functions: they are not
        entered and nothing is reached *through* them.  The message
        graph uses this to treat the transport layer as opaque."""
        seen: Set[FunctionInfo] = {fn}
        frontier = [fn]
        while frontier:
            current = frontier.pop()
            for callee in self.callees(current):
                if callee in seen:
                    continue
                if prune is not None and prune(callee):
                    continue
                seen.add(callee)
                frontier.append(callee)
        return seen
