"""Every latency and bandwidth constant of the simulated rack, in one place.

The defaults model the paper's testbed (§V): eight nodes with 8-core Xeon
Silver 4110 processors, 48 GB RAM each, connected by 56 Gbps InfiniBand
(ConnectX-4 + SX6012 switch).  Times are **microseconds**, bandwidths are
**bytes per microsecond** (1 byte/us = 1 MB/s).

Constants marked *calibrated* were tuned so that the microbenchmarks of
§V-D land near the paper's measurements:

* retrieving a 4 KB page through the messaging layer: **13.6 us**
* fast-path page-fault handling: **19.3 us**
* contended fault handling with retry: **~158.8 us**
* first forward migration: **812.1 us** (12.1 origin + 800.0 remote, of
  which ~620 us is remote-worker setup); second forward: **236.6 us**;
  backward: **~24.7 us**.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass
class SimParams:
    """Tunable model of the rack; pass to :class:`repro.core.DexCluster`."""

    # ---- node hardware --------------------------------------------------
    cores_per_node: int = 8
    #: sustained per-node DRAM bandwidth (bytes/us); ~12 GB/s per socket
    dram_bandwidth: float = 12_000.0
    #: last-level cache per node (Xeon Silver 4110: 11 MB)
    llc_bytes: int = 11 * MB
    #: DRAM throughput degradation: aggregate capacity multiplier once more
    #: than `dram_knee` streams are active (row-buffer conflicts under many
    #: random-access streams).  1.0 disables the effect.
    dram_contention_factor: float = 0.85
    dram_knee: int = 4

    # ---- interconnect (InfiniBand RC, §III-E) ---------------------------
    #: 56 Gbps link = 7 GB/s = 7000 bytes/us
    link_bandwidth: float = 7_000.0
    #: one-way propagation + switch latency for any message
    wire_latency: float = 2.0
    #: CPU cost to post a send work request to a pre-mapped buffer
    verb_send_overhead: float = 0.8
    #: CPU cost to reap a completion and dispatch the handler
    verb_recv_overhead: float = 1.0
    #: DMA-mapping a buffer that is NOT from a pre-registered pool (the
    #: cost the send/receive buffer pools exist to avoid)
    dma_map_cost: float = 4.0
    #: posting an RDMA write (buffer already in a registered region)
    rdma_post_cost: float = 1.5
    #: RDMA completion-path cost at the requester
    rdma_completion_cost: float = 1.5
    #: registering a fresh RDMA memory region (the cost the RDMA sink
    #: avoids; used by the per-page-registration ablation)
    rdma_register_cost: float = 25.0
    #: local memcpy bandwidth (sink -> final frame), ~20 GB/s
    memcpy_bandwidth: float = 20_000.0
    #: chunks per connection in each buffer pool
    send_pool_chunks: int = 64
    recv_pool_chunks: int = 64
    rdma_sink_chunks: int = 32
    #: payload bytes per pool chunk (control messages are tens of bytes)
    pool_chunk_bytes: int = 256
    #: bytes per RDMA sink slot (one page)
    rdma_sink_slot_bytes: int = 4096

    # ---- virtual memory subsystem ---------------------------------------
    page_size: int = 4096
    #: hardware trap + kernel fault-path entry
    fault_trap_cost: float = 2.0
    #: taking the PTE spinlock + writing the PTE
    pte_update_cost: float = 1.0
    #: allocating a physical page at the remote
    page_alloc_cost: float = 0.8
    #: origin-side ownership lookup/update in the radix tree (calibrated)
    protocol_handler_cost: float = 2.5
    #: applying an ownership-revocation (invalidation) at an owner node
    invalidation_handler_cost: float = 0.8
    #: back-off before retrying a fault that lost an ownership race
    #: (calibrated so contended faults average ~158.8us, ~8x the fast path)
    fault_retry_backoff: float = 130.0
    #: consulting the per-process hash table of in-flight faults
    fault_coalesce_lookup_cost: float = 0.4

    # ---- thread migration (§III-A, calibrated to Table II / Fig. 3) -----
    #: collecting pt_regs + mm state at the source of a migration
    context_collect_cost: float = 6.6
    #: origin-side per-process bookkeeping, first migration only
    origin_process_setup_cost: float = 5.5
    #: origin-side cost for subsequent migrations
    origin_resume_cost: float = 0.0
    #: creating the per-process remote worker + address-space skeleton at a
    #: node seeing this process for the first time (dominates 1st migration)
    remote_worker_setup_cost: float = 620.0
    #: waking the sleeping remote worker to service a later migration (the
    #: first migration creates worker and thread together, so skips this)
    worker_wake_cost: float = 50.0
    #: forking a remote thread from the remote worker (CLONE_THREAD)
    remote_thread_fork_cost: float = 130.0
    #: installing the received execution context into the new thread
    remote_context_restore_cost: float = 38.0
    #: run-queue enqueue + first dispatch of the new thread
    remote_sched_cost: float = 12.0
    #: backward migration: updating the original thread's context
    backward_update_cost: float = 14.5

    # ---- work delegation & futex (§III-A) --------------------------------
    #: waking the sleeping original thread and dispatching a request
    delegation_dispatch_cost: float = 1.0
    #: one futex_wait/futex_wake operation executed at the origin
    futex_op_cost: float = 0.6
    #: VMA lookup / update at either side of on-demand VMA sync
    vma_op_cost: float = 0.7

    # ---- coherence-directory layer (see repro.core.directory) -----------
    #: metadata placement backend: "origin" (the paper's §III-B design,
    #: every page's home is the origin) or "sharded" (home-node directory,
    #: VPNs hash across per-node shards)
    directory: str = "origin"
    #: number of shards for the sharded backend; None = smallest prime
    #: above the node count (a power-of-two count resonates with the
    #: power-of-two-aligned segment bases and pins hot pages to node 0)
    directory_shards: Optional[int] = None
    #: capacity of each node's owner-hint LRU (vpn -> last-known home)
    owner_hint_capacity: int = 1024
    #: origin-side shard-map lookup answering a PAGE_HOME_LOOKUP
    home_lookup_cost: float = 1.2

    # ---- correctness checking (see repro.check) --------------------------
    #: dynamic-checker selection: "" off, "race" (coherence sanitizer),
    #: "deadlock" (wait-for detector), "1"/"all" for both.  None defers to
    #: the DEX_SANITIZE environment variable (how CI turns it on without
    #: touching every SimParams construction).
    sanitize: Optional[str] = None

    # ---- fault injection & recovery (see repro.chaos) --------------------
    #: chaos selection: "" off, "1"/"on" on (empty scenario unless
    #: `chaos_scenario` is set), or a path to a scenario JSON file.  None
    #: defers to the DEX_CHAOS environment variable; when off no controller
    #: exists, the transport keeps its untimed request path, and sim time
    #: is bit-identical to a build without the subsystem
    chaos: Optional[str] = None
    #: programmatic scenario (a repro.chaos.ChaosScenario); takes precedence
    #: over a scenario file named by `chaos`
    chaos_scenario: Optional[object] = field(default=None, repr=False, compare=False)
    #: master seed for the engine-owned RNG.  None keeps each app's
    #: calibrated default workload seed; setting it pins every stochastic
    #: choice (chaos schedules, workload init) to one number
    seed: Optional[int] = None
    #: reply timeout before the first retransmission, per message class
    #: (see repro.net.messages.TIMEOUT_CLASSES): "ctl" covers small
    #: control round-trips, "data" covers replies that may carry a page or
    #: wait out an in-flight install, "heavy" covers migration/delegation
    retry_timeout_ctl_us: float = 80.0
    retry_timeout_data_us: float = 400.0
    retry_timeout_heavy_us: float = 2_500.0
    #: consecutive unanswered retransmissions before the peer is declared
    #: unreachable (a duplicate-ack from a live peer resets the count)
    retry_max_attempts: int = 6
    #: ceiling of the exponential retransmission backoff
    retry_backoff_cap_us: float = 5_000.0
    #: remote worker -> origin keepalive period
    lease_interval_us: float = 150.0
    #: renewal silence after which the origin declares a node failed
    lease_timeout_us: float = 600.0
    #: origin-side failure-detector polling period
    lease_check_us: float = 150.0

    # ---- observability (see repro.obs) -----------------------------------
    #: causal span tracing: "" off, "1"/"spans" on.  None defers to the
    #: DEX_TRACE environment variable (same scheme as `sanitize`); when off
    #: no tracer exists and instrumented paths reduce to a None check
    trace: Optional[str] = None
    #: span-recording cap per tracer; further spans are counted as dropped
    trace_max_spans: int = 1_000_000

    # ---- online analytics (see repro.obs.lens — DexLens) ------------------
    #: streaming trace analytics: "" off, "1"/"on" on.  None defers to the
    #: DEX_LENS environment variable.  Turning the lens on implies a tracer
    #: (it subscribes to span closes); with it off no lens object exists and
    #: nothing beyond the tracer's empty sink list is ever touched
    lens: Optional[str] = None
    #: sliding sim-time window for the heat statistics (fault rate, owner
    #: churn, ping-pong pairs), and its slice count (decay granularity)
    lens_window_us: float = 5_000.0
    lens_window_slices: int = 8
    #: memory cap per heat statistic: beyond this many live keys, the
    #: coldest keys are evicted (counted, never silent)
    lens_max_keys: int = 4096
    #: completed span trees the critical-path extractor may hold open at
    #: once; older incomplete trees are evicted FIFO
    lens_max_traces: int = 256
    #: flight-recorder ring capacities, per node (closed spans / messages)
    lens_ring_spans: int = 4096
    lens_ring_msgs: int = 2048
    #: crash-dump path for the flight recorder ("" disables auto-dump;
    #: None means the default ./dex-flightrec.json)
    lens_dump_path: Optional[str] = None

    # ---- time-series telemetry (see repro.obs.scope — DexScope) -----------
    #: periodic utilization sampling: "" off, "1"/"on" on.  None defers to
    #: the DEX_SCOPE environment variable.  When off no sampler exists and
    #: the engine's only obligation is one float compare against +inf per
    #: dispatch; instrumented fabric paths guard on `net.scope is None`
    scope: Optional[str] = None
    #: sim-time between utilization samples (the grid the sampler fires on)
    scope_interval_us: float = 500.0
    #: stored points per time series; on overflow adjacent points merge and
    #: the accept stride doubles, so a fixed buffer covers the whole run
    scope_series_points: int = 512
    #: hard cap on distinct series keys (per-link series scale O(nodes^2))
    scope_max_series: int = 4096

    # ---- feature switches (for ablations) ---------------------------------
    #: leader-follower coalescing of concurrent same-page faults (§III-C)
    enable_fault_coalescing: bool = True
    #: skip page-data transfer when the requester holds an up-to-date copy
    enable_transfer_skip: bool = True
    #: page-data transfer mode: "rdma_sink" (the paper's hybrid), "verb"
    #: (send 4KB through the verb path), or "rdma_register" (register a
    #: region per page -- the strawman §III-E rules out)
    page_transfer_mode: str = "rdma_sink"

    #: optional override for DRAM contention; maps active streams -> bytes/us
    dram_contention: Optional[Callable[[int], float]] = field(
        default=None, repr=False, compare=False
    )

    def dram_contention_model(self) -> Callable[[int], float]:
        """Effective aggregate DRAM capacity as a function of active streams."""
        if self.dram_contention is not None:
            return self.dram_contention
        cap, knee, factor = self.dram_bandwidth, self.dram_knee, self.dram_contention_factor

        def model(n: int) -> float:
            if n <= knee or factor >= 1.0:
                return cap
            # geometric decay per extra stream beyond the knee, floored
            return max(cap * (factor ** (n - knee)), cap * 0.4)

        return model

    def copy(self, **overrides) -> "SimParams":
        """A modified copy; keyword names are field names."""
        return replace(self, **overrides)


DEFAULT_PARAMS = SimParams()
