"""DexCheck: correctness tooling for the DeX reproduction.

Three cooperating parts (see DESIGN.md §"Checking"):

* :mod:`repro.check.sanitizer` — a dynamic happens-before **coherence
  sanitizer** built on vector clocks.  Protocol messages (grants,
  invalidations, home lookups/redirects) establish ordering edges; every
  shared-page access is checked against the last conflicting access, and
  the directory/PTE invariants are re-validated on every ownership
  transition instead of only at test teardown.
* :mod:`repro.check.waitfor` — an online **wait-for deadlock detector**
  covering futex waits, work-delegation round-trips, and leader-follower
  fault coalescing.
* :mod:`repro.check.lint` — a repo-specific AST **lint pass**, runnable
  as ``python -m repro.check --lint``.

The dynamic checkers are enabled per process by ``SimParams.sanitize``
or, when that is left at ``None``, by the ``DEX_SANITIZE`` environment
variable: ``1``/``all`` turns both on, ``race`` and ``deadlock`` select
one.  When disabled (the default) no checker objects exist and every
instrumentation site is a single attribute-is-None test.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Tuple

from repro.check.sanitizer import CoherenceSanitizer, CoherenceViolation
from repro.check.waitfor import DeadlockDetector, DeadlockError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess

__all__ = [
    "CoherenceSanitizer",
    "CoherenceViolation",
    "DeadlockDetector",
    "DeadlockError",
    "make_sanitizers",
    "resolve_sanitize_mode",
]

_OFF = frozenset({"", "0", "off", "none", "false", "no"})
_BOTH = frozenset({"1", "all", "on", "true", "yes"})


def resolve_sanitize_mode(setting: Optional[str]) -> str:
    """Normalize a ``SimParams.sanitize`` setting to one of ``""`` (off),
    ``"race"``, ``"deadlock"``, or ``"all"``.  ``None`` defers to the
    ``DEX_SANITIZE`` environment variable."""
    if setting is None:
        setting = os.environ.get("DEX_SANITIZE", "")
    mode = str(setting).strip().lower()
    if mode in _OFF:
        return ""
    if mode in _BOTH:
        return "all"
    if mode in ("race", "deadlock"):
        return mode
    raise ValueError(
        f"unknown sanitize mode {setting!r}; expected one of "
        "'', '1'/'all', 'race', 'deadlock'"
    )


def make_sanitizers(
    proc: "DexProcess",
) -> Tuple[Optional[CoherenceSanitizer], Optional[DeadlockDetector]]:
    """The (race sanitizer, deadlock detector) pair for *proc*, either of
    which is None when its mode is not enabled."""
    mode = resolve_sanitize_mode(proc.cluster.params.sanitize)
    races = CoherenceSanitizer(proc) if mode in ("all", "race") else None
    deadlocks = DeadlockDetector(proc) if mode in ("all", "deadlock") else None
    return races, deadlocks
