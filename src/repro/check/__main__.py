"""CLI entry point: ``python -m repro.check --lint [paths...]``.

With no paths, lints the installed ``repro`` package (repo mode, with
the offline-tooling exemptions).  With explicit paths, lints exactly
those files/directories with no exemptions — which is what the lint
fixtures in the test suite use.  Exits nonzero when any rule fires.

This entry point is a thin shim: the seven lint rules now live on the
DexVet framework (``repro.vet``), which also runs them — plus the
whole-program message-graph and effect rules — via
``python -m repro.vet`` (see DESIGN.md §11).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.check.lint import RULES, lint_paths, lint_repo


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="DexCheck: repo-specific static lint pass "
                    "(the dynamic sanitizers are enabled at runtime via "
                    "DEX_SANITIZE=1)",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="run the static lint rules (the default action)",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule names",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0

    if args.paths:
        violations = lint_paths(args.paths)
    else:
        violations = lint_repo()
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
