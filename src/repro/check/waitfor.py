"""The wait-for deadlock detector.

Threads block in three places in this codebase: futex waits (via work
delegation at the origin), work-delegation round-trips themselves, and
leader-follower fault coalescing (§III-C followers sleep on the leader's
in-flight fault).  Each blocking site pushes a :class:`BlockFrame` onto
the thread's stack and — when the frame has a known *target* thread —
adds a wait-for edge:

* futex wait  -> the thread currently holding the futex-backed lock
  (registered by :class:`repro.runtime.sync.Mutex` on acquisition);
* follower    -> the leader thread of the coalesced fault;
* delegation  -> no edge (the origin handler is not a thread), but the
  frame appears in the per-thread stacks of a cycle report.

Every thread has at most one outgoing edge (a blocked thread waits on
exactly one thing), so cycle detection is a single chain walk at edge
insertion time — online and O(cycle length).  A cycle raises
:class:`DeadlockError` with the cycle and each member's sim-time stack
of block frames.

An :class:`EngineWaitWatcher` hook on the simulation engine additionally
tracks what every sim process is waiting on, so :meth:`DeadlockDetector.
report` can describe a stuck simulation (used by ``DexCluster.simulate``
when the main thread never finishes) even when no thread-level cycle
exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.errors import DexError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess
    from repro.sim.engine import Engine, Event, Process


class DeadlockError(DexError):
    """A cycle in the wait-for graph: these threads can never make
    progress."""


@dataclass
class BlockFrame:
    """One blocking site a thread is currently inside."""

    tid: int
    kind: str       # "futex" | "follower" | "delegation"
    detail: str     # human-readable operand (address, op name, ...)
    target: Optional[int]  # the thread waited on, when known
    since_us: float
    addr: Optional[int] = None  # futex word address, for futex frames

    def describe(self) -> str:
        waiting = f" -> t{self.target}" if self.target is not None else ""
        return f"{self.kind}({self.detail}){waiting} since {self.since_us:.1f}us"


class EngineWaitWatcher:
    """Engine hook recording what every sim process last waited on, plus
    which buffer pools are currently exhausted (``repro.net.buffers``
    notifies on stall/resume)."""

    def __init__(self) -> None:
        self.waiting: Dict["Process", "Event"] = {}
        #: pool -> sim time the oldest outstanding stall began
        self.stalled_pools: Dict[object, float] = {}
        self._stall_depth: Dict[object, int] = {}

    @classmethod
    def ensure(cls, engine: "Engine") -> "EngineWaitWatcher":
        """The engine's watcher, installing one on first use (processes of
        every DexProcess on the cluster share it)."""
        for hook in engine.hooks:
            if isinstance(hook, cls):
                return hook
        watcher = cls()
        engine.add_hook(watcher)
        return watcher

    def on_process_created(self, process: "Process") -> None:
        pass

    def on_process_waiting(self, process: "Process", event: "Event") -> None:
        self.waiting[process] = event

    def on_process_finished(self, process: "Process") -> None:
        self.waiting.pop(process, None)

    def on_pool_stall(self, pool) -> None:
        depth = self._stall_depth.get(pool, 0)
        if depth == 0:
            self.stalled_pools[pool] = pool.engine.now
        self._stall_depth[pool] = depth + 1

    def on_pool_resume(self, pool) -> None:
        depth = self._stall_depth.get(pool, 0) - 1
        if depth <= 0:
            self._stall_depth.pop(pool, None)
            self.stalled_pools.pop(pool, None)
        else:
            self._stall_depth[pool] = depth

    def pending(self) -> List[str]:
        lines = []
        for process, event in self.waiting.items():
            if process.triggered or process._waiting_on is not event:
                continue
            lines.append(f"{process.name} waiting on {event!r}")
        return lines

    def stalls(self) -> List[str]:
        """Human-readable lines for every pool currently exhausted."""
        lines = []
        for pool, since in self.stalled_pools.items():
            depth = self._stall_depth.get(pool, 0)
            lines.append(
                f"pool {pool.name or '<anonymous>'} exhausted "
                f"({pool.chunks} chunks, {depth} waiter(s)) "
                f"since {since:.1f}us"
            )
        return lines


class DeadlockDetector:
    """Per-process online wait-for-graph cycle detection."""

    def __init__(self, proc: "DexProcess"):
        self.proc = proc
        self._frames: Dict[int, List[BlockFrame]] = {}
        #: futex word address -> tid of the lock holder (maintained by
        #: the runtime Mutex; bare futex users create no edges)
        self._lock_holder: Dict[int, int] = {}
        self.edges_checked = 0
        self.watcher = EngineWaitWatcher.ensure(proc.cluster.engine)

    # -- frame stack management ---------------------------------------------

    def _push(self, frame: BlockFrame) -> None:
        self._frames.setdefault(frame.tid, []).append(frame)
        if frame.target is not None:
            self.edges_checked += 1
            self._check_cycle(frame.tid)

    def _pop(self, tid: int, kind: str) -> None:
        stack = self._frames.get(tid)
        if stack:
            for i in range(len(stack) - 1, -1, -1):
                if stack[i].kind == kind:
                    del stack[i]
                    break
            if not stack:
                del self._frames[tid]

    def _now(self) -> float:
        return self.proc.cluster.engine.now

    # -- blocking-site hooks -------------------------------------------------

    def on_futex_wait(self, tid: int, addr: int) -> None:
        """Thread *tid* is about to sleep on the futex at *addr*; called
        with the word check already done, before the enqueue."""
        target = self._lock_holder.get(addr)
        self._push(BlockFrame(
            tid=tid, kind="futex", detail=f"{addr:#x}",
            target=target, since_us=self._now(), addr=addr,
        ))

    def on_futex_resume(self, tid: int) -> None:
        self._pop(tid, "futex")

    def on_follower_wait(self, tid: int, leader_tid: int, vpn: int) -> None:
        """Thread *tid* coalesced behind *leader_tid*'s in-flight fault."""
        self._push(BlockFrame(
            tid=tid, kind="follower", detail=f"page {vpn:#x}",
            target=leader_tid if leader_tid >= 0 else None,
            since_us=self._now(),
        ))

    def on_follower_resume(self, tid: int) -> None:
        self._pop(tid, "follower")

    def on_delegation_call(self, tid: int, op: str, node: int) -> None:
        """Thread *tid* (at *node*) entered a delegation round-trip."""
        self._push(BlockFrame(
            tid=tid, kind="delegation", detail=f"{op}@node{node}",
            target=None, since_us=self._now(),
        ))

    def on_delegation_return(self, tid: int) -> None:
        self._pop(tid, "delegation")

    def on_thread_dead(self, tid: int) -> None:
        """Thread *tid* died with a fail-stopped node: discard its block
        frames (a dead thread waits on nothing) so they neither feed
        wait-for edges nor clutter the post-mortem."""
        self._frames.pop(tid, None)

    # -- lock ownership (fed by the runtime Mutex) ---------------------------

    def on_lock_acquired(self, addr: int, tid: int) -> None:
        self._lock_holder[addr] = tid

    def on_lock_released(self, addr: int, tid: int) -> None:
        if self._lock_holder.get(addr) == tid:
            del self._lock_holder[addr]

    # -- cycle detection -----------------------------------------------------

    def _blocked_on(self, tid: int) -> Optional[int]:
        """The thread *tid* currently waits on, or None."""
        stack = self._frames.get(tid)
        if not stack:
            return None
        top = stack[-1]
        if top.kind == "futex" and top.addr is not None:
            # resolve through the holder map at walk time: the lock may
            # have changed hands since the frame was pushed
            return self._lock_holder.get(top.addr)
        return top.target

    def _check_cycle(self, start: int) -> None:
        path = [start]
        current = start
        while True:
            nxt = self._blocked_on(current)
            if nxt is None:
                return
            if nxt in path:
                cycle = path[path.index(nxt):]
                raise DeadlockError(self._format_cycle(cycle))
            path.append(nxt)
            current = nxt

    def _format_cycle(self, cycle: List[int]) -> str:
        arrows = " -> ".join(f"t{tid}" for tid in cycle + [cycle[0]])
        lines = [f"wait-for cycle detected at {self._now():.1f}us: {arrows}"]
        for tid in cycle:
            lines.append(f"  t{tid} blocked in:")
            for frame in reversed(self._frames.get(tid, [])):
                lines.append(f"    {frame.describe()}")
        return "\n".join(lines)

    # -- stall reporting -----------------------------------------------------

    def report(self) -> str:
        """All currently blocked threads with their sim-time stacks, plus
        every sim process still parked on an event — the post-mortem for
        a simulation that ended with work left undone."""
        lines = ["wait-for state:"]
        if not self._frames:
            lines.append("  (no thread is inside a tracked blocking site)")
        for tid in sorted(self._frames):
            lines.append(f"  t{tid} blocked in:")
            for frame in reversed(self._frames[tid]):
                lines.append(f"    {frame.describe()}")
        stalls = self.watcher.stalls()
        if stalls:
            lines.append("exhausted buffer pools:")
            for entry in sorted(stalls):
                lines.append(f"  {entry}")
        pending = self.watcher.pending()
        if pending:
            lines.append("pending sim processes:")
            for entry in sorted(pending):
                lines.append(f"  {entry}")
        return "\n".join(lines)
