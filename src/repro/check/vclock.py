"""Vector clocks for the coherence sanitizer.

Clock components are thread ids (every DexThread is one actor).  Clocks
are sparse dicts: a missing component is 0, so page/copy clocks for pages
a thread never touched cost nothing.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class VectorClock:
    """A sparse vector clock over integer actor ids."""

    __slots__ = ("_c",)

    def __init__(self) -> None:
        self._c: Dict[int, int] = {}

    def get(self, actor: int) -> int:
        return self._c.get(actor, 0)

    def tick(self, actor: int) -> int:
        """Advance *actor*'s own component; returns the new value."""
        value = self._c.get(actor, 0) + 1
        self._c[actor] = value
        return value

    def merge(self, other: "VectorClock") -> None:
        """Pointwise maximum (join) with *other*."""
        own = self._c
        for actor, value in other._c.items():
            if value > own.get(actor, 0):
                own[actor] = value

    def dominates(self, actor: int, value: int) -> bool:
        """Whether this clock has seen *actor*'s event number *value* —
        i.e. that event happens-before the point this clock describes."""
        return self._c.get(actor, 0) >= value

    def copy(self) -> "VectorClock":
        clone = VectorClock()
        clone._c = dict(self._c)
        return clone

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._c.items())

    def __len__(self) -> int:
        return len(self._c)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"t{a}:{v}" for a, v in sorted(self._c.items()))
        return f"<VC {inner}>"
