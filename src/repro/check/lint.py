"""The repo-specific static lint pass (``python -m repro.check --lint``).

Seven AST-based rules, each encoding an invariant of this codebase that a
generic linter cannot know:

* ``unhandled-message-type`` — every ``MsgType`` enum member must be
  wired to a handler somewhere in the scanned files: registered on a
  router (``router.register(MsgType.X, ...)``), used as a key in a
  routes dict, or produced as a reply (``msg.make_reply(MsgType.X,
  ...)``).  An orphan member is dead protocol surface — either wire it
  or delete it.
* ``directory-encapsulation`` — only ``core/directory.py`` may touch the
  directory's storage internals (``.directory_shard``, ``.shard_map``,
  ``._lru``); everything else must go through the
  :class:`~repro.core.directory.CoherenceDirectory` interface, or the
  backends stop being pluggable.
* ``sim-nondeterminism`` — no wall-clock or OS-entropy calls and no
  ``random`` module inside simulation code: the engine's determinism
  (bit-identical runs for a seed) is a load-bearing property.  Seeded
  ``numpy.random`` generators (``default_rng(seed)``) are allowed;
  argument-less ones are not.
* ``yield-discipline`` — generator processes may only yield waitables
  (events/timeouts/processes); a bare ``yield`` or a constant yield is
  a latent ``SimulationError`` the engine will throw at runtime.
* ``span-discipline`` — tracing spans must be closed by a context
  manager: every ``.span(...)``/``maybe_span(...)`` call must be a
  ``with``-statement item, or the span leaks open (its ``end_us`` never
  stamps and nesting under it corrupts the tree).  And trace ids may
  only cross processes through the sanctioned ``Message`` header fields,
  never smuggled through ad-hoc dict payloads — so the string keys
  ``"trace_id"``/``"parent_span"``/``"span_id"`` are banned in dict
  literals.  The ``obs`` package itself (which implements the
  machinery) is exempt in repo mode.
* ``slots-discipline`` — every class on an engine-core path (a ``sim``
  package, or the message layer ``net/messages.py``) must declare
  ``__slots__``, either as a class-body literal or via
  ``@dataclass(slots=True)``.  These are the highest-volume objects in
  the simulator (events, timeouts, queue entries, messages); a silent
  instance ``__dict__`` costs memory and attribute-lookup time exactly
  where the hot loop lives, and hides typo'd attribute writes the slots
  layout would reject.  Enum and exception classes are exempt (both are
  rare, and exceptions carry ``args`` machinery of their own).
* ``retry-discipline`` — the reliable transport owns retransmission.
  Every request-class message (a ``Message(MsgType.X, ...)`` that flows
  into ``.request(...)``) must declare a timeout class in the
  ``TIMEOUT_CLASSES`` dict, or the retry loop has no deadline to start
  from.  And no code may hand-roll an exponential retransmit loop: a
  ``while`` that sends and scales its own delay (``*=`` / ``**``) must
  use :func:`repro.net.retry.backoff_delay`, which caps the delay and
  pairs with a bounded attempt budget.  Constant-delay retry loops
  (directory-busy backoff) are fine.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

RULES = (
    "unhandled-message-type",
    "directory-encapsulation",
    "sim-nondeterminism",
    "yield-discipline",
    "span-discipline",
    "slots-discipline",
    "retry-discipline",
)

#: attribute names that are directory storage internals
_DIRECTORY_INTERNALS = frozenset({"directory_shard", "shard_map", "_lru"})
#: the one module allowed to touch them
_DIRECTORY_MODULE = "directory.py"

#: fully dotted call suffixes that read wall clocks or OS entropy
_WALL_CLOCK_CALLS = frozenset({
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("os", "urandom"),
    ("uuid", "uuid4"),
})

#: numpy.random constructors that are deterministic when given a seed
_SEEDED_RNG_CTORS = frozenset({"default_rng", "RandomState", "SeedSequence",
                               "Generator", "PCG64", "Philox"})

#: modules exempt from the nondeterminism rule when linting the repo:
#: offline tooling that never runs inside a simulation
_NONDETERMINISM_EXEMPT_PARTS = ("bench", "tools", "check")

#: packages exempt from the span-discipline rule when linting the repo:
#: the tracing machinery itself builds spans and serializes their ids
_SPAN_EXEMPT_PARTS = ("obs",)

#: dict keys that would smuggle trace context outside the Message fields
_TRACE_ID_KEYS = frozenset({"trace_id", "parent_span", "span_id"})


@dataclass
class LintViolation:
    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _iter_python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _dotted_name(node: ast.AST) -> Tuple[str, ...]:
    """The attribute chain of *node* as a name tuple, e.g.
    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _msgtype_member(node: ast.AST) -> Optional[str]:
    """The member name when *node* is a ``MsgType.X`` reference."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "MsgType"
    ):
        return node.attr
    return None


def _message_ctor_member(node: ast.AST) -> Optional[str]:
    """The MsgType member when *node* is a ``Message(MsgType.X, ...)`` call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "Message"
        and node.args
    ):
        return _msgtype_member(node.args[0])
    return None


class _ModuleScan:
    """Everything one parsed module contributes to the lint rules."""

    def __init__(self, path: Path, tree: ast.Module):
        self.path = path
        self.tree = tree
        #: MsgType members defined here: name -> line
        self.msgtype_members: Dict[str, int] = {}
        self.defines_msgtype = False
        #: members referenced in handler positions
        self.handled_members: Set[str] = set()
        #: members used as dict-literal keys (only counts as handling
        #: outside the defining module, to ignore size/metadata tables)
        self.dict_key_members: Set[str] = set()
        #: keys of a ``TIMEOUT_CLASSES = {...}`` dict literal defined here
        self.timeout_class_members: Set[str] = set()
        self.defines_timeout_classes = False
        #: MsgType members this module passes to ``.request(...)``:
        #: (member, line), resolved through function-local
        #: ``msg = Message(MsgType.X, ...)`` bindings
        self.requested_members: List[Tuple[str, int]] = []
        self._collect()
        self._collect_requests()

    def _collect(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                target = node.target if isinstance(node, ast.AnnAssign) else (
                    node.targets[0] if len(node.targets) == 1 else None
                )
                if (
                    isinstance(target, ast.Name)
                    and target.id == "TIMEOUT_CLASSES"
                    and isinstance(node.value, ast.Dict)
                ):
                    self.defines_timeout_classes = True
                    for key in node.value.keys:
                        member = _msgtype_member(key) if key is not None else None
                        if member is not None:
                            self.timeout_class_members.add(member)
            if isinstance(node, ast.ClassDef) and node.name == "MsgType":
                self.defines_msgtype = True
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                self.msgtype_members[target.id] = stmt.lineno
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("register", "make_reply")
                    and node.args
                ):
                    member = _msgtype_member(node.args[0])
                    if member is not None:
                        self.handled_members.add(member)
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    member = _msgtype_member(key) if key is not None else None
                    if member is not None:
                        self.dict_key_members.add(member)

    def _collect_requests(self) -> None:
        for fn in ast.walk(self.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # function-local `msg = Message(MsgType.X, ...)` bindings
            bindings: Dict[str, str] = {}
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign):
                    member = _message_ctor_member(node.value)
                    if member is not None:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                bindings[target.id] = member
            for node in ast.walk(fn):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "request"
                    and node.args
                ):
                    continue
                arg = node.args[0]
                member = _message_ctor_member(arg)
                if member is None and isinstance(arg, ast.Name):
                    member = bindings.get(arg.id)
                if member is not None:
                    self.requested_members.append((member, node.lineno))


def _check_unhandled_message_types(
    scans: List[_ModuleScan],
) -> List[LintViolation]:
    violations: List[LintViolation] = []
    handled: Set[str] = set()
    for scan in scans:
        handled |= scan.handled_members
        if not scan.defines_msgtype:
            # dict keys in the defining module are metadata tables
            # (CONTROL_SIZES), not dispatch wiring
            handled |= scan.dict_key_members
    for scan in scans:
        for member, line in sorted(scan.msgtype_members.items(),
                                   key=lambda kv: kv[1]):
            if member not in handled:
                violations.append(LintViolation(
                    rule="unhandled-message-type",
                    path=str(scan.path),
                    line=line,
                    message=(
                        f"MsgType.{member} has no registered handler, "
                        f"routes-dict entry, or make_reply producer — "
                        f"dead protocol surface"
                    ),
                ))
    return violations


def _check_directory_encapsulation(scan: _ModuleScan) -> List[LintViolation]:
    if scan.path.name == _DIRECTORY_MODULE:
        return []
    violations = []
    for node in ast.walk(scan.tree):
        if isinstance(node, ast.Attribute) and node.attr in _DIRECTORY_INTERNALS:
            violations.append(LintViolation(
                rule="directory-encapsulation",
                path=str(scan.path),
                line=node.lineno,
                message=(
                    f"access to directory internal '.{node.attr}' outside "
                    f"core/directory.py; go through the CoherenceDirectory "
                    f"interface"
                ),
            ))
    return violations


def _check_sim_nondeterminism(scan: _ModuleScan) -> List[LintViolation]:
    violations = []
    for node in ast.walk(scan.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    violations.append(LintViolation(
                        rule="sim-nondeterminism",
                        path=str(scan.path), line=node.lineno,
                        message="import of the unseeded 'random' module "
                                "inside sim code",
                    ))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                violations.append(LintViolation(
                    rule="sim-nondeterminism",
                    path=str(scan.path), line=node.lineno,
                    message="import from the unseeded 'random' module "
                            "inside sim code",
                ))
        elif isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if len(dotted) < 2:
                continue
            suffix = dotted[-2:]
            if suffix in _WALL_CLOCK_CALLS:
                violations.append(LintViolation(
                    rule="sim-nondeterminism",
                    path=str(scan.path), line=node.lineno,
                    message=f"wall-clock/entropy call "
                            f"'{'.'.join(dotted)}()' inside sim code; use "
                            f"engine time",
                ))
            elif "random" in dotted[:-1]:
                # something.random.<fn>(...): numpy-style RNG access
                fn = dotted[-1]
                if fn not in _SEEDED_RNG_CTORS:
                    violations.append(LintViolation(
                        rule="sim-nondeterminism",
                        path=str(scan.path), line=node.lineno,
                        message=f"'{'.'.join(dotted)}()' draws from global "
                                f"RNG state; use a seeded default_rng",
                    ))
                elif not node.args and not node.keywords:
                    violations.append(LintViolation(
                        rule="sim-nondeterminism",
                        path=str(scan.path), line=node.lineno,
                        message=f"'{'.'.join(dotted)}()' without a seed is "
                                f"nondeterministic",
                    ))
            elif dotted[0] == "random":
                violations.append(LintViolation(
                    rule="sim-nondeterminism",
                    path=str(scan.path), line=node.lineno,
                    message=f"'{'.'.join(dotted)}()' uses the unseeded "
                            f"'random' module inside sim code",
                ))
    return violations


def _check_yield_discipline(scan: _ModuleScan) -> List[LintViolation]:
    violations = []
    for node in ast.walk(scan.tree):
        if isinstance(node, ast.Yield):
            value = node.value
            if value is None or isinstance(value, ast.Constant):
                shown = "bare yield" if value is None else \
                    f"yield {value.value!r}"
                violations.append(LintViolation(
                    rule="yield-discipline",
                    path=str(scan.path), line=node.lineno,
                    message=f"{shown}: generator processes may only yield "
                            f"waitables (Event/Timeout/Process)",
                ))
    return violations


def _check_span_discipline(scan: _ModuleScan) -> List[LintViolation]:
    violations = []
    # calls that appear as a with-statement item are the sanctioned form
    with_calls: Set[int] = set()
    for node in ast.walk(scan.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    with_calls.add(id(item.context_expr))
    for node in ast.walk(scan.tree):
        if isinstance(node, ast.Call):
            func = node.func
            opens_span = (
                (isinstance(func, ast.Attribute) and func.attr == "span")
                or (isinstance(func, ast.Name) and func.id == "maybe_span")
            )
            if opens_span and id(node) not in with_calls:
                shown = "maybe_span" if isinstance(func, ast.Name) else \
                    f"{'.'.join(_dotted_name(func)) or '<expr>.span'}"
                violations.append(LintViolation(
                    rule="span-discipline",
                    path=str(scan.path), line=node.lineno,
                    message=f"'{shown}(...)' outside a with statement: "
                            f"spans must be closed by their context "
                            f"manager or end_us never stamps",
                ))
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if (
                    isinstance(key, ast.Constant)
                    and key.value in _TRACE_ID_KEYS
                ):
                    violations.append(LintViolation(
                        rule="span-discipline",
                        path=str(scan.path), line=key.lineno,
                        message=f"dict key {key.value!r}: trace ids cross "
                                f"processes only via the Message "
                                f"trace_id/parent_span fields",
                    ))
    return violations


def _check_timeout_class_declarations(
    scans: List[_ModuleScan],
) -> List[LintViolation]:
    """Part one of ``retry-discipline``: every request-class MsgType must
    appear as a key of the ``TIMEOUT_CLASSES`` dict literal.  Skipped
    entirely when no scanned module defines the dict (partial scans of
    modules that merely *use* the transport would otherwise all fail)."""
    if not any(scan.defines_timeout_classes for scan in scans):
        return []
    declared: Set[str] = set()
    for scan in scans:
        declared |= scan.timeout_class_members
    violations: List[LintViolation] = []
    for scan in scans:
        for member, line in scan.requested_members:
            if member not in declared:
                violations.append(LintViolation(
                    rule="retry-discipline",
                    path=str(scan.path),
                    line=line,
                    message=(
                        f"MsgType.{member} is awaited via .request() but "
                        f"declares no entry in TIMEOUT_CLASSES — the "
                        f"retransmission loop has no reply deadline for it"
                    ),
                ))
    return violations


#: base-class names that exempt a class from the slots rule
_SLOTS_EXEMPT_BASES = frozenset({
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
    "BaseException", "Exception", "Warning",
})


def _slots_scope(path: Path) -> bool:
    """Is *path* on an engine-core path the slots rule covers?"""
    parents = path.parts[:-1]
    if "sim" in parents:
        return True
    return path.name == "messages.py" and "net" in parents


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and \
                    stmt.target.id == "__slots__":
                return True
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = _dotted_name(deco.func)
        if name and name[-1] == "dataclass":
            for kw in deco.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False


def _slots_exempt_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = _dotted_name(base)
        last = name[-1] if name else ""
        if last in _SLOTS_EXEMPT_BASES or last.endswith("Error") or \
                last.endswith("Exception"):
            return True
    return False


def _check_slots_discipline(scan: _ModuleScan) -> List[LintViolation]:
    if not _slots_scope(scan.path):
        return []
    violations = []
    for node in ast.walk(scan.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if _slots_exempt_class(node):
            continue
        if not _declares_slots(node):
            violations.append(LintViolation(
                rule="slots-discipline",
                path=str(scan.path),
                line=node.lineno,
                message=(
                    f"class {node.name} on an engine-core path declares no "
                    f"__slots__ (use a class-body literal or "
                    f"@dataclass(slots=True)); hot-loop objects must not "
                    f"carry an instance __dict__"
                ),
            ))
    return violations


#: attribute-call names that put a message on the wire
_SEND_CALL_ATTRS = frozenset({"send", "post", "request"})


def _check_manual_backoff(scan: _ModuleScan) -> List[LintViolation]:
    """Part two of ``retry-discipline``: a while-loop that sends *and*
    scales its own delay (``*=`` or ``**``) is a hand-rolled exponential
    retransmit loop — unless the function delegates the arithmetic to the
    shared :func:`backoff_delay` helper, which caps the delay and pairs
    with a bounded attempt budget.  Constant-delay loops are fine."""
    violations: List[LintViolation] = []
    for fn in ast.walk(scan.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        uses_helper = any(
            isinstance(node, ast.Call)
            and (
                (isinstance(node.func, ast.Name)
                 and node.func.id == "backoff_delay")
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "backoff_delay")
            )
            for node in ast.walk(fn)
        )
        if uses_helper:
            continue
        for loop in ast.walk(fn):
            if not isinstance(loop, ast.While):
                continue
            sends = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SEND_CALL_ATTRS
                for node in ast.walk(loop)
            )
            scales = any(
                (isinstance(node, ast.AugAssign)
                 and isinstance(node.op, (ast.Mult, ast.Pow)))
                or (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Pow))
                for node in ast.walk(loop)
            )
            if sends and scales:
                violations.append(LintViolation(
                    rule="retry-discipline",
                    path=str(scan.path),
                    line=loop.lineno,
                    message=(
                        "retransmit loop scales its own delay: use "
                        "net.retry.backoff_delay (capped exponential, "
                        "bounded attempts) instead of hand-rolled backoff"
                    ),
                ))
    return violations


def _nondeterminism_exempt(path: Path) -> bool:
    return any(part in _NONDETERMINISM_EXEMPT_PARTS for part in path.parts)


def _span_exempt(path: Path) -> bool:
    return any(part in _SPAN_EXEMPT_PARTS for part in path.parts)


def lint_paths(paths: Sequence[Path], repo_mode: bool = False) -> List[LintViolation]:
    """Run every rule over *paths* (files or directories).

    *repo_mode* applies the repo's own exemptions: offline tooling
    (``bench``, ``tools``, ``check`` packages) is excused from the
    nondeterminism rule, since it never runs inside a simulation."""
    scans: List[_ModuleScan] = []
    violations: List[LintViolation] = []
    for path in _iter_python_files(paths):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as err:
            violations.append(LintViolation(
                rule="parse-error", path=str(path),
                line=err.lineno or 0, message=str(err.msg),
            ))
            continue
        scans.append(_ModuleScan(path, tree))
    violations.extend(_check_unhandled_message_types(scans))
    violations.extend(_check_timeout_class_declarations(scans))
    for scan in scans:
        violations.extend(_check_directory_encapsulation(scan))
        if not (repo_mode and _nondeterminism_exempt(scan.path)):
            violations.extend(_check_sim_nondeterminism(scan))
        violations.extend(_check_yield_discipline(scan))
        if not (repo_mode and _span_exempt(scan.path)):
            violations.extend(_check_span_discipline(scan))
        violations.extend(_check_slots_discipline(scan))
        violations.extend(_check_manual_backoff(scan))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def lint_repo(root: Optional[Path] = None) -> List[LintViolation]:
    """Lint the installed ``repro`` package sources."""
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    return lint_paths([root], repo_mode=True)
