"""The repo-specific static lint pass (``python -m repro.check --lint``).

As of the DexVet PR this module is a thin shim: the seven rules live on
the shared whole-program analysis framework in :mod:`repro.vet.legacy`
(same semantics, same messages), and this module keeps the original
entry points — ``RULES``, :class:`LintViolation`, :func:`lint_paths`,
:func:`lint_repo` — so existing callers and CI keep working.  New rules
(message-graph totality, effect inference, baseline suppression) are
only reachable through ``python -m repro.vet``.

The seven rules, each encoding an invariant of this codebase that a
generic linter cannot know:

* ``unhandled-message-type`` — every ``MsgType`` enum member must be
  wired to a handler somewhere in the scanned files: registered on a
  router (``router.register(MsgType.X, ...)``), used as a key in a
  routes dict, or produced as a reply (``msg.make_reply(MsgType.X,
  ...)``).  An orphan member is dead protocol surface — either wire it
  or delete it.
* ``directory-encapsulation`` — only ``core/directory.py`` may touch the
  directory's storage internals (``.directory_shard``, ``.shard_map``,
  ``._lru``); everything else must go through the
  :class:`~repro.core.directory.CoherenceDirectory` interface, or the
  backends stop being pluggable.
* ``sim-nondeterminism`` — no wall-clock or OS-entropy calls and no
  ``random`` module inside simulation code: the engine's determinism
  (bit-identical runs for a seed) is a load-bearing property.  Seeded
  ``numpy.random`` generators (``default_rng(seed)``) are allowed;
  argument-less ones are not.
* ``yield-discipline`` — generator processes may only yield waitables
  (events/timeouts/processes); a bare ``yield`` or a constant yield is
  a latent ``SimulationError`` the engine will throw at runtime.
* ``span-discipline`` — tracing spans must be closed by a context
  manager, and trace ids may only cross processes through the
  sanctioned ``Message`` header fields.
* ``slots-discipline`` — every class on an engine-core path (a ``sim``
  package, or the message layer ``net/messages.py``) must declare
  ``__slots__``.
* ``retry-discipline`` — every request-class message declares a timeout
  class in ``TIMEOUT_CLASSES``, and nobody hand-rolls exponential
  retransmit loops (use :func:`repro.net.retry.backoff_delay`).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.vet import build_context, run_rules
from repro.vet.legacy import LEGACY_RULES
from repro.vet.loader import package_root
from repro.vet.rules import Violation as LintViolation

RULES = LEGACY_RULES


def lint_paths(
    paths: Sequence[Path], repo_mode: bool = False
) -> List[LintViolation]:
    """Run the seven legacy rules over *paths* (files or directories).

    *repo_mode* applies the repo's own exemptions: offline tooling
    (``bench``, ``tools``, ``check``, ``vet`` packages) is excused from
    the nondeterminism rule, since it never runs inside a simulation."""
    ctx = build_context(paths, repo_mode=repo_mode)
    return run_rules(ctx, RULES)


def lint_repo(root: Optional[Path] = None) -> List[LintViolation]:
    """Lint the installed ``repro`` package sources."""
    if root is None:
        root = package_root()
    return lint_paths([root], repo_mode=True)
