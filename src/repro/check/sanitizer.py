"""The coherence sanitizer: happens-before race checking for the protocol.

The MRSW protocol promises sequential consistency, which means every pair
of conflicting accesses (read/write or write/write on the same page from
different threads) must be ordered by some chain of protocol messages.
The sanitizer verifies that promise directly, instead of trusting the
directory bookkeeping:

* every thread carries a :class:`~repro.check.vclock.VectorClock`;
* every *(node, page)* copy of a page carries a clock: an access joins
  the copy's clock into the thread (same-node accesses are serialized by
  the node's memory system, exactly like cache coherence on real
  hardware) and then publishes the thread's clock back into the copy;
* every page has a *home clock*: a revocation ack joins the revoked
  copy's clock into it (the loser's accesses are complete), and a grant
  joins it into the requester's copy clock (the grant carries the page's
  causal history to the new owner).

With those edges, any access pair ordered by the protocol is ordered in
the clocks — so an **unordered** conflicting pair is a protocol bug (a
lost invalidation, a reordered grant, a stale owner set).  Reports carry
both access sites, the per-page protocol message chain, and the directory
backend in use.

The sanitizer also re-validates the directory/PTE agreement on **every
ownership transition** (`on_transition`, called when a fault commits),
via :meth:`repro.core.directory.CoherenceDirectory.check_entry` and
:meth:`repro.core.protocol.ConsistencyProtocol.check_page` — the
per-transition version of the teardown-only ``check_invariants``.

Scope: the sanitizer orders all same-node accesses through the copy
clock, so it targets *cross-node protocol* bugs, not application-level
races between threads on one node (the engine's run-to-yield semantics
already serialize those deterministically).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from repro.check.vclock import VectorClock
from repro.core.errors import DexError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess

#: protocol events kept per page for violation reports
_CHAIN_DEPTH = 12


class CoherenceViolation(DexError):
    """An unordered conflicting access pair, or a per-transition
    directory/PTE invariant failure — either way, a protocol bug."""


@dataclass
class Access:
    """One recorded page access, with the thread-clock value it carries."""

    tid: int
    clock: int
    node: int
    write: bool
    site: str
    time_us: float

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        where = f" at {self.site!r}" if self.site else ""
        return f"{kind} by t{self.tid} on node {self.node}{where} @{self.time_us:.1f}us"


class _PageMeta:
    """Per-page race-checking state: last write, the read set since that
    write, and a bounded protocol message chain for reports."""

    __slots__ = ("last_write", "readers", "chain")

    def __init__(self) -> None:
        self.last_write: Optional[Access] = None
        self.readers: Dict[int, Access] = {}
        self.chain: Deque[str] = deque(maxlen=_CHAIN_DEPTH)


class CoherenceSanitizer:
    """Per-process dynamic checker; instrumentation sites in the fault,
    protocol, and futex layers call the ``on_*`` hooks when a process has
    one attached (``DexProcess.sanitizer``)."""

    def __init__(self, proc: "DexProcess"):
        self.proc = proc
        #: validate directory/PTE agreement at every ownership transition;
        #: seeded-bug tests flip this off to exercise the pure
        #: happens-before detector
        self.transition_checks = True
        self._threads: Dict[int, VectorClock] = {}
        self._copies: Dict[Tuple[int, int], VectorClock] = {}
        self._homes: Dict[int, VectorClock] = {}
        self._pages: Dict[int, _PageMeta] = {}
        # counters, surfaced by reports and tests
        self.accesses_checked = 0
        self.transitions_checked = 0
        self.edges_recorded = 0

    # -- state accessors -----------------------------------------------------

    def _thread_clock(self, tid: int) -> VectorClock:
        vc = self._threads.get(tid)
        if vc is None:
            vc = self._threads[tid] = VectorClock()
        return vc

    def _copy_clock(self, node: int, vpn: int) -> VectorClock:
        key = (node, vpn)
        vc = self._copies.get(key)
        if vc is None:
            vc = self._copies[key] = VectorClock()
        return vc

    def _home_clock(self, vpn: int) -> VectorClock:
        vc = self._homes.get(vpn)
        if vc is None:
            vc = self._homes[vpn] = VectorClock()
        return vc

    def _meta(self, vpn: int) -> _PageMeta:
        meta = self._pages.get(vpn)
        if meta is None:
            meta = self._pages[vpn] = _PageMeta()
        return meta

    def _now(self) -> float:
        return self.proc.cluster.engine.now

    def _chain(self, vpn: int, text: str) -> None:
        self._meta(vpn).chain.append(f"@{self._now():.1f}us {text}")

    # -- data-plane hook -----------------------------------------------------

    def on_access(self, node: int, tid: int, vpn: int, write: bool, site: str) -> None:
        """Check one page access against the last conflicting accesses and
        record it.  Called from the fault layer's read/write/atomic paths
        *after* the page is secured at *node*."""
        vc = self._thread_clock(tid)
        vc.tick(tid)
        copy = self._copy_clock(node, vpn)
        vc.merge(copy)
        meta = self._meta(vpn)
        access = Access(
            tid=tid, clock=vc.get(tid), node=node, write=write,
            site=site, time_us=self._now(),
        )
        self.accesses_checked += 1
        if write:
            self._check_pair(vpn, meta, access, meta.last_write, vc)
            for prev in meta.readers.values():
                self._check_pair(vpn, meta, access, prev, vc)
            meta.last_write = access
            meta.readers.clear()
        else:
            self._check_pair(vpn, meta, access, meta.last_write, vc)
            meta.readers[tid] = access
        copy.merge(vc)

    def _check_pair(
        self,
        vpn: int,
        meta: _PageMeta,
        current: Access,
        previous: Optional[Access],
        vc: VectorClock,
    ) -> None:
        if previous is None or previous.tid == current.tid:
            return  # program order covers same-thread pairs
        if vc.dominates(previous.tid, previous.clock):
            return
        kinds = ("write/write" if previous.write and current.write
                 else "read/write")
        chain = "\n    ".join(meta.chain) or "(no protocol messages recorded)"
        raise CoherenceViolation(
            f"unordered {kinds} pair on page {vpn:#x} "
            f"(directory backend: {self.proc.protocol.directory.backend}):\n"
            f"  earlier: {previous.describe()}\n"
            f"  current: {current.describe()}\n"
            f"  no happens-before chain orders these accesses — a grant or "
            f"invalidation was lost or reordered\n"
            f"  protocol message chain for this page:\n    {chain}"
        )

    # -- protocol happens-before edges --------------------------------------

    def on_grant(self, vpn: int, requester: int, write: bool) -> None:
        """A grant publishes the page's causal history (the home clock) to
        the requester's copy.  Called at the home when a grant is issued;
        the grant and the requester's install travel the same in-order
        connection, so merging here is safe."""
        self.edges_recorded += 1
        self._copy_clock(requester, vpn).merge(self._home_clock(vpn))
        kind = "exclusive" if write else "shared"
        self._chain(vpn, f"grant {kind} -> node {requester}")

    def on_revoke(self, vpn: int, loser: int, downgrade: bool, requester: int) -> None:
        """A revocation ack proves the loser's accesses are complete; its
        copy clock joins the home clock.  Called at the home, per loser,
        after the (local or acked remote) invalidation applied."""
        self.edges_recorded += 1
        self._home_clock(vpn).merge(self._copy_clock(loser, vpn))
        verb = "downgrade" if downgrade else "invalidate"
        self._chain(
            vpn, f"{verb} node {loser} (on behalf of node {requester})"
        )

    def on_retry(self, vpn: int, requester: int) -> None:
        self._chain(vpn, f"busy: node {requester} told to retry")

    def on_home_lookup(self, vpn: int, node: int, home: int) -> None:
        self._chain(vpn, f"home lookup by node {node} -> home {home}")

    def on_redirect(self, vpn: int, node: int, stale_home: int) -> None:
        self._chain(vpn, f"redirect: node {node} bounced off node {stale_home}")

    # -- synchronization edges ----------------------------------------------

    def on_futex_wake(self, waker_tid: int, woken_tid: int) -> None:
        """FUTEX_WAKE orders everything the waker did before the wake ahead
        of everything the woken thread does after it."""
        self.edges_recorded += 1
        self._thread_clock(woken_tid).merge(self._thread_clock(waker_tid))

    def on_spawn(self, parent_tid: int, child_tid: int) -> None:
        """Thread creation orders the parent's past before the child."""
        self.edges_recorded += 1
        self._thread_clock(child_tid).merge(self._thread_clock(parent_tid))

    # -- lifecycle -----------------------------------------------------------

    def on_node_dead(self, node: int) -> None:
        """A node fail-stopped: discard its copy clocks.  Ownership edges
        for the reclaim itself were already recorded via :meth:`on_revoke`
        / :meth:`on_grant` by the recovery walk; anything left is state for
        copies that no longer exist anywhere."""
        for key in [k for k in self._copies if k[0] == node]:
            del self._copies[key]

    def on_unmap(self, vpn_start: int, vpn_end: int) -> None:
        """Drop all per-page state for an unmapped range."""
        for vpn in [v for v in self._pages if vpn_start <= v < vpn_end]:
            del self._pages[vpn]
        for vpn in [v for v in self._homes if vpn_start <= v < vpn_end]:
            del self._homes[vpn]
        for key in [k for k in self._copies if vpn_start <= k[1] < vpn_end]:
            del self._copies[key]

    # -- per-transition invariant checking -----------------------------------

    def on_transition(self, vpn: int) -> None:
        """Re-validate the MRSW invariants for *vpn* right after an
        ownership transition committed (the requester installed its PTE).

        Nodes with an active in-flight fault for the page are skipped
        (their PTE legitimately lags their grant), and a busy entry is
        skipped entirely (the next operation is already rewriting it)."""
        if not self.transition_checks:
            return
        protocol = self.proc.protocol
        entry = protocol.directory.lookup(vpn)
        if entry is None or entry.busy:
            return
        self.transitions_checked += 1
        try:
            protocol.directory.check_entry(vpn, entry)
            protocol.check_page(vpn, entry, skip_inflight=True)
        except AssertionError as err:
            chain = "\n    ".join(self._meta(vpn).chain) or \
                "(no protocol messages recorded)"
            raise CoherenceViolation(
                f"directory/PTE invariant broken after a transition of page "
                f"{vpn:#x} (directory backend: "
                f"{protocol.directory.backend}): {err}\n"
                f"  protocol message chain for this page:\n    {chain}"
            ) from err
