"""repro — a reproduction of *DeX: Scaling Applications Beyond Machine
Boundaries* (ICDCS 2020) on a simulated rack.

DeX is an operating-system extension that lets the threads of an ordinary
process migrate between machines through a single function call, while a
page-level memory-consistency protocol keeps their shared address space
sequentially consistent.  This package implements the full system — thread
migration, work delegation, the ownership protocol, distributed futexes,
on-demand VMA synchronization, the InfiniBand-like messaging layer, and the
application-adaptation toolchain — on a deterministic discrete-event
simulation of the paper's eight-node testbed.

Quick start::

    from repro import DexCluster

    cluster = DexCluster(num_nodes=4)
    proc = cluster.create_process()
    ...

See README.md and the ``examples/`` directory.
"""

from repro.core import (
    DexCluster,
    DexError,
    DexProcess,
    DexThread,
    SegmentationFault,
    ThreadContext,
)
from repro.params import DEFAULT_PARAMS, SimParams

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_PARAMS",
    "DexCluster",
    "DexError",
    "DexProcess",
    "DexThread",
    "SegmentationFault",
    "SimParams",
    "ThreadContext",
    "__version__",
]
