"""The top-level public API: a simulated rack running DeX.

Typical usage::

    from repro import DexCluster

    cluster = DexCluster(num_nodes=4)
    proc = cluster.create_process()

    def worker(ctx, node, out_addr):
        yield from ctx.migrate(node)            # ship this thread out
        yield from ctx.compute(cpu_us=100.0)    # work with remote cores
        yield from ctx.write_i64(out_addr, 42)  # through shared memory
        yield from ctx.migrate_back()

    threads = [proc.spawn_thread(worker, n, 0x10000000 + 8 * n)
               for n in range(4)]

    def main(ctx):
        yield from proc.join_all(threads)

    cluster.simulate(main, proc)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.chaos import ChaosController, resolve_scenario
from repro.core.errors import DexError
from repro.core.process import DexProcess
from repro.net.fabric import Network
from repro.net.messages import Message, MsgType
from repro.obs import resolve_lens_mode, resolve_scope_mode, resolve_trace_mode
from repro.obs.lens import DexLens
from repro.obs.scope import DexScope
from repro.obs.tracing import Tracer
from repro.params import SimParams
from repro.sim import Engine, FairShareResource, Resource


class DexNode:
    """One machine of the rack: CPU cores + a DRAM bandwidth domain."""

    def __init__(self, engine: Engine, node_id: int, params: SimParams):
        self.node_id = node_id
        self.cores = Resource(engine, params.cores_per_node, name=f"n{node_id}.cores")
        self.dram = FairShareResource(
            engine,
            params.dram_bandwidth,
            contention=params.dram_contention_model(),
            name=f"n{node_id}.dram",
        )


class DexCluster:
    """A rack of nodes connected by the simulated InfiniBand fabric, with
    the DeX kernel extension 'loaded' on every node."""

    def __init__(
        self,
        num_nodes: int = 8,
        params: Optional[SimParams] = None,
        directory: Optional[str] = None,
        trace: Optional[Any] = None,
        chaos: Optional[Any] = None,
    ):
        self.params = params if params is not None else SimParams()
        if directory is not None:
            # convenience knob: select the coherence-directory backend
            # ("origin" | "sharded") without hand-building SimParams
            self.params = self.params.copy(directory=directory)
        if trace is not None:
            # convenience knob: DexCluster(trace=True) / trace="spans"
            self.params = self.params.copy(
                trace=trace if isinstance(trace, str) else ("1" if trace else "")
            )
        if chaos is not None:
            # convenience knob: DexCluster(chaos=ChaosScenario(...)) or
            # chaos="scenario.json" / chaos=True
            if isinstance(chaos, str):
                self.params = self.params.copy(chaos=chaos)
            elif chaos is True:
                self.params = self.params.copy(chaos="on")
            else:
                self.params = self.params.copy(chaos_scenario=chaos)
        scenario = resolve_scenario(self.params)
        seed = self.params.seed
        if seed is None and scenario is not None and scenario.seed is not None:
            seed = scenario.seed
        self.engine = Engine(seed=0 if seed is None else seed)
        #: the repro.obs span tracer, or None when tracing is off (the
        #: common case — instrumented code then costs one None check).
        #: DexLens rides on span closes, so turning it on implies a tracer
        lens_on = resolve_lens_mode(self.params.lens)
        self.tracer: Optional[Tracer] = (
            Tracer(self.engine, max_spans=self.params.trace_max_spans)
            if resolve_trace_mode(self.params.trace) or lens_on
            else None
        )
        #: the fault-injection controller, or None when chaos is off (the
        #: common case — every fabric/protocol hook is one None check)
        self.chaos: Optional[ChaosController] = (
            ChaosController(self.engine, self.params, scenario)
            if scenario is not None
            else None
        )
        self.net = Network(self.engine, num_nodes, self.params, chaos=self.chaos)
        self.nodes: List[DexNode] = [
            DexNode(self.engine, n, self.params) for n in range(num_nodes)
        ]
        self.processes: Dict[int, DexProcess] = {}
        #: the online analytics bundle (repro.obs.lens), or None when the
        #: lens is off — with it off nothing subscribes to the tracer and
        #: the sink lists stay empty
        self.lens: Optional[DexLens] = (
            DexLens(self, self.tracer) if lens_on else None
        )
        #: the DexScope time-series sampler (repro.obs.scope), or None when
        #: telemetry is off — with it off the engine never fires a sampler
        #: and the fabric's wire path skips its timing reads
        self.scope: Optional[DexScope] = (
            DexScope(self) if resolve_scope_mode(self.params.scope) else None
        )
        self._register_handlers()
        if self.chaos is not None:
            self.chaos.attach(self)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> DexNode:
        return self.nodes[node_id]

    # ------------------------------------------------------------------

    def create_process(self, origin: int = 0, name: str = "") -> DexProcess:
        """Create a new (initially single-node) process at *origin*."""
        if not 0 <= origin < self.num_nodes:
            raise DexError(f"no such node: {origin}")
        proc = DexProcess(self, origin=origin, name=name)
        self.processes[proc.pid] = proc
        return proc

    def retire_process(self, proc: DexProcess, force: bool = False) -> None:
        """Remove a finished process from the cluster.

        ``create_process`` registers the pid in the routing table forever;
        long-lived clusters that churn through many short-lived processes
        (DexServe tenants, the churn test) would otherwise accumulate
        page tables, frame stores, and stats namespaces for every process
        that ever ran.  Retiring unregisters the pid — stray messages for
        it become a hard error, as for any unknown process — and releases
        the per-node state.  Refuses while any thread is still alive
        unless *force* (a fail-stopped process's parked threads never
        finish; forcing is how recovery sweeps them away)."""
        live = [t for t in proc.threads if t.alive]
        if live and not force:
            names = ", ".join(t.name for t in live[:4])
            raise DexError(
                f"cannot retire {proc.name}: {len(live)} thread(s) still "
                f"alive ({names})"
            )
        self.processes.pop(proc.pid, None)
        proc.release()

    def simulate(
        self,
        main: Callable[..., Generator],
        proc: Optional[DexProcess] = None,
        *args: Any,
        until: Optional[float] = None,
    ) -> Any:
        """Run *main(ctx, *args)* as a thread of *proc* (a fresh process by
        default) and drive the simulation until everything completes.
        Returns the main thread's result."""
        if proc is None:
            proc = self.create_process()
        try:
            thread = proc.spawn_thread(main, *args, name="main")
            if self.chaos is not None:
                # re-arm the keepalive/monitor ticks for this run; stop
                # re-arming once the main thread completes so engine.run()
                # can drain and terminate
                self.chaos.resume_services()
                thread.sim_process.add_callback(
                    lambda _evt: self.chaos.suspend_services()
                )
            self.engine.run(until=until)
            if not thread.sim_process.triggered:
                detail = ""
                if proc.deadlocks is not None:
                    # the wait-for detector knows who is stuck on what
                    detail = "\n" + proc.deadlocks.report()
                raise DexError(
                    "simulation ended before the main thread finished "
                    "(deadlock or `until` too small)" + detail
                )
            return thread.result
        except DexError as err:
            # deadlock, sanitizer violation, or unrecovered chaos crash:
            # the flight recorder dumps its evidence before the error
            # propagates (lens on only; "" dump path disables)
            if self.lens is not None:
                self.lens.dump_on_crash(err)
            raise

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation; returns the final time (microseconds)."""
        return self.engine.run(until=until)

    @property
    def now(self) -> float:
        return self.engine.now

    # ------------------------------------------------------------------

    def _register_handlers(self) -> None:
        """Wire every node's router to the per-process protocol services.
        Messages carry the target pid in their payload."""
        routes = {
            MsgType.PAGE_REQUEST: lambda p: p.protocol.handle_page_request_msg,
            MsgType.PAGE_HOME_LOOKUP: lambda p: p.protocol.handle_home_lookup_msg,
            MsgType.PAGE_INVALIDATE: lambda p: p.protocol.handle_invalidate_msg,
            MsgType.MIGRATE: lambda p: p.migration.handle_migrate_msg,
            MsgType.MIGRATE_BACK: lambda p: p.migration.handle_migrate_back_msg,
            MsgType.DELEGATE: lambda p: p.delegation.handle_delegate,
            MsgType.VMA_QUERY: lambda p: p.vma_sync.handle_query,
            MsgType.VMA_SHRINK: lambda p: p.vma_sync.handle_shrink,
            MsgType.PROCESS_EXIT: lambda p: p.handle_exit_msg,
        }

        def make_dispatcher(getter):
            def dispatcher(msg: Message) -> Generator:
                proc = self.processes.get(msg.payload.get("pid"))
                if proc is None:
                    raise DexError(f"message for unknown process: {msg!r}")
                yield from getter(proc)(msg)

            return dispatcher

        def ping_handler(msg: Message) -> Generator:
            yield from self.net.send(msg.make_reply(MsgType.PONG, {"ok": True}))

        def lease_handler(msg: Message) -> Generator:
            # keepalive receipt at the origin (chaos-only traffic); charged
            # a nominal handling cost like any small control message
            yield self.engine.timeout(self.params.verb_recv_overhead)
            if self.chaos is not None:
                self.chaos.on_lease_renew(
                    msg.payload["pid"], msg.payload["node"]
                )

        for router in self.net.routers:
            for msg_type, getter in routes.items():
                router.register(msg_type, make_dispatcher(getter))
            router.register(MsgType.PING, ping_handler)
            router.register(MsgType.LEASE_RENEW, lease_handler)

    # ------------------------------------------------------------------

    def ping(self, src: int, dst: int) -> Generator:
        """Round-trip a small message (latency microbenchmark helper);
        returns the round-trip time in microseconds."""
        start = self.engine.now
        yield from self.net.request(Message(MsgType.PING, src=src, dst=dst))
        return self.engine.now - start
