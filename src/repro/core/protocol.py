"""The page-level memory-consistency protocol (§III-B).

A read-replicate / write-invalidate, multiple-reader / single-writer
protocol providing sequential consistency:

* Pages start implicitly **exclusive at the origin** — a process that never
  migrates never touches the directory.
* A **read** fault gets a shared replica: if some node holds the page
  exclusively, that writer is downgraded and its dirty data flushed to the
  origin first.
* A **write** fault gets exclusive ownership: the origin revokes ownership
  from every other owner (including itself) and collects acknowledgements;
  a revoked exclusive owner flushes its dirty page back with the ack.
* Page data accompanies a grant only when the requester's cached copy is
  stale ("the origin simply grants ownership without transferring the page
  data when the remote already has the up-to-date one").
* The directory serializes operations per page with a busy flag; a request
  that catches the page mid-operation is told to **retry** and backs off —
  the slow mode of §V-D's bimodal fault-latency distribution.

Timing-race note: a grant reply and a subsequent invalidation for the same
page travel the same in-order RC connection, so the grant is always
*dispatched* first; the requester marks its in-flight fault ``installing``
synchronously upon receiving the grant, and the invalidation handler waits
for installing faults to finish before revoking.  This mirrors the careful
PTE-update ordering §III-C describes for the real kernel implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from repro.core.errors import ProtocolError
from repro.core.ownership import OwnershipDirectory, PageEntry
from repro.memory.page_table import PageState
from repro.net.messages import Message, MsgType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fault import InFlightFault
    from repro.core.process import DexProcess

#: grant outcomes, shipped in reply payloads
_RETRY = "retry"
_GRANT = "grant"


class ConsistencyProtocol:
    """One instance per distributed process; the directory lives at the
    process's origin node."""

    def __init__(self, proc: "DexProcess"):
        self.proc = proc
        self.directory = OwnershipDirectory(proc.origin)

    # ------------------------------------------------------------------
    # requester side (runs at the faulting node, called by the leader)
    # ------------------------------------------------------------------

    def acquire_page(
        self, node: int, vpn: int, write: bool, fault: "InFlightFault"
    ) -> Generator:
        """Obtain (shared or exclusive) ownership of *vpn* for *node*,
        retrying with back-off when the directory is busy.  Installs the
        page data and the PTE; returns the number of retries."""
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        page_table = proc.node_state(node).page_table
        retries = 0
        while True:
            pte = page_table.ensure(vpn)
            if pte.writable if write else pte.readable:
                # resolved while we backed off (e.g. another fault on this
                # node won an exclusive grant that covers us); requesting
                # again could downgrade our own node's ownership
                return retries
            if node == proc.origin:
                outcome = yield from self.handle_request(
                    node, vpn, write, pte.data_version
                )
            else:
                reply = yield from proc.cluster.net.request(
                    Message(
                        MsgType.PAGE_REQUEST,
                        src=node,
                        dst=proc.origin,
                        payload={
                            "pid": proc.pid,
                            "vpn": vpn,
                            "write": write,
                            "known_version": pte.data_version,
                        },
                    )
                )
                outcome = (
                    reply.payload["outcome"],
                    reply.payload.get("state"),
                    reply.payload.get("version", 0),
                    reply.page_data,
                )
            status, state_name, version, data = outcome
            if status == _RETRY:
                retries += 1
                yield engine.timeout(params.fault_retry_backoff)
                continue
            # mark installing *synchronously* with the grant arrival so a
            # following invalidation (FIFO-ordered behind the grant) waits
            fault.installing = True
            if node != proc.origin:
                frames = proc.node_state(node).frames
                if data is not None:
                    if vpn not in frames:
                        yield engine.timeout(params.page_alloc_cost)
                    frames.install(vpn, data)
            yield engine.timeout(params.pte_update_cost)
            # final PTE update is synchronous after the last yield: the
            # caller's data access runs in the same engine step
            pte = page_table.ensure(vpn)
            pte.state = PageState(state_name)
            pte.data_version = version
            return retries

    # ------------------------------------------------------------------
    # origin directory side
    # ------------------------------------------------------------------

    def handle_page_request_msg(self, msg: Message) -> Generator:
        """Origin message handler for :data:`MsgType.PAGE_REQUEST`."""
        payload = msg.payload
        yield from self.handle_request(
            msg.src,
            payload["vpn"],
            payload["write"],
            payload["known_version"],
            reply_to=msg,
        )

    def handle_request(
        self,
        requester: int,
        vpn: int,
        write: bool,
        known_version: int,
        reply_to: Optional[Message] = None,
    ) -> Generator:
        """Resolve one ownership request at the origin.

        Returns ``(status, state_name, version, data)`` where *data* is the
        page bytes to install (None when the transfer is skipped or the
        requester is the origin itself).

        When *reply_to* is given (a remote request), the reply is posted
        **before** the per-page busy flag clears: a later operation for the
        same page must not be able to post an invalidation that overtakes
        this grant on the in-order connection.
        """
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        origin = proc.origin
        entry, created = self.directory.get_or_create(vpn)
        if created:
            # materialize the origin's implicit exclusive ownership
            proc.node_state(origin).page_table.set_state(
                vpn, PageState.EXCLUSIVE, data_version=0
            )
            proc.node_state(origin).frames.frame(vpn)
        if entry.busy:
            # early-out: trylock on the per-page protocol state failed —
            # the requester lost the race and must back off and retry
            result = (_RETRY, None, 0, None)
            if reply_to is not None:
                yield from proc.cluster.net.send(
                    reply_to.make_reply(MsgType.PAGE_RETRY, {"outcome": _RETRY})
                )
            return result
        entry.busy = True
        try:
            yield engine.timeout(params.protocol_handler_cost)
            if write:
                result = yield from self._grant_exclusive(
                    entry, requester, known_version
                )
            else:
                result = yield from self._grant_shared(
                    entry, requester, known_version
                )
            if reply_to is not None:
                _status, state_name, version, data = result
                yield from proc.cluster.net.send(
                    reply_to.make_reply(
                        MsgType.PAGE_GRANT,
                        {
                            "outcome": _GRANT,
                            "state": state_name,
                            "version": version,
                        },
                        page_data=data,
                    )
                )
        finally:
            entry.busy = False
        return result

    def _grant_exclusive(
        self, entry: PageEntry, requester: int, known_version: int
    ) -> Generator:
        proc = self.proc
        origin = proc.origin
        if entry.writer == requester:
            # the current writer re-requesting (a request that was already
            # in flight when its earlier grant landed): reaffirm — it holds
            # the only current copy, so there is nothing to move or bump
            return (_GRANT, PageState.EXCLUSIVE.value, entry.data_version, None)
        losers = sorted(entry.owners - {requester})
        yield from self._revoke(entry, losers, downgrade=False)
        current = entry.data_version
        data = self._data_for_grant(entry, requester, known_version)
        new_version = current + 1
        entry.data_version = new_version
        entry.owners = {requester}
        entry.writer = requester
        if requester == origin:
            # local "install": the PTE update is done by acquire_page; the
            # frame is already current at the origin after the revocations
            pass
        return (_GRANT, PageState.EXCLUSIVE.value, new_version, data)

    def _grant_shared(
        self, entry: PageEntry, requester: int, known_version: int
    ) -> Generator:
        proc = self.proc
        origin = proc.origin
        if entry.writer == requester:
            # the exclusive writer re-requesting read access (a stale
            # retry): its mapping already covers reads — reaffirm it;
            # downgrading here would strand dirty data without a flush
            return (_GRANT, PageState.EXCLUSIVE.value, entry.data_version, None)
        if entry.writer is not None:
            yield from self._revoke(entry, [entry.writer], downgrade=True)
        entry.writer = None
        current = entry.data_version
        data = self._data_for_grant(entry, requester, known_version)
        entry.owners.add(requester)
        return (_GRANT, PageState.SHARED.value, current, data)

    def _data_for_grant(
        self, entry: PageEntry, requester: int, known_version: int
    ) -> Optional[bytes]:
        """Page bytes to attach to a grant, or None when the transfer is
        skipped.  The transfer is always skippable when the requester holds
        the current version; when it does not, the revocation step has left
        current data at the origin."""
        proc = self.proc
        if requester == proc.origin:
            return None  # local grant: no wire transfer
        current = entry.data_version
        if known_version == current:
            # requester is up to date; even with the skip optimization
            # disabled, a transfer is only possible if the origin copy is
            # current (it may not be when the requester is the sole holder)
            if proc.cluster.params.enable_transfer_skip or not self._origin_current(
                entry.vpn, current
            ):
                proc.stats.transfers_skipped += 1
                return None
        data = self._origin_page_bytes(entry.vpn, current)
        proc.stats.pages_transferred += 1
        return data

    def _origin_current(self, vpn: int, version: int) -> bool:
        pte = self.proc.node_state(self.proc.origin).page_table.lookup(vpn)
        return pte is not None and pte.data_version == version

    def _origin_page_bytes(self, vpn: int, version: int) -> bytes:
        """The current page contents, which the revocation step always
        leaves at the origin."""
        proc = self.proc
        origin_pte = proc.node_state(proc.origin).page_table.lookup(vpn)
        if origin_pte is None or origin_pte.data_version != version:
            raise ProtocolError(
                f"origin copy of page {vpn:#x} is stale "
                f"(have {origin_pte and origin_pte.data_version}, need {version})"
            )
        return bytes(proc.node_state(proc.origin).frames.frame(vpn))

    def _revoke(
        self, entry: PageEntry, losers: List[int], downgrade: bool
    ) -> Generator:
        """Revoke (or downgrade) ownership from *losers*, collecting acks.
        An exclusive loser flushes its dirty page, which is installed in
        the origin's frame; the origin then always holds current data."""
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        origin = proc.origin
        vpn = entry.vpn
        remote_losers = [n for n in losers if n != origin]
        if origin in losers:
            yield engine.timeout(params.invalidation_handler_cost)
            origin_pte = proc.node_state(origin).page_table.ensure(vpn)
            # the origin never discards its frame: it is the flush target
            origin_pte.state = PageState.SHARED if downgrade else PageState.INVALID
        if remote_losers:
            proc.stats.invalidations_sent += len(remote_losers)
            pending = []
            for node in remote_losers:
                msg = Message(
                    MsgType.PAGE_INVALIDATE,
                    src=origin,
                    dst=node,
                    payload={"pid": proc.pid, "vpn": vpn, "downgrade": downgrade},
                )
                pending.append(
                    engine.process(
                        proc.cluster.net.request(msg), name=f"inval:{vpn:#x}->{node}"
                    )
                )
            acks = yield engine.all_of(pending)
            flushes = [ack for ack in acks if ack.page_data is not None]
            if len(flushes) > 1:
                raise ProtocolError(
                    f"page {vpn:#x}: {len(flushes)} dirty flushes; "
                    "single-writer invariant broken"
                )
            for ack in flushes:
                proc.stats.pages_transferred += 1  # dirty flush on the wire
                proc.node_state(origin).frames.install(vpn, ack.page_data)
                origin_pte = proc.node_state(origin).page_table.ensure(vpn)
                origin_pte.data_version = entry.data_version
                if downgrade:
                    # the origin now also holds a valid reader copy
                    origin_pte.state = PageState.SHARED
                    entry.owners.add(origin)
        if downgrade:
            # downgraded losers stay owners (readers); nothing to remove
            return
        for node in losers:
            entry.owners.discard(node)

    def revoke_range(self, vpn_start: int, vpn_end: int) -> Generator:
        """Pull every page in ``[vpn_start, vpn_end)`` back to exclusive
        origin ownership, flushing dirty remote copies.  Used by protection
        downgrades (mprotect), where remote write ability must be revoked
        through the protocol so directory and PTEs stay consistent."""
        proc = self.proc
        origin = proc.origin
        entries = [
            entry
            for _vpn, entry in self.directory.entries()
            if vpn_start <= entry.vpn < vpn_end
        ]
        for entry in entries:
            entry.busy = True
            try:
                losers = sorted(entry.owners - {origin})
                yield from self._revoke(entry, losers, downgrade=False)
                entry.owners = {origin}
                entry.writer = origin
                # keep data_version: recreating from zero could collide
                # with stale remote copies and wrongly skip transfers
                proc.node_state(origin).page_table.set_state(
                    entry.vpn, PageState.EXCLUSIVE, data_version=entry.data_version
                )
            finally:
                entry.busy = False

    # ------------------------------------------------------------------
    # owner side: servicing revocations
    # ------------------------------------------------------------------

    def handle_invalidate_msg(self, msg: Message) -> Generator:
        """Handler for :data:`MsgType.PAGE_INVALIDATE` at an owner node."""
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        node = msg.dst
        vpn = msg.payload["vpn"]
        downgrade = msg.payload["downgrade"]
        state = proc.node_state(node)
        yield engine.timeout(params.invalidation_handler_cost)
        # wait out any in-flight fault that is mid-install for this page
        # (its grant was FIFO-ordered ahead of this invalidation)
        while True:
            installing = [
                f
                for f in state.inflight.get(vpn, ())
                if f.installing and not f.done.triggered
            ]
            if not installing:
                break
            yield installing[0].done
        # apply synchronously: flush-decision, data grab and PTE change
        # happen with no intervening yield
        pte = state.page_table.lookup(vpn)
        dirty: Optional[bytes] = None
        if pte is not None and pte.state is PageState.EXCLUSIVE:
            frame = state.frames.peek(vpn)
            dirty = bytes(frame) if frame is not None else bytes(params.page_size)
        if pte is not None:
            pte.state = PageState.SHARED if downgrade else PageState.INVALID
        if proc.tracer is not None:
            proc.tracer.record(
                time_us=engine.now,
                node=node,
                tid=-1,
                fault_type="invalidate",
                site="",
                addr=vpn * params.page_size,
            )
        yield from proc.cluster.net.send(
            msg.make_reply(
                MsgType.PAGE_INVALIDATE_ACK, {"ok": True}, page_data=dirty
            )
        )

    # ------------------------------------------------------------------
    # invariant checking (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the directory and all page tables agree.  Only valid at
        quiescent points (no in-flight protocol operations)."""
        self.directory.check_invariants()
        proc = self.proc
        for vpn, entry in self.directory.entries():
            if entry.busy:
                continue
            for node, state in proc.iter_node_states():
                pte = state.page_table.lookup(vpn)
                pte_state = pte.state if pte is not None else PageState.INVALID
                if node in entry.owners:
                    assert pte_state is not PageState.INVALID, (
                        f"page {vpn:#x}: node {node} is a directory owner "
                        f"but its PTE is invalid"
                    )
                    if entry.writer == node:
                        assert pte_state is PageState.EXCLUSIVE
                    else:
                        assert pte_state is PageState.SHARED
                    assert pte.data_version == entry.data_version, (
                        f"page {vpn:#x}: node {node} holds version "
                        f"{pte.data_version}, directory says {entry.data_version}"
                    )
                else:
                    assert pte_state is PageState.INVALID, (
                        f"page {vpn:#x}: node {node} has PTE {pte_state} "
                        f"but is not a directory owner"
                    )
