"""The page-level memory-consistency protocol (§III-B).

A read-replicate / write-invalidate, multiple-reader / single-writer
protocol providing sequential consistency:

* Pages start implicitly **exclusive at the origin** — a process that never
  migrates never touches the directory.
* A **read** fault gets a shared replica: if some node holds the page
  exclusively, that writer is downgraded and its dirty data flushed to the
  page's *home* first.
* A **write** fault gets exclusive ownership: the home revokes ownership
  from every other owner (including itself) and collects acknowledgements;
  a revoked exclusive owner flushes its dirty page back with the ack.
* Page data accompanies a grant only when the requester's cached copy is
  stale ("the origin simply grants ownership without transferring the page
  data when the remote already has the up-to-date one").
* The directory serializes operations per page with a busy flag; a request
  that catches the page mid-operation is told to **retry** and backs off —
  the slow mode of §V-D's bimodal fault-latency distribution.

Every directory interaction goes through the pluggable
:class:`~repro.core.directory.CoherenceDirectory` layer.  Under the
paper's :class:`~repro.core.directory.OriginDirectory` the home of every
page is the origin and the protocol behaves exactly as §III-B describes;
under :class:`~repro.core.directory.ShardedDirectory` each page's
metadata (and its flush target / grant source) lives at a per-page home
node, requests are home-routed — resolved through the per-node owner-hint
cache, with a redirect when a hint is stale — and the origin stops being
a serialization point for the whole address space.

Timing-race note: a grant reply and a subsequent invalidation for the same
page travel the same in-order RC connection (both originate at the page's
home), so the grant is always *dispatched* first; the requester marks its
in-flight fault ``installing`` synchronously upon receiving the grant, and
the invalidation handler waits for installing faults to finish before
revoking.  This mirrors the careful PTE-update ordering §III-C describes
for the real kernel implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from repro.core.directory import PageEntry, make_directory
from repro.core.errors import NodeFailedError, ProtocolError
from repro.memory.page_table import PageState
from repro.net.messages import (
    PAYLOAD_ACK_OK,
    PAYLOAD_REDIRECT,
    PAYLOAD_RETRY,
    Message,
    MsgType,
    obtain_message,
)
from repro.obs.tracing import maybe_span

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fault import InFlightFault
    from repro.core.process import DexProcess

#: grant outcomes, shipped in reply payloads
_RETRY = "retry"
_GRANT = "grant"
_REDIRECT = "redirect"
#: the process was failed by fail-stop recovery (chaos runs only)
_FAILED = "failed"


class ConsistencyProtocol:
    """One instance per distributed process; directory placement is
    delegated to the configured :class:`CoherenceDirectory` backend."""

    def __init__(self, proc: "DexProcess"):
        self.proc = proc
        self.directory = make_directory(proc)

    # ------------------------------------------------------------------
    # requester side (runs at the faulting node, called by the leader)
    # ------------------------------------------------------------------

    def acquire_page(
        self, node: int, vpn: int, write: bool, fault: "InFlightFault"
    ) -> Generator:
        """Obtain (shared or exclusive) ownership of *vpn* for *node*,
        retrying with back-off when the directory is busy.  Installs the
        page data and the PTE; returns the number of retries."""
        proc = self.proc
        proc.check_failed()
        engine = proc.cluster.engine
        params = proc.cluster.params
        page_table = proc.node_state(node).page_table
        retries = 0
        while True:
            pte = page_table.ensure(vpn)
            if pte.writable if write else pte.readable:
                # resolved while we backed off (e.g. another fault on this
                # node won an exclusive grant that covers us); requesting
                # again could downgrade our own node's ownership
                return retries
            local = self.directory.hosts(node, vpn)
            if local:
                outcome = yield from self.handle_request(
                    node, vpn, write, pte.data_version
                )
            else:
                target = yield from self._resolve_home(node, vpn)
                reply = yield from proc.cluster.net.request(
                    obtain_message(
                        MsgType.PAGE_REQUEST,
                        src=node,
                        dst=target,
                        payload={
                            "pid": proc.pid,
                            "vpn": vpn,
                            "write": write,
                            "known_version": pte.data_version,
                        },
                    )
                )
                if reply.payload["outcome"] == _REDIRECT:
                    # stale owner hint: the node we asked no longer hosts
                    # this page's shard — drop the hint and re-resolve
                    proc.stats.hint_stale += 1
                    proc.node_state(node).owner_hints.invalidate(vpn)
                    if proc.sanitizer is not None:
                        proc.sanitizer.on_redirect(vpn, node, target)
                    proc.cluster.net.recycle(reply)
                    continue
                self._note_home(node, vpn, target)
                outcome = (
                    reply.payload["outcome"],
                    reply.payload.get("state"),
                    reply.payload.get("version", 0),
                    reply.page_data,
                )
                if outcome[0] != _FAILED:
                    # fully extracted (the _FAILED branch below still
                    # needs the payload, but it only occurs in chaos runs
                    # where recycling is a no-op anyway)
                    proc.cluster.net.recycle(reply)
            status, state_name, version, data = outcome
            if status == _FAILED:
                # the home could not complete the grant because fail-stop
                # recovery failed the process; surface the verdict here
                raise NodeFailedError(
                    reply.payload.get("failed_node", -1),
                    reply.payload.get("error", "process failed"),
                )
            if status == _RETRY:
                retries += 1
                proc.stats.record_busy_retry(vpn)
                yield engine.timeout(params.fault_retry_backoff)
                continue
            # mark installing *synchronously* with the grant arrival so a
            # following invalidation (FIFO-ordered behind the grant) waits
            fault.installing = True
            if not local:
                frames = proc.node_state(node).frames
                if data is not None:
                    if vpn not in frames:
                        yield engine.timeout(params.page_alloc_cost)
                    frames.install(vpn, data)
            yield engine.timeout(params.pte_update_cost)
            # final PTE update is synchronous after the last yield: the
            # caller's data access runs in the same engine step
            pte = page_table.ensure(vpn)
            pte.state = PageState(state_name)
            pte.data_version = version
            return retries

    def _resolve_home(self, node: int, vpn: int) -> Generator:
        """Which node should *node* send its ownership request to?

        Origin backend: every node knows the directory lives at the
        origin.  Sharded backend: the origin owns the shard map; any other
        node consults its owner-hint LRU and, on a miss, resolves the home
        through the origin (the hop that repeat faults skip)."""
        proc = self.proc
        if self.directory.backend != "sharded" or node == proc.origin:
            return self.directory.home(vpn)
        hints = proc.node_state(node).owner_hints
        hinted = hints.get(vpn)
        if hinted is not None and hinted != node:
            proc.stats.hint_hits += 1
            return hinted
        proc.stats.hint_misses += 1
        proc.stats.home_lookups += 1
        with maybe_span(proc.obs, "protocol.resolve_home", node=node, vpn=vpn):
            reply = yield from proc.cluster.net.request(
                obtain_message(
                    MsgType.PAGE_HOME_LOOKUP,
                    src=node,
                    dst=proc.origin,
                    payload={"pid": proc.pid, "vpn": vpn},
                )
            )
        home = reply.payload["home"]
        proc.cluster.net.recycle(reply)
        hints.insert(vpn, home)
        if proc.sanitizer is not None:
            proc.sanitizer.on_home_lookup(vpn, node, home)
        return home

    def _note_home(self, node: int, vpn: int, home: int) -> None:
        """Refresh *node*'s owner hint after *home* answered for *vpn*."""
        if self.directory.backend == "sharded" and node != self.proc.origin:
            self.proc.node_state(node).owner_hints.insert(vpn, home)

    # ------------------------------------------------------------------
    # home directory side
    # ------------------------------------------------------------------

    def handle_home_lookup_msg(self, msg: Message) -> Generator:
        """Origin message handler for :data:`MsgType.PAGE_HOME_LOOKUP`:
        resolve a page to its home shard node from the origin-owned map."""
        proc = self.proc
        yield proc.cluster.engine.timeout(proc.cluster.params.home_lookup_cost)
        yield from proc.cluster.net.send(
            msg.make_reply(
                MsgType.PAGE_HOME_INFO,
                {"home": self.directory.home(msg.payload["vpn"])},
            )
        )

    def handle_page_request_msg(self, msg: Message) -> Generator:
        """Home-node message handler for :data:`MsgType.PAGE_REQUEST`."""
        payload = msg.payload
        vpn = payload["vpn"]
        if not self.directory.hosts(msg.dst, vpn):
            # mis-routed request (stale owner hint after a shard remap):
            # this node does not host the page's entry, so it cannot
            # serialize the operation — bounce the requester back to the
            # resolution path instead of guessing
            yield from self.proc.cluster.net.send(
                msg.make_reply(MsgType.PAGE_REDIRECT, PAYLOAD_REDIRECT)
            )
            return
        yield from self.handle_request(
            msg.src,
            vpn,
            payload["write"],
            payload["known_version"],
            reply_to=msg,
        )

    def handle_request(
        self,
        requester: int,
        vpn: int,
        write: bool,
        known_version: int,
        reply_to: Optional[Message] = None,
    ) -> Generator:
        """Resolve one ownership request at the page's home.

        Returns ``(status, state_name, version, data)`` where *data* is the
        page bytes to install (None when the transfer is skipped or the
        requester is the home itself).

        When *reply_to* is given (a remote request), the reply is posted
        **before** the per-page busy flag clears: a later operation for the
        same page must not be able to post an invalidation that overtakes
        this grant on the in-order connection.
        """
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        origin = proc.origin
        if proc.failed is not None:
            # fail-stop recovery failed this process: no more grants — a
            # local requester gets the verdict, a remote one an error reply
            # (its faulting thread re-raises it)
            if reply_to is None:
                raise proc.failed
            result = (_FAILED, None, 0, None)
            yield from proc.cluster.net.send(
                reply_to.make_reply(MsgType.PAGE_GRANT, {
                    "outcome": _FAILED,
                    "error": str(proc.failed),
                    "failed_node": getattr(proc.failed, "node", -1),
                })
            )
            return result
        home = self.directory.home(vpn)
        proc.stats.record_directory_request(home)
        self.directory.shard(home).requests_served += 1
        entry, created = self.directory.get_or_create(vpn)
        if created:
            # materialize the origin's implicit exclusive ownership
            proc.node_state(origin).page_table.set_state(
                vpn, PageState.EXCLUSIVE, data_version=0
            )
            proc.node_state(origin).frames.frame(vpn)
        if entry.busy:
            # early-out: trylock on the per-page protocol state failed —
            # the requester lost the race and must back off and retry
            entry.busy_retries += 1
            result = (_RETRY, None, 0, None)
            if proc.sanitizer is not None:
                proc.sanitizer.on_retry(vpn, requester)
            if reply_to is not None:
                yield from proc.cluster.net.send(
                    reply_to.make_reply(MsgType.PAGE_RETRY, PAYLOAD_RETRY)
                )
            return result
        entry.busy = True
        try:
            with maybe_span(
                proc.obs, "protocol.grant",
                node=home, vpn=vpn, write=write, requester=requester,
            ):
                yield engine.timeout(params.protocol_handler_cost)
                try:
                    if write:
                        result = yield from self._grant_exclusive(
                            entry, requester, known_version
                        )
                    else:
                        result = yield from self._grant_shared(
                            entry, requester, known_version
                        )
                except NodeFailedError as err:
                    # a node died mid-grant holding unrecoverable state
                    # (chaos runs only): surface the verdict to the
                    # requester instead of crashing the handler process
                    if reply_to is None:
                        raise
                    result = (_FAILED, None, 0, None)
                    yield from proc.cluster.net.send(
                        reply_to.make_reply(MsgType.PAGE_GRANT, {
                            "outcome": _FAILED,
                            "error": str(err),
                            "failed_node": err.node,
                        })
                    )
                    return result
                if proc.sanitizer is not None:
                    # the grant is decided: the entry must satisfy MRSW right
                    # now, and the requester's copy inherits the page's causal
                    # history (it travels in-order ahead of any invalidation)
                    if proc.sanitizer.transition_checks:
                        self.directory.check_entry(vpn, entry)
                    proc.sanitizer.on_grant(vpn, requester, write)
                if reply_to is not None:
                    _status, state_name, version, data = result
                    yield from proc.cluster.net.send(
                        reply_to.make_reply(
                            MsgType.PAGE_GRANT,
                            {
                                "outcome": _GRANT,
                                "state": state_name,
                                "version": version,
                            },
                            page_data=data,
                        )
                    )
        finally:
            entry.busy = False
        return result

    def _grant_exclusive(
        self, entry: PageEntry, requester: int, known_version: int
    ) -> Generator:
        home = self.directory.home(entry.vpn)
        if entry.writer == requester:
            # the current writer re-requesting (a request that was already
            # in flight when its earlier grant landed): reaffirm — it holds
            # the only current copy, so there is nothing to move or bump
            return (_GRANT, PageState.EXCLUSIVE.value, entry.data_version, None)
        losers = sorted(entry.owners - {requester})
        yield from self._revoke(entry, losers, downgrade=False, requester=requester)
        current = entry.data_version
        data = self._data_for_grant(entry, requester, known_version)
        new_version = current + 1
        entry.data_version = new_version
        entry.owners = {requester}
        entry.writer = requester
        if requester == home:
            # local "install": the PTE update is done by acquire_page; the
            # frame is already current at the home after the revocations
            pass
        return (_GRANT, PageState.EXCLUSIVE.value, new_version, data)

    def _grant_shared(
        self, entry: PageEntry, requester: int, known_version: int
    ) -> Generator:
        if entry.writer == requester:
            # the exclusive writer re-requesting read access (a stale
            # retry): its mapping already covers reads — reaffirm it;
            # downgrading here would strand dirty data without a flush
            return (_GRANT, PageState.EXCLUSIVE.value, entry.data_version, None)
        if entry.writer is not None:
            yield from self._revoke(
                entry, [entry.writer], downgrade=True, requester=requester
            )
        entry.writer = None
        current = entry.data_version
        data = self._data_for_grant(entry, requester, known_version)
        entry.owners.add(requester)
        return (_GRANT, PageState.SHARED.value, current, data)

    def _data_for_grant(
        self, entry: PageEntry, requester: int, known_version: int
    ) -> Optional[bytes]:
        """Page bytes to attach to a grant, or None when the transfer is
        skipped.  The transfer is always skippable when the requester holds
        the current version; when it does not, the revocation step has left
        current data at the home."""
        proc = self.proc
        home = self.directory.home(entry.vpn)
        if requester == home:
            return None  # local grant: no wire transfer
        current = entry.data_version
        if known_version == current:
            # requester is up to date; even with the skip optimization
            # disabled, a transfer is only possible if the home copy is
            # current (it may not be when the requester is the sole holder)
            if proc.cluster.params.enable_transfer_skip or not self._home_current(
                home, entry.vpn, current
            ):
                proc.stats.transfers_skipped += 1
                return None
        data = self._home_page_bytes(home, entry.vpn, current)
        proc.stats.pages_transferred += 1
        return data

    def _home_current(self, home: int, vpn: int, version: int) -> bool:
        pte = self.proc.node_state(home).page_table.lookup(vpn)
        return pte is not None and pte.data_version == version

    def _home_page_bytes(self, home: int, vpn: int, version: int) -> bytes:
        """The current page contents, which the revocation step always
        leaves at the page's home."""
        proc = self.proc
        home_pte = proc.node_state(home).page_table.lookup(vpn)
        if home_pte is None or home_pte.data_version != version:
            raise ProtocolError(
                f"home copy of page {vpn:#x} is stale "
                f"(have {home_pte and home_pte.data_version}, need {version})"
            )
        return bytes(proc.node_state(home).frames.frame(vpn))

    def _revoke(
        self,
        entry: PageEntry,
        losers: List[int],
        downgrade: bool,
        requester: int = -1,
    ) -> Generator:
        """Revoke (or downgrade) ownership from *losers*, collecting acks.
        An exclusive loser flushes its dirty page, which is installed in
        the home's frame; the home then always holds current data.
        *requester* is the node whose request triggered the revocation —
        shipped in the invalidation payload so owner-side traces can name
        both parties of the conflict."""
        with maybe_span(
            self.proc.obs, "protocol.revoke",
            node=self.directory.home(entry.vpn), vpn=entry.vpn,
            downgrade=downgrade, losers=len(losers),
        ):
            yield from self._revoke_impl(entry, losers, downgrade, requester)

    def _revoke_impl(
        self,
        entry: PageEntry,
        losers: List[int],
        downgrade: bool,
        requester: int = -1,
    ) -> Generator:
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        vpn = entry.vpn
        home = self.directory.home(vpn)
        remote_losers = [n for n in losers if n != home]
        if home in losers:
            yield engine.timeout(params.invalidation_handler_cost)
            home_pte = proc.node_state(home).page_table.ensure(vpn)
            # the home never discards its frame: it is the flush target
            home_pte.state = PageState.SHARED if downgrade else PageState.INVALID
            if proc.sanitizer is not None:
                proc.sanitizer.on_revoke(vpn, home, downgrade, requester)
        if remote_losers:
            proc.stats.invalidations_sent += len(remote_losers)
            pending = []
            for node in remote_losers:
                msg = obtain_message(
                    MsgType.PAGE_INVALIDATE,
                    src=home,
                    dst=node,
                    payload={
                        "pid": proc.pid,
                        "vpn": vpn,
                        "downgrade": downgrade,
                        "requester": requester,
                    },
                )
                inval_proc = engine.process(
                    proc.cluster.net.request(msg), name=f"inval:{vpn:#x}->{node}"
                )
                if proc.obs is not None:
                    # the fan-out runs as child processes; seed them with the
                    # revoke span so their net spans stay in this trace
                    proc.obs.carry(inval_proc)
                pending.append((node, inval_proc))
            chaos = proc.cluster.chaos
            if chaos is None:
                acks = yield engine.all_of([p for _, p in pending])
                acked = remote_losers
            else:
                # reliable mode: collect acks one by one so a loser that
                # fail-stops mid-revocation can be tolerated — by the time
                # its request fails, recovery has already reclaimed its copy
                acks = []
                acked = []
                for node, inval_proc in pending:
                    try:
                        acks.append((yield inval_proc))
                        acked.append(node)
                    except NodeFailedError:
                        if not chaos.is_fenced(node):
                            raise
                        if proc.failed is not None:
                            # the dead loser held the only current copy and
                            # the process could not survive it
                            raise NodeFailedError(
                                node,
                                f"page {vpn:#x}: revocation target node "
                                f"{node} died holding unrecoverable state",
                            )
                        # recovery already dropped the dead loser's copy:
                        # an ack (necessarily without flush data) is implied
            if proc.sanitizer is not None:
                # each ack proves the loser's accesses are complete; its
                # copy's causal history flows into the page's home clock
                for node in acked:
                    proc.sanitizer.on_revoke(vpn, node, downgrade, requester)
            flushes = [ack for ack in acks if ack.page_data is not None]
            if len(flushes) > 1:
                raise ProtocolError(
                    f"page {vpn:#x}: {len(flushes)} dirty flushes; "
                    "single-writer invariant broken"
                )
            for ack in flushes:
                proc.stats.pages_transferred += 1  # dirty flush on the wire
                proc.node_state(home).frames.install(vpn, ack.page_data)
                home_pte = proc.node_state(home).page_table.ensure(vpn)
                home_pte.data_version = entry.data_version
                if downgrade:
                    # the home now also holds a valid reader copy
                    home_pte.state = PageState.SHARED
                    entry.owners.add(home)
                    if proc.sanitizer is not None:
                        # grant-equivalent: the flush left the home with a
                        # readable copy, inheriting the page's history
                        proc.sanitizer.on_grant(vpn, home, write=False)
            for ack in acks:
                proc.cluster.net.recycle(ack)
        if downgrade:
            # downgraded losers stay owners (readers); nothing to remove
            return
        for node in losers:
            entry.owners.discard(node)

    def revoke_range(self, vpn_start: int, vpn_end: int) -> Generator:
        """Pull every page in ``[vpn_start, vpn_end)`` back to exclusive
        origin ownership, flushing dirty remote copies.  Used by protection
        downgrades (mprotect), where remote write ability must be revoked
        through the protocol so directory and PTEs stay consistent.

        Each page is re-acquired through the normal request path, so under
        the sharded backend the revocations run at (and the flushed data
        lands at, then transfers back from) each page's home."""
        from repro.core.fault import InFlightFault

        proc = self.proc
        engine = proc.cluster.engine
        origin = proc.origin
        page_table = proc.node_state(origin).page_table
        for vpn, _entry in self.directory.entries_in_range(vpn_start, vpn_end):
            pte = page_table.lookup(vpn)
            if pte is not None and pte.writable:
                continue  # already exclusive at the origin
            fault = InFlightFault(
                vpn=vpn,
                write=True,
                leader_tid=-1,
                done=engine.event(name=f"revoke@{vpn:#x}"),
            )
            try:
                yield from self.acquire_page(origin, vpn, True, fault)
            finally:
                fault.done.succeed()
            if proc.sanitizer is not None:
                proc.sanitizer.on_transition(vpn)

    # ------------------------------------------------------------------
    # owner side: servicing revocations
    # ------------------------------------------------------------------

    def handle_invalidate_msg(self, msg: Message) -> Generator:
        """Handler for :data:`MsgType.PAGE_INVALIDATE` at an owner node."""
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        node = msg.dst
        vpn = msg.payload["vpn"]
        downgrade = msg.payload["downgrade"]
        state = proc.node_state(node)
        with maybe_span(
            proc.obs, "protocol.invalidate",
            node=node, vpn=vpn, downgrade=downgrade,
            # the node whose access triggered this revocation — with the
            # victim (node), the (requester -> victim) ping-pong pair the
            # lens aggregates
            requester=msg.payload.get("requester", msg.src),
        ):
            yield engine.timeout(params.invalidation_handler_cost)
            # wait out any in-flight fault that is mid-install for this page
            # (its grant was FIFO-ordered ahead of this invalidation)
            while True:
                installing = [
                    f
                    for f in state.inflight.get(vpn, ())
                    if f.installing and not f.done.triggered
                ]
                if not installing:
                    break
                yield installing[0].done
            # apply synchronously: flush-decision, data grab and PTE change
            # happen with no intervening yield
            pte = state.page_table.lookup(vpn)
            dirty: Optional[bytes] = None
            if pte is not None and pte.state is PageState.EXCLUSIVE:
                frame = state.frames.peek(vpn)
                dirty = bytes(frame) if frame is not None else bytes(params.page_size)
            if pte is not None:
                pte.state = PageState.SHARED if downgrade else PageState.INVALID
        if proc.tracer is not None:
            proc.tracer.record(
                time_us=engine.now,
                node=node,
                tid=-1,
                fault_type="invalidate",
                site="",
                addr=vpn * params.page_size,
                # the node whose access triggered this revocation (falling
                # back to the revoking home for old-style messages), so
                # false-sharing reports can name both parties
                src_node=msg.payload.get("requester", msg.src),
            )
        yield from proc.cluster.net.send(
            msg.make_reply(
                MsgType.PAGE_INVALIDATE_ACK, PAYLOAD_ACK_OK, page_data=dirty
            )
        )

    # ------------------------------------------------------------------
    # invariant checking (used by tests)
    # ------------------------------------------------------------------

    def check_page(
        self, vpn: int, entry: PageEntry, skip_inflight: bool = False
    ) -> None:
        """Assert every node's PTE agrees with *entry*.

        With *skip_inflight*, nodes that have an active in-flight fault for
        the page are excused — their PTE legitimately lags the directory
        while a grant is traveling.  That is the per-transition mode the
        coherence sanitizer uses; the quiescent teardown check passes
        False and holds every node to account."""
        for node, state in self.proc.iter_node_states():
            if skip_inflight:
                flist = state.inflight.get(vpn)
                if flist and any(not f.done.triggered for f in flist):
                    continue
            pte = state.page_table.lookup(vpn)
            pte_state = pte.state if pte is not None else PageState.INVALID
            if node in entry.owners:
                assert pte_state is not PageState.INVALID, (
                    f"page {vpn:#x}: node {node} is a directory owner "
                    f"but its PTE is invalid"
                )
                if entry.writer == node:
                    assert pte_state is PageState.EXCLUSIVE, (
                        f"page {vpn:#x}: node {node} is the writer but its "
                        f"PTE is {pte_state}"
                    )
                else:
                    assert pte_state is PageState.SHARED, (
                        f"page {vpn:#x}: node {node} is a reader owner but "
                        f"its PTE is {pte_state}"
                    )
                assert pte.data_version == entry.data_version, (
                    f"page {vpn:#x}: node {node} holds version "
                    f"{pte.data_version}, directory says {entry.data_version}"
                )
            else:
                assert pte_state is PageState.INVALID, (
                    f"page {vpn:#x}: node {node} has PTE {pte_state} "
                    f"but is not a directory owner"
                )

    def check_invariants(self) -> None:
        """Assert the directory and all page tables agree.  Only valid at
        quiescent points (no in-flight protocol operations); the coherence
        sanitizer applies the same per-page check at every ownership
        transition via :meth:`check_page`."""
        self.directory.check_invariants()
        for vpn, entry in self.directory.entries():
            if entry.busy:
                continue
            self.check_page(vpn, entry)
