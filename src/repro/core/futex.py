"""The distributed futex (§III-A).

"DeX supports futexes [...] the core mechanism for implementing thread
synchronization primitives on Linux.  When a remote thread calls a thread
synchronization operation, the operation is effectively translated to one
or more futex system calls.  The futex operations are forwarded to their
original threads and handled at the origin through the original futex
implementation."

The wait queue lives at the origin.  The value check of ``futex_wait``
reads the futex word *through the distributed address space at the origin*,
so a futex word that is exclusively owned by some remote node is pulled
back by the consistency protocol exactly as it would be in the real system.
The check and the enqueue happen with no intervening yield, giving the
atomicity the kernel gets from the futex hash-bucket lock.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Generator, Optional, Tuple

from repro.obs.tracing import maybe_span
from repro.sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess

#: futex words are 32-bit integers, as on Linux
FUTEX_WORD = 4


class FutexTable:
    """Per-process futex wait queues, kept at the origin."""

    def __init__(self, proc: "DexProcess"):
        self.proc = proc
        #: addr -> FIFO of (wake event, waiting tid); the tid identifies
        #: the logical thread for the deadlock detector and for the
        #: sanitizer's wake happens-before edge
        self._queues: Dict[int, Deque[Tuple[Event, int]]] = {}
        #: set by fail-stop recovery when the thread set is broken: any
        #: further wait would sleep for a wake that may never come, so it
        #: raises this instead (see :meth:`fail_all`)
        self.poisoned: Optional[BaseException] = None

    def read_word(self, addr: int) -> int:
        """Synchronous read of the futex word from the origin's frames.
        Callers must have faulted the page to the origin first."""
        raw = self.proc.node_state(self.proc.origin).frames.read(addr, FUTEX_WORD)
        return struct.unpack("<I", raw)[0]

    def wait(self, origin_ctx, addr: int, expected: int) -> Generator:
        """FUTEX_WAIT at the origin: if the word still equals *expected*,
        sleep until woken; otherwise return ``"eagain"`` immediately.

        *origin_ctx* is the execution context of the paired original
        thread; its fault path pulls the futex page to the origin.
        """
        proc = self.proc
        params = proc.cluster.params
        if self.poisoned is not None:
            raise self.poisoned
        proc.stats.futex_waits += 1
        with maybe_span(
            proc.obs, "futex.wait",
            node=proc.origin, tid=origin_ctx.tid, addr=addr,
        ) as span:
            yield proc.cluster.engine.timeout(params.futex_op_cost)
            # fault the futex page to the origin (read access), then compare
            # and enqueue atomically (no yields in between)
            yield from origin_ctx.fault_in(addr, FUTEX_WORD, write=False)
            if self.read_word(addr) != expected:
                if span is not None:
                    span.attrs["result"] = "eagain"
                return "eagain"
            tid = origin_ctx.tid
            detector = proc.deadlocks
            if detector is not None:
                # records the block frame and checks the wait-for graph for a
                # cycle *before* we sleep; raises DeadlockError on one
                detector.on_futex_wait(tid, addr)
            waiter = proc.cluster.engine.event(name=f"futex@{addr:#x}")
            self._queues.setdefault(addr, deque()).append((waiter, tid))
            try:
                yield waiter
            finally:
                if detector is not None:
                    detector.on_futex_resume(tid)
        return "woken"

    def wake(self, origin_ctx, addr: int, count: int) -> Generator:
        """FUTEX_WAKE at the origin: wake up to *count* waiters; returns
        how many were woken."""
        proc = self.proc
        params = proc.cluster.params
        proc.stats.futex_wakes += 1
        with maybe_span(
            proc.obs, "futex.wake",
            node=proc.origin, tid=origin_ctx.tid, addr=addr,
        ):
            yield proc.cluster.engine.timeout(params.futex_op_cost)
            queue = self._queues.get(addr)
            woken = 0
            sanitizer = proc.sanitizer
            while queue and woken < count:
                waiter, waiter_tid = queue.popleft()
                if sanitizer is not None:
                    # the wake orders the waker's past before the woken
                    # thread's future
                    sanitizer.on_futex_wake(origin_ctx.tid, waiter_tid)
                waiter.succeed()
                woken += 1
            if queue is not None and not queue:
                del self._queues[addr]
        return woken

    def waiter_count(self, addr: int) -> int:
        return len(self._queues.get(addr, ()))

    # ------------------------------------------------------------------
    # fail-stop recovery hooks (see repro.chaos.recovery)
    # ------------------------------------------------------------------

    def drop_waiters(self, tids, exc: BaseException) -> int:
        """Dequeue every waiter whose tid is in *tids* (threads that died
        with a failed node) and fail its wake event with *exc*, so the
        delegation handler blocked on the wait errors out instead of
        sleeping forever on behalf of a dead requester.  Returns how many
        waiters were dropped."""
        if not tids:
            return 0
        dropped = 0
        detector = self.proc.deadlocks
        for addr in list(self._queues):
            queue = self._queues[addr]
            keep: Deque[Tuple[Event, int]] = deque()
            for waiter, tid in queue:
                if tid in tids:
                    if not waiter.triggered:
                        waiter.fail(exc)
                    if detector is not None:
                        detector.on_futex_resume(tid)
                    dropped += 1
                else:
                    keep.append((waiter, tid))
            if keep:
                self._queues[addr] = keep
            else:
                del self._queues[addr]
        return dropped

    def fail_all(self, exc: BaseException) -> int:
        """Error out *every* waiter and poison future waits: threads died
        with a failed node, so a wake another thread was counting on may
        never come and any further sleeping could hang the run.  Returns
        how many pending waiters were failed."""
        self.poisoned = exc
        failed = 0
        detector = self.proc.deadlocks
        for addr, queue in list(self._queues.items()):
            for waiter, tid in queue:
                if not waiter.triggered:
                    waiter.fail(exc)
                if detector is not None:
                    detector.on_futex_resume(tid)
                failed += 1
        self._queues.clear()
        return failed
