"""Threads and the application-facing execution context.

A :class:`DexThread` wraps an application generator function running on the
simulation engine.  Application code receives a :class:`ThreadContext`
(`ctx`) and expresses everything it does through it:

* ``yield from ctx.migrate(node)`` — the paper's "simple function call"
  that relocates the thread (``popcorn_migrate`` in the real system);
* ``yield from ctx.compute(cpu_us=..., mem_bytes=..., working_set=...)`` —
  local computation, charged against a CPU core and the node's fair-share
  DRAM bandwidth (with an LLC miss model for the memory-bound behaviour
  §V-B discusses);
* ``yield from ctx.read/write/atomic_update(...)`` — accesses through the
  distributed address space, which fault pages in via the consistency
  protocol;
* ``yield from ctx.futex_wait/futex_wake(...)`` — forwarded to the origin
  by work delegation, exactly like the real futex path.
"""

from __future__ import annotations

import struct
from heapq import heappush as _heappush
from struct import pack_into as _pack_into, unpack_from as _unpack_from
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.core.errors import DexError
from repro.memory.page_table import PageState
from repro.sim import Process
from repro.sim.engine import _UNSET, Immediate

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess


def threads_by_node(proc: "DexProcess") -> dict:
    """Live application threads resident per node — ``{node: count}``.

    Read-only over the thread list (a DexScope sampler calling this cannot
    perturb the run); nodes with no resident threads are absent."""
    counts: dict = {}
    for thread in proc.threads:
        if thread.alive:
            node = thread.current_node
            counts[node] = counts.get(node, 0) + 1
    return counts


class DexThread:
    """One application thread of a distributed process."""

    def __init__(self, proc: "DexProcess", tid: int, name: str = ""):
        self.proc = proc
        self.tid = tid
        self.name = name or f"t{tid}"
        self.current_node = proc.origin
        self.migration_count = 0
        self.sim_process: Optional[Process] = None  # set by DexProcess.spawn
        #: diagnostic set by fail-stop recovery when the node this thread
        #: was executing on died (the sim process is failed alongside it)
        self.failed: Optional[str] = None

    @property
    def alive(self) -> bool:
        return self.sim_process is not None and self.sim_process.is_alive

    @property
    def result(self) -> Any:
        if self.sim_process is None or not self.sim_process.triggered:
            raise DexError(f"thread {self.name} has not finished")
        return self.sim_process.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DexThread {self.name} @node{self.current_node}>"


class _ComputeAwait:
    """``yield from``-able wrapper for the cpu-only compute fast path.

    The first ``__next__`` hands the armed sleep timeout to the scheduler;
    the resume re-enters here, where the core slot is released at exactly
    the point the generator path's ``finally`` block ran (inside the
    process step, before the caller's frame continues) — so scheduling
    order, and therefore sequence-number allocation, is unchanged.  One
    reusable instance per ThreadContext: a thread runs one compute at a
    time, and ``yield from`` consumes the wrapper before the next call.

    Only safe when the sleep cannot be interrupted (an iterator has no
    ``throw``/``close``, so an Interrupt would skip the release); the
    caller gates on fault injection being off, the sole interrupt source.
    """

    __slots__ = ("timeout", "cores", "_yielded")

    def __iter__(self) -> "_ComputeAwait":
        return self

    def __next__(self):
        if not self._yielded:
            self._yielded = True
            return self.timeout
        cores = self.cores
        if cores._waiters:
            cores._waiters.popleft().succeed()
        else:
            cores._in_use -= 1
        raise StopIteration


class ThreadContext:
    """The handle application code uses for every interaction with DeX."""

    def __init__(self, thread: DexThread):
        self.thread = thread
        self.proc = thread.proc
        self.cluster = thread.proc.cluster
        self.engine = self.cluster.engine
        self.params = self.cluster.params
        #: reusable sleep timeout for the cpu-only compute path (created
        #: lazily; see _compute_impl)
        self._sleep = None
        #: reusable awaiter for the no-generator compute fast path
        self._caw = _ComputeAwait()
        #: reusable Immediate for synchronous fast-path returns (consumed
        #: by ``yield from`` before the next call can overwrite it)
        self._imm = Immediate(None)
        #: immutable per-cluster facts, cached off the attribute chains the
        #: hot paths would otherwise re-walk on every call (cluster.chaos is
        #: assigned once in DexCluster.__init__, page_size never changes)
        self._page_size = self.cluster.params.page_size
        self._chaos_off = self.cluster.chaos is None
        self._nodes = self.cluster.nodes
        #: memoised per-node state for the distributed-memory fast paths,
        #: keyed (and revalidated) by the thread's current node
        self._state_node = -1
        self._state_gen = -1
        self._state = None

    @property
    def tid(self) -> int:
        return self.thread.tid

    @property
    def node(self) -> int:
        """The node this thread currently runs on."""
        return self.thread.current_node

    @property
    def now(self) -> float:
        return self.engine.now

    # -- migration ---------------------------------------------------------

    def migrate(self, dest: int) -> Generator:
        """Relocate this thread to *dest* — the one-line conversion the
        paper's Table I counts."""
        yield from self.proc.migration.migrate(self.thread, dest)

    def migrate_back(self) -> Generator:
        """Return to the origin node."""
        yield from self.proc.migration.migrate(self.thread, self.proc.origin)

    def checkpoint(self) -> Generator:
        """A safe migration point: if a scheduler policy (see
        :mod:`repro.core.balancer`) posted a migration hint for this
        thread, honour it now.  Returns the node migrated to, or None.
        Applications sprinkle this at loop heads to opt in to automatic
        migration — the §III-A extension of scheduler-initiated moves."""
        target = self.proc.migration_hints.take(self.tid)
        if target is not None and target != self.thread.current_node:
            yield from self.proc.migration.migrate(self.thread, target)
            return target
        return None

    # -- computation ---------------------------------------------------------

    def compute(
        self,
        cpu_us: float = 0.0,
        mem_bytes: float = 0.0,
        working_set: Optional[float] = None,
    ) -> Generator:
        """Local computation at the current node.

        Occupies one CPU core for the duration.  ``mem_bytes`` of memory
        traffic is filtered by an LLC miss model (``working_set`` is the
        hot footprint it is drawn from) and served by the node's fair-share
        DRAM bandwidth; the effective duration is the max of the CPU time
        and the memory time, modelling a core stalled on memory.

        Returns the generator directly (no pass-through frame): ``yield
        from ctx.compute(...)`` delegates to it immediately.
        """
        # compute is the hottest instrumented call site: the tracing-off
        # path must stay a single None check, so no maybe_span() here
        obs = self.proc.obs
        if obs is None:
            if mem_bytes <= 0 and self._chaos_off:
                # cpu-only, interrupt-free: skip the generator frame
                # entirely (see _ComputeAwait; bit-identical scheduling)
                cores = self._nodes[self.thread.current_node].cores
                if cores._in_use < cores.capacity:
                    cores._in_use += 1
                    if cpu_us > 0:
                        sleep = self._sleep
                        if sleep is not None and sleep._done:
                            # inlined Timeout.rearm (hottest call site)
                            sleep._value = _UNSET
                            sleep._exc = None
                            sleep._done = False
                            sleep._callbacks = []
                            sleep.delay = cpu_us
                            sleep._cancelled = False
                            engine = self.engine
                            engine._seq += 1
                            sleep._entry = entry = [
                                engine.now + cpu_us, engine._seq, sleep._fire, (None,)
                            ]
                            _heappush(engine._queue, entry)
                        else:
                            self._sleep = sleep = self.engine.timeout(cpu_us)
                        aw = self._caw
                        aw.timeout = sleep
                        aw.cores = cores
                        aw._yielded = False
                        return aw
                    # zero-duration compute: slot taken and released with
                    # no yield, exactly like the generator path
                    if cores._waiters:
                        cores._waiters.popleft().succeed()
                    else:
                        cores._in_use -= 1
                    imm = self._imm
                    imm.value = None
                    return imm
            return self._compute_impl(cpu_us, mem_bytes, working_set)
        return self._compute_traced(obs, cpu_us, mem_bytes, working_set)

    def _compute_traced(
        self,
        obs,
        cpu_us: float,
        mem_bytes: float,
        working_set: Optional[float],
    ) -> Generator:
        with obs.span(
            "compute", node=self.thread.current_node, tid=self.tid,
            cpu_us=cpu_us, mem_bytes=mem_bytes,
        ):
            yield from self._compute_impl(cpu_us, mem_bytes, working_set)

    def _compute_impl(
        self,
        cpu_us: float,
        mem_bytes: float,
        working_set: Optional[float],
    ) -> Generator:
        node = self.cluster.nodes[self.thread.current_node]
        engine = self.engine
        cores = node.cores
        if cores._in_use < cores.capacity:
            # inlined uncontended Resource.acquire: take the slot without
            # suspending — an already-granted slot resumes at the same
            # instant either way
            cores._in_use += 1
        else:
            yield cores.acquire()
        try:
            traffic = 0.0
            if mem_bytes > 0:
                traffic = mem_bytes * self._miss_rate(working_set)
            if traffic > 0 and cpu_us > 0:
                yield engine.all_of(
                    [node.dram.consume(traffic), engine.timeout(cpu_us)]
                )
            elif traffic > 0:
                yield node.dram.consume(traffic)
            elif cpu_us > 0:
                # reuse one private timeout per thread context: the
                # previous sleep has fully settled (we were its sole
                # waiter), so rearming replaces an allocation with a reset
                sleep = self._sleep
                if sleep is not None and sleep._done:
                    yield sleep.rearm(cpu_us)
                else:
                    self._sleep = sleep = engine.timeout(cpu_us)
                    yield sleep
        finally:
            # inlined Resource.release for the held slot
            if cores._waiters:
                cores._waiters.popleft().succeed()
            else:
                cores._in_use -= 1

    def _miss_rate(self, working_set: Optional[float]) -> float:
        """Fraction of memory traffic that reaches DRAM: streaming from a
        hot set that fits in the LLC mostly hits cache."""
        if working_set is None or working_set <= 0:
            return 1.0  # streaming / no reuse
        llc = float(self.params.llc_bytes)
        if working_set <= llc:
            return 0.05
        return 0.05 + 0.95 * (1.0 - llc / working_set)

    def sleep(self, us: float) -> Generator:
        yield self.engine.timeout(us)

    # -- distributed memory ----------------------------------------------------

    def read(self, addr: int, nbytes: int, site: str = "") -> Generator:
        """Read bytes through the distributed address space."""
        return self.proc.faults.read(
            self.thread.current_node, self.tid, addr, nbytes, site
        )

    def write(self, addr: int, data: bytes, site: str = "") -> Generator:
        """Write bytes through the distributed address space."""
        return self.proc.faults.write(
            self.thread.current_node, self.tid, addr, data, site
        )

    def fault_in(self, addr: int, nbytes: int, write: bool, site: str = "") -> Generator:
        """Touch pages without transferring data to/from the caller —
        useful for prefetch-style warm-up."""
        yield from self.proc.faults.ensure_range(
            self.thread.current_node, self.tid, addr, nbytes, write, site
        )

    def atomic_update(
        self, addr: int, nbytes: int, fn: Callable[[bytes], bytes], site: str = ""
    ) -> Generator:
        """Atomic read-modify-write (single page); returns the old bytes."""
        return self.proc.faults.atomic_update(
            self.thread.current_node, self.tid, addr, nbytes, fn, site
        )

    # convenience typed accessors ------------------------------------------------

    def read_u32(self, addr: int, site: str = "") -> Generator:
        raw = yield from self.read(addr, 4, site)
        return struct.unpack("<I", raw)[0]

    def write_u32(self, addr: int, value: int, site: str = "") -> Generator:
        yield from self.write(addr, struct.pack("<I", value & 0xFFFFFFFF), site)

    def read_i64(self, addr: int, site: str = "") -> Generator:
        raw = yield from self.read(addr, 8, site)
        return struct.unpack("<q", raw)[0]

    def write_i64(self, addr: int, value: int, site: str = "") -> Generator:
        yield from self.write(addr, struct.pack("<q", value), site)

    def atomic_add_i64(self, addr: int, delta: int, site: str = "") -> Generator:
        """Atomically add *delta* to a 64-bit integer; returns the old value."""
        # Eager fast path: with an EXCLUSIVE PTE and no sanitizer the
        # update is purely synchronous, so skip the generator machinery
        # entirely and hand back the result as an Immediate.  Mirrors
        # FaultHandler.atomic_add_i64, which remains the general path.
        proc = self.proc
        node = self.thread.current_node
        page = self._page_size
        vpn = addr // page
        offset = addr - vpn * page
        if proc.sanitizer is None and offset <= page - 8:
            if node == self._state_node and proc.state_gen == self._state_gen:
                state = self._state
            else:
                state = proc.node_state(node)
                self._state_node = node
                self._state_gen = proc.state_gen
                self._state = state
            pte = state.page_table._entries.get(vpn)
            if pte is not None and pte.state is PageState.EXCLUSIVE:
                frame = state.frames._frames.get(vpn)
                if frame is None:
                    frame = state.frames.frame(vpn)
                old = _unpack_from("<q", frame, offset)[0]
                _pack_into("<q", frame, offset, old + delta)
                imm = self._imm
                imm.value = old
                return imm
        return proc.faults.atomic_add_i64(node, self.tid, addr, delta, site)

    def atomic_add_f64(self, addr: int, delta: float, site: str = "") -> Generator:
        """Atomically add *delta* to an IEEE double; returns the old value.
        Same eager fast path as :meth:`atomic_add_i64`."""
        proc = self.proc
        node = self.thread.current_node
        page = self._page_size
        vpn = addr // page
        offset = addr - vpn * page
        if proc.sanitizer is None and offset <= page - 8:
            if node == self._state_node and proc.state_gen == self._state_gen:
                state = self._state
            else:
                state = proc.node_state(node)
                self._state_node = node
                self._state_gen = proc.state_gen
                self._state = state
            pte = state.page_table._entries.get(vpn)
            if pte is not None and pte.state is PageState.EXCLUSIVE:
                frame = state.frames._frames.get(vpn)
                if frame is None:
                    frame = state.frames.frame(vpn)
                old = _unpack_from("<d", frame, offset)[0]
                _pack_into("<d", frame, offset, old + delta)
                imm = self._imm
                imm.value = old
                return imm
        return proc.faults.atomic_add_f64(node, self.tid, addr, delta, site)

    def atomic_add_u32(self, addr: int, delta: int, site: str = "") -> Generator:
        old = yield from self.atomic_update(
            addr,
            4,
            lambda raw: struct.pack(
                "<I", (struct.unpack("<I", raw)[0] + delta) & 0xFFFFFFFF
            ),
            site,
        )
        return struct.unpack("<I", old)[0]

    def atomic_cas_u32(self, addr: int, expect: int, new: int, site: str = "") -> Generator:
        """Compare-and-swap on a 32-bit word; returns the value observed
        (CAS succeeded iff it equals *expect*)."""
        observed = {}

        def swap(raw: bytes) -> bytes:
            value = struct.unpack("<I", raw)[0]
            observed["value"] = value
            if value == expect:
                return struct.pack("<I", new & 0xFFFFFFFF)
            return raw

        yield from self.atomic_update(addr, 4, swap, site)
        return observed["value"]

    # -- synchronization (futex, via work delegation) -----------------------------

    def futex_wait(self, addr: int, expected: int) -> Generator:
        """FUTEX_WAIT: sleep while the word at *addr* equals *expected*.
        Returns "woken" or "eagain"."""
        result = yield from self.proc.delegation.call(
            self.thread.current_node, self.tid, "futex_wait",
            addr=addr, expected=expected,
        )
        return result

    def futex_wake(self, addr: int, count: int = 1) -> Generator:
        """FUTEX_WAKE: wake up to *count* waiters; returns how many."""
        result = yield from self.proc.delegation.call(
            self.thread.current_node, self.tid, "futex_wake",
            addr=addr, count=count,
        )
        return result

    # -- memory management (delegated to the origin, §III-D) ---------------------

    def mmap(self, length: int, prot: int = 3, tag: str = "") -> Generator:
        """Map fresh memory; returns the start address."""
        start = yield from self.proc.delegation.call(
            self.thread.current_node, self.tid, "mmap",
            length=length, prot=prot, tag=tag,
        )
        return start

    def munmap(self, start: int, length: int) -> Generator:
        yield from self.proc.delegation.call(
            self.thread.current_node, self.tid, "munmap",
            start=start, length=length,
        )

    def mprotect(self, start: int, length: int, prot: int) -> Generator:
        yield from self.proc.delegation.call(
            self.thread.current_node, self.tid, "mprotect",
            start=start, length=length, prot=prot,
        )

    # -- file I/O (delegated to the origin, §III-A) --------------------------

    def fopen(self, path: str, mode: str = "r") -> Generator:
        """Open a file on the shared filesystem; returns an fd, or -1 for
        a missing file opened read-only.  Executes at the origin via work
        delegation, like every stateful OS feature."""
        fd = yield from self.proc.delegation.call(
            self.thread.current_node, self.tid, "file_open",
            path=path, mode=mode,
        )
        return fd

    def fread(self, fd: int, length: int) -> Generator:
        """Read up to *length* bytes from the descriptor."""
        text = yield from self.proc.delegation.call(
            self.thread.current_node, self.tid, "file_read",
            fd=fd, length=length,
        )
        return text.encode("latin-1")

    def fwrite(self, fd: int, data: bytes) -> Generator:
        """Write *data* at the descriptor's offset; returns bytes written."""
        count = yield from self.proc.delegation.call(
            self.thread.current_node, self.tid, "file_write",
            fd=fd, data=data.decode("latin-1"),
        )
        return count

    def fseek(self, fd: int, offset: int) -> Generator:
        result = yield from self.proc.delegation.call(
            self.thread.current_node, self.tid, "file_seek",
            fd=fd, offset=offset,
        )
        return result

    def fclose(self, fd: int) -> Generator:
        yield from self.proc.delegation.call(
            self.thread.current_node, self.tid, "file_close", fd=fd,
        )

    # -- thread management -----------------------------------------------------

    def spawn(self, fn: Callable, *args: Any, name: str = "") -> DexThread:
        """Create a new thread running *fn(ctx, *args)* at this thread's
        current node (pthread_create semantics)."""
        return self.proc.spawn_thread(
            fn, *args, name=name, at_node=self.thread.current_node,
            parent_tid=self.tid,
        )

    def join(self, thread: DexThread) -> Generator:
        """Wait for *thread* to finish; returns its result."""
        if thread.sim_process is None:
            raise DexError(f"thread {thread.name} was never started")
        result = yield thread.sim_process
        return result
