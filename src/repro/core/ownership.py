"""The per-process page-ownership directory kept at the origin (§III-B).

"Each page can be owned by one or more nodes, and the ownership is tracked
on a per-page and per-node basis at the origin. [...] Information such as
the list of owners and page state is maintained in a per-process radix tree
which indexes the information by the virtual page address."

Pages with no directory entry are implicitly owned exclusively by the
origin ("initially, the origin exclusively owns all pages of the process"),
so a process that never migrates pays nothing: entries materialize only
when a page first participates in the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Set, Tuple

from repro.memory.radix_tree import RadixTree


@dataclass
class PageEntry:
    """Directory state for one virtual page.

    ``data_version`` is the version of the page's current contents; each
    node's PTE remembers the version it last held so the origin can skip
    the data transfer on a grant when the requester is already up to date
    (§III-B's traffic optimization).
    """

    vpn: int
    owners: Set[int] = field(default_factory=set)
    writer: Optional[int] = None
    data_version: int = 0
    #: a protocol operation is in flight for this page; concurrent requests
    #: are told to retry (the race §V-D's contended faults lose)
    busy: bool = False

    def is_owner(self, node: int) -> bool:
        return node in self.owners


class OwnershipDirectory:
    """Radix-tree-indexed map of :class:`PageEntry` at the origin."""

    def __init__(self, origin: int):
        self.origin = origin
        self._tree = RadixTree()

    def __len__(self) -> int:
        return len(self._tree)

    def lookup(self, vpn: int) -> Optional[PageEntry]:
        return self._tree.get(vpn)

    def get_or_create(self, vpn: int) -> Tuple[PageEntry, bool]:
        """The entry for *vpn*, plus whether it was just materialized (in
        which case the caller must install the origin's implicit-exclusive
        PTE state)."""
        entry = self._tree.get(vpn)
        if entry is not None:
            return entry, False
        entry = PageEntry(vpn=vpn, owners={self.origin}, writer=self.origin)
        self._tree.insert(vpn, entry)
        return entry, True

    def drop_range(self, vpn_start: int, vpn_end: int) -> int:
        """Remove entries for a VMA shrink; returns how many were dropped."""
        victims = [vpn for vpn, _ in self._tree.iter_range(vpn_start, vpn_end)]
        for vpn in victims:
            self._tree.delete(vpn)
        return len(victims)

    def entries(self) -> Iterator[Tuple[int, PageEntry]]:
        return self._tree.items()

    def check_invariants(self) -> None:
        """Raise AssertionError when the multiple-reader/single-writer
        invariant is broken.  Called by tests after every protocol step."""
        for vpn, entry in self._tree.items():
            assert entry.owners, f"page {vpn:#x}: entry with no owners"
            if entry.writer is not None:
                assert entry.owners == {entry.writer}, (
                    f"page {vpn:#x}: writer {entry.writer} coexists with "
                    f"owners {entry.owners}"
                )
