"""Backward-compatibility shim for the pre-refactor ownership module.

The per-process page-ownership directory (§III-B) used to be a single
origin-resident class here; it is now the pluggable coherence-directory
layer in :mod:`repro.core.directory`, with the paper's origin-resident
design living on as :class:`~repro.core.directory.OriginDirectory`.  This
module re-exports the moved names so older imports keep working.
"""

from __future__ import annotations

from repro.core.directory import (  # noqa: F401
    CoherenceDirectory,
    DirectoryShard,
    OriginDirectory,
    PageEntry,
    ShardedDirectory,
)

#: historical name of the origin-resident backend
OwnershipDirectory = OriginDirectory

__all__ = [
    "CoherenceDirectory",
    "DirectoryShard",
    "OriginDirectory",
    "OwnershipDirectory",
    "PageEntry",
    "ShardedDirectory",
]
