"""Scheduler-initiated automatic migration (§III-A / §VII outlook).

"In the current implementation, both forward and backward migration are
initiated by a system call.  We believe that it can be easily extended so
that OS schedulers or user-space libraries automatically initiate the
migration."  This module is that extension: policies that watch the
running process and *ask threads to migrate themselves* at their next
safe point.

Because a thread's context can only be captured at a quiescent point (a
system call boundary in the real kernel), policies do not teleport
threads; they post a *migration hint* that the thread honours by calling
``yield from ctx.checkpoint()`` wherever the application is happy to be
moved (loop heads, typically).  Two policies are provided:

* :class:`LoadBalancer` — even out runnable threads per node, the classic
  SSI load-balancing goal (Kerrighed/MOSIX style, §VI).
* :class:`AffinityBalancer` — move computation near its data (§VII:
  "relocating the computation near data"): each thread is steered toward
  the node whose pages it faults against the most, using the §IV fault
  trace as the signal.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import TYPE_CHECKING, Dict, Generator, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess
    from repro.core.thread import DexThread


class MigrationHints:
    """Mailbox of pending migration targets, one slot per thread."""

    def __init__(self) -> None:
        self._targets: Dict[int, int] = {}

    def post(self, tid: int, node: int) -> None:
        self._targets[tid] = node

    def take(self, tid: int) -> Optional[int]:
        return self._targets.pop(tid, None)

    def pending(self) -> int:
        return len(self._targets)


class LoadBalancer:
    """Keep the number of live threads per node even.

    ``rebalance()`` inspects current thread placement and posts hints that
    move threads from the most- to the least-loaded nodes.  Threads honour
    hints at their next ``ctx.checkpoint()``.
    """

    def __init__(self, proc: "DexProcess", nodes: Optional[List[int]] = None):
        self.proc = proc
        self.nodes = list(range(proc.cluster.num_nodes)) if nodes is None else list(nodes)
        self.hints = proc.migration_hints
        self.rebalances = 0

    def _placement(self) -> Dict[int, List["DexThread"]]:
        placement: Dict[int, List] = {n: [] for n in self.nodes}
        for thread in self.proc.threads:
            if thread.alive and thread.current_node in placement:
                placement[thread.current_node].append(thread)
        return placement

    def imbalance(self) -> int:
        placement = self._placement()
        counts = [len(v) for v in placement.values()]
        return max(counts) - min(counts) if counts else 0

    def rebalance(self) -> int:
        """Post hints until no node has 2+ more threads than another.
        Returns how many hints were posted."""
        posted = 0
        placement = self._placement()
        while True:
            busiest = max(self.nodes, key=lambda n: len(placement[n]))
            idlest = min(self.nodes, key=lambda n: len(placement[n]))
            if len(placement[busiest]) - len(placement[idlest]) < 2:
                break
            thread = placement[busiest].pop()
            placement[idlest].append(thread)
            self.hints.post(thread.tid, idlest)
            posted += 1
        if posted:
            self.rebalances += 1
        return posted

    def run(self, interval_us: float, until: float) -> Generator:
        """A daemon process: rebalance every *interval_us* until *until*
        (spawn with ``cluster.engine.process(balancer.run(...))``)."""
        engine = self.proc.cluster.engine
        while engine.now < until:
            yield engine.timeout(interval_us)
            self.rebalance()


class AffinityBalancer:
    """Steer each thread toward the node it exchanges the most pages with.

    Uses the directory's view of page ownership at fault time, recorded by
    the fault tracer: a thread whose faults keep pulling pages owned by
    node *k* would be cheaper to run *on* node *k*.
    """

    def __init__(self, proc: "DexProcess", min_faults: int = 8):
        self.proc = proc
        self.hints = proc.migration_hints
        self.min_faults = min_faults
        #: tid -> Counter of home nodes of faulted pages
        self._affinity: Dict[int, Counter] = defaultdict(Counter)

    def observe_fault(self, tid: int, owner_node: int) -> None:
        """Feed one fault observation (call from a tracer hook or from
        the application's own instrumentation)."""
        self._affinity[tid][owner_node] += 1

    def observe_trace(self, tracer) -> None:
        """Digest a §IV fault trace: each fault's current owners vote for
        where the faulting thread should live."""
        page = self.proc.cluster.params.page_size
        for event in tracer:
            if event.fault_type == "invalidate" or event.tid < 0:
                continue
            entry = self.proc.protocol.directory.lookup(event.addr // page)
            if entry is None:
                continue
            for owner in entry.owners:
                if owner != event.node:
                    self._affinity[event.tid][owner] += 1

    def steer(self) -> int:
        """Post hints for threads with a clear affinity elsewhere; returns
        how many hints were posted."""
        posted = 0
        for thread in self.proc.threads:
            if not thread.alive:
                continue
            votes = self._affinity.get(thread.tid)
            if not votes:
                continue
            target, count = votes.most_common(1)[0]
            if count >= self.min_faults and target != thread.current_node:
                self.hints.post(thread.tid, target)
                posted += 1
        return posted
