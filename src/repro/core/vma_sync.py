"""On-demand VMA synchronization (§III-D).

No VMA information is shipped at migration time.  When a remote access
falls outside every VMA the node knows about, the node asks the origin
whether the access is legitimate; the origin replies with the authoritative
VMA (which the remote installs) or an error (which becomes a
:class:`SegmentationFault`).  Only *shrinking* operations (munmap) and
*downgrades* (mprotect removing permissions) are broadcast eagerly, because
a stale permissive VMA at a remote would otherwise allow illegal accesses;
permissive changes propagate lazily through the on-demand path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List

from repro.core.errors import NodeFailedError, SegmentationFault
from repro.memory.vma import VMA, Protection
from repro.net.messages import Message, MsgType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess


class VmaSync:
    """Keeps remote VMA replicas consistent with the origin's map."""

    def __init__(self, proc: "DexProcess"):
        self.proc = proc

    # -- remote side --------------------------------------------------------

    def ensure_vma(self, node: int, addr: int, write: bool) -> Generator:
        """Validate that *addr* is mapped with sufficient protection at
        *node*, querying the origin on a replica miss.  Raises
        :class:`SegmentationFault` for illegal accesses."""
        proc = self.proc
        local_map = proc.node_state(node).vma_map
        vma = local_map.find(addr)
        if vma is None and node != proc.origin:
            vma = yield from self._query_origin(node, addr)
        if vma is None:
            raise SegmentationFault(node, addr, write)
        needed = Protection.WRITE if write else Protection.READ
        if not vma.prot & needed:
            raise SegmentationFault(node, addr, write)
        return vma

    def _query_origin(self, node: int, addr: int) -> Generator:
        proc = self.proc
        params = proc.cluster.params
        proc.stats.vma_queries += 1
        yield proc.cluster.engine.timeout(params.vma_op_cost)
        reply = yield from proc.cluster.net.request(
            Message(
                MsgType.VMA_QUERY,
                src=node,
                dst=proc.origin,
                payload={"pid": proc.pid, "addr": addr},
            )
        )
        info = reply.payload
        if not info["valid"]:
            return None
        vma = VMA(
            start=info["start"],
            end=info["end"],
            prot=Protection(info["prot"]),
            tag=info["tag"],
            version=info["version"],
        )
        proc.node_state(node).vma_map.replace(vma)
        return vma

    # -- origin side ----------------------------------------------------------

    def handle_query(self, msg: Message) -> Generator:
        """Origin handler for :data:`MsgType.VMA_QUERY`."""
        proc = self.proc
        params = proc.cluster.params
        yield proc.cluster.engine.timeout(params.vma_op_cost)
        vma = proc.node_state(proc.origin).vma_map.find(msg.payload["addr"])
        if vma is None:
            payload = {"valid": False}
        else:
            payload = {
                "valid": True,
                "start": vma.start,
                "end": vma.end,
                "prot": int(vma.prot),
                "tag": vma.tag,
                "version": vma.version,
            }
        yield from proc.cluster.net.send(msg.make_reply(MsgType.VMA_REPLY, payload))

    def broadcast_shrink(
        self, start: int, end: int, new_prot: int = -1
    ) -> Generator:
        """Eagerly push a shrink/downgrade to every node running this
        process; waits for all acknowledgements (the update "should be
        applied to all remote threads in order to prevent illegal memory
        access operations")."""
        proc = self.proc
        engine = proc.cluster.engine
        chaos = proc.cluster.chaos
        targets = [n for n in proc.active_nodes() if n != proc.origin]
        if chaos is not None:
            # no point updating (or waiting on) the replica of a dead node
            targets = [n for n in targets if not chaos.is_fenced(n)]
        if not targets:
            return
        proc.stats.vma_shrink_broadcasts += 1
        pending = []
        for node in targets:
            msg = Message(
                MsgType.VMA_SHRINK,
                src=proc.origin,
                dst=node,
                payload={
                    "pid": proc.pid,
                    "start": start,
                    "end": end,
                    "prot": new_prot,
                },
            )
            pending.append(
                engine.process(
                    proc.cluster.net.request(msg), name=f"vma_shrink->{node}"
                )
            )
        if chaos is None:
            yield engine.all_of(pending)
            return
        # reliable mode: a target may fail-stop mid-broadcast; its replica
        # died with it, so a detector-aborted ack counts as applied
        for node, shrink_proc in zip(targets, pending):
            try:
                yield shrink_proc
            except NodeFailedError:
                if not chaos.is_fenced(node):
                    raise

    def handle_shrink(self, msg: Message) -> Generator:
        """Remote-worker handler for an eager shrink/downgrade broadcast
        (node-wide operations "are delivered to the remote worker and
        processed in the context of the remote worker", §III-A)."""
        proc = self.proc
        params = proc.cluster.params
        node = msg.dst
        start, end = msg.payload["start"], msg.payload["end"]
        new_prot = msg.payload["prot"]
        yield proc.cluster.engine.timeout(params.vma_op_cost)
        state = proc.node_state(node)
        page = params.page_size
        vpn_start, vpn_end = start // page, (end + page - 1) // page
        if new_prot < 0:
            state.vma_map.remove_range(start, end)
            state.page_table.drop_range(vpn_start, vpn_end)
            state.frames.drop_range(vpn_start, vpn_end)
        else:
            # protection downgrade: update the replica's view only; the
            # origin separately revokes page ownership in the range via the
            # consistency protocol (ConsistencyProtocol.revoke_range,
            # resolved at each page's home under the configured directory
            # backend), so the next write here faults and the VMA check
            # rejects it
            covering = state.vma_map.find_overlapping(start, end)
            if covering:
                state.vma_map.mprotect(
                    max(start, min(v.start for v in covering)),
                    min(end, max(v.end for v in covering))
                    - max(start, min(v.start for v in covering)),
                    Protection(new_prot),
                )
        yield from proc.cluster.net.send(
            msg.make_reply(MsgType.VMA_REPLY, {"ok": True})
        )
