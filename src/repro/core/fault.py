"""Page-fault handling with leader-follower coalescing (§III-C).

Each node keeps a per-process table of in-flight faults ("a per-process
hash table to track all ongoing fault handling").  The first thread to
fault on a page becomes the **leader** and runs the consistency protocol;
threads faulting on the same page with a compatible access type become
**followers** and simply wait for the leader's PTE update.  A follower (or
a thread whose needed access type the leader's grant does not cover)
re-checks the PTE after the leader finishes and loops, possibly becoming a
leader itself.

The fast path — an access whose PTE already permits it — costs nothing and,
crucially, never yields to the engine, so local accesses of a single-node
run are free, exactly like MMU hits on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from struct import pack_into, unpack_from
from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.core.errors import SegmentationFault
from repro.core.stats import FaultRecord
from repro.memory.page_table import PageState
from repro.obs.tracing import maybe_span
from repro.sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess


@dataclass
class InFlightFault:
    """One ongoing fault at one node, visible to followers and to
    invalidation handlers (which must not revoke a page mid-install)."""

    vpn: int
    write: bool
    leader_tid: int
    done: Event
    #: set synchronously when the grant arrives; from that point until
    #: ``done``, an invalidation for this page must wait
    installing: bool = False


class FaultHandler:
    """Per-process fault path; drives :class:`ConsistencyProtocol`."""

    __slots__ = ("proc", "_page_size")

    def __init__(self, proc: "DexProcess"):
        self.proc = proc
        self._page_size = proc.cluster.params.page_size

    # ------------------------------------------------------------------

    def permits(self, node: int, vpn: int, write: bool) -> bool:
        """Fast-path check: may *node* access *vpn* without a fault?"""
        proc = self.proc
        pte = proc.node_state(node).page_table.lookup(vpn)
        if pte is not None:
            return pte.writable if write else pte.readable
        if node == proc.origin:
            # no PTE and no directory entry: implicitly exclusive at origin
            return proc.protocol.directory.lookup(vpn) is None
        return False

    def ensure_page(
        self, node: int, tid: int, vpn: int, write: bool, site: str = ""
    ) -> Generator:
        """Make *vpn* accessible at *node*; the fast path falls straight
        through without yielding."""
        proc = self.proc
        if self.permits(node, vpn, write):
            return
        yield from self._fault(node, tid, vpn, write, site)

    def ensure_range(
        self, node: int, tid: int, addr: int, nbytes: int, write: bool, site: str = ""
    ) -> Generator:
        """Make every page of ``[addr, addr+nbytes)`` accessible."""
        page = self.proc.cluster.params.page_size
        vpn = addr // page
        last = (addr + max(nbytes, 1) - 1) // page
        while vpn <= last:
            yield from self.ensure_page(node, tid, vpn, write, site)
            vpn += 1

    # ------------------------------------------------------------------

    def _fault(
        self, node: int, tid: int, vpn: int, write: bool, site: str
    ) -> Generator:
        obs = self.proc.obs
        if obs is None:
            yield from self._fault_impl(node, tid, vpn, write, site, None)
        else:
            with obs.span(
                "fault", node=node, tid=tid, vpn=vpn, write=write, site=site
            ) as span:
                yield from self._fault_impl(node, tid, vpn, write, site, span)

    def _fault_impl(
        self, node: int, tid: int, vpn: int, write: bool, site: str, span
    ) -> Generator:
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        state = proc.node_state(node)
        started = engine.now
        yield engine.timeout(params.fault_trap_cost)
        # VMA check — may run the on-demand sync, may raise SegmentationFault
        vma = yield from proc.vma_sync.ensure_vma(
            node, vpn * params.page_size, write
        )
        if proc.tracer is not None:
            proc.tracer.record(
                time_us=engine.now,
                node=node,
                tid=tid,
                fault_type="write" if write else "read",
                site=site,
                addr=vpn * params.page_size,
                tag=vma.tag,
            )
        coalesced = False
        while True:
            if self.permits(node, vpn, write):
                break
            yield engine.timeout(params.fault_coalesce_lookup_cost)
            flist = state.inflight.get(vpn)
            active = [f for f in flist if not f.done.triggered] if flist else []
            if active and params.enable_fault_coalescing:
                leader = active[0]
                if leader.write or not write:
                    # compatible access type: follow (§III-C) — the
                    # leader's grant covers our access
                    coalesced = True
                detector = proc.deadlocks
                if detector is not None:
                    detector.on_follower_wait(tid, leader.leader_tid, vpn)
                try:
                    with maybe_span(
                        proc.obs, "fault.follow",
                        node=node, tid=tid, vpn=vpn, leader=leader.leader_tid,
                    ):
                        yield leader.done
                finally:
                    if detector is not None:
                        detector.on_follower_resume(tid)
                continue  # re-check the PTE, maybe become leader
            # become the leader for this page fault
            fault = InFlightFault(
                vpn=vpn,
                write=write,
                leader_tid=tid,
                done=engine.event(name=f"fault@{vpn:#x}"),
            )
            if flist is None:
                flist = state.inflight[vpn] = []
            flist.append(fault)
            try:
                with maybe_span(
                    proc.obs, "fault.acquire",
                    node=node, tid=tid, vpn=vpn, write=write,
                ):
                    retries = yield from proc.protocol.acquire_page(
                        node, vpn, write, fault
                    )
            finally:
                # trigger synchronously with the final PTE update so that
                # waiters (followers, invalidations) run strictly after it
                fault.done.succeed()
                flist.remove(fault)
                if not flist:
                    del state.inflight[vpn]
            # (retries feed fault_retries via record_fault — counting them
            # here as well used to double the reported number)
            record = FaultRecord(
                vpn=vpn,
                node=node,
                write=write,
                latency_us=engine.now - started,
                retries=retries,
                coalesced=False,
            )
            proc.stats.record_fault(record)
            if span is not None:
                span.attrs["retries"] = retries
            if proc.sanitizer is not None:
                # the transition committed (our PTE is installed): the
                # directory and every settled node must agree right now
                proc.sanitizer.on_transition(vpn)
            return
        if coalesced:
            if span is not None:
                span.attrs["coalesced"] = True
            proc.stats.record_fault(
                FaultRecord(
                    vpn=vpn,
                    node=node,
                    write=write,
                    latency_us=engine.now - started,
                    retries=0,
                    coalesced=True,
                )
            )

    # ------------------------------------------------------------------
    # data-plane entry points: fault + synchronous byte access
    # ------------------------------------------------------------------

    def read(
        self, node: int, tid: int, addr: int, nbytes: int, site: str = ""
    ) -> Generator:
        """Read *nbytes* through the distributed address space.  Each page
        is touched synchronously right after it is secured, so per-page
        reads are sequentially consistent."""
        proc = self.proc
        page = self._page_size
        out = bytearray()
        pos = addr
        end = addr + nbytes
        while pos < end:
            vpn = pos // page
            take = min(end - pos, (vpn + 1) * page - pos)
            if not self.permits(node, vpn, False):
                yield from self._fault(node, tid, vpn, False, site)
            if proc.sanitizer is not None:
                proc.sanitizer.on_access(node, tid, vpn, False, site)
            out += proc.node_state(node).frames.read(pos, take)
            pos += take
        return bytes(out)

    def write(
        self, node: int, tid: int, addr: int, data: bytes, site: str = ""
    ) -> Generator:
        """Write *data* through the distributed address space."""
        proc = self.proc
        page = self._page_size
        pos = 0
        end = len(data)
        while pos < end:
            vpn = (addr + pos) // page
            take = min(end - pos, (vpn + 1) * page - (addr + pos))
            if not self.permits(node, vpn, True):
                yield from self._fault(node, tid, vpn, True, site)
            if proc.sanitizer is not None:
                proc.sanitizer.on_access(node, tid, vpn, True, site)
            proc.node_state(node).frames.write(addr + pos, data[pos : pos + take])
            pos += take

    def atomic_update(
        self, node: int, tid: int, addr: int, nbytes: int, fn, site: str = ""
    ) -> Generator:
        """Atomically read-modify-write *nbytes* at *addr* (must not cross
        a page).  *fn(old_bytes) -> new_bytes*.  Exclusive ownership plus
        the engine's run-to-yield semantics make the update atomic.
        Returns the old bytes."""
        proc = self.proc
        page = self._page_size
        vpn = addr // page
        if (addr + nbytes - 1) // page != vpn:
            raise ValueError(
                f"atomic update crosses a page boundary: {addr:#x}+{nbytes}"
            )
        if not self.permits(node, vpn, True):
            yield from self._fault(node, tid, vpn, True, site)
        if proc.sanitizer is not None:
            # one write-classified access covers the read-modify-write
            proc.sanitizer.on_access(node, tid, vpn, True, site)
        frames = proc.node_state(node).frames
        old = frames.read(addr, nbytes)
        new = fn(old)
        if len(new) != nbytes:
            raise ValueError("atomic update changed the operand size")
        frames.write(addr, new)
        return old

    def atomic_add_i64(
        self, node: int, tid: int, addr: int, delta: int, site: str = ""
    ) -> Generator:
        """Specialised :meth:`atomic_update` for the dominant atomic: add
        to a little-endian signed 64-bit word.  Same fault/sanitizer
        semantics, no struct/closure round trip; returns the old value."""
        proc = self.proc
        page = self._page_size
        vpn = addr // page
        if (addr + 7) // page != vpn:
            raise ValueError(
                f"atomic update crosses a page boundary: {addr:#x}+8"
            )
        state = proc.node_state(node)
        # inlined permits() write fast path: an EXCLUSIVE PTE means go
        pte = state.page_table.lookup(vpn)
        if pte is None or pte.state is not PageState.EXCLUSIVE:
            if not self.permits(node, vpn, True):
                yield from self._fault(node, tid, vpn, True, site)
        if proc.sanitizer is not None:
            # one write-classified access covers the read-modify-write
            proc.sanitizer.on_access(node, tid, vpn, True, site)
        frame = state.frames.frame(vpn)
        offset = addr - vpn * page
        old = unpack_from("<q", frame, offset)[0]
        pack_into("<q", frame, offset, old + delta)
        return old

    def atomic_add_f64(
        self, node: int, tid: int, addr: int, delta: float, site: str = ""
    ) -> Generator:
        """IEEE-double twin of :meth:`atomic_add_i64` (the accumulator
        adds of the Figure-2 apps); returns the old value."""
        proc = self.proc
        page = self._page_size
        vpn = addr // page
        if (addr + 7) // page != vpn:
            raise ValueError(
                f"atomic update crosses a page boundary: {addr:#x}+8"
            )
        state = proc.node_state(node)
        pte = state.page_table.lookup(vpn)
        if pte is None or pte.state is not PageState.EXCLUSIVE:
            if not self.permits(node, vpn, True):
                yield from self._fault(node, tid, vpn, True, site)
        if proc.sanitizer is not None:
            proc.sanitizer.on_access(node, tid, vpn, True, site)
        frame = state.frames.frame(vpn)
        offset = addr - vpn * page
        old = unpack_from("<d", frame, offset)[0]
        pack_into("<d", frame, offset, old + delta)
        return old
