"""Thread migration across machine boundaries (§III-A).

Forward migration ships the minimal execution context (registers + address
space identifiers — *not* memory contents) to the destination.  The first
migration of a process to a node additionally creates the **remote worker**
and per-process structures there, which dominates the first-migration
latency (the "Remote Worker" component of Figure 3); later migrations just
fork a remote thread from the existing worker.  Backward migration updates
the original thread's context and is far cheaper.

Every migration appends a :class:`MigrationRecord` with the per-side costs
Table II reports and the remote-side component breakdown Figure 3 plots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator

from repro.core.errors import MigrationError, NodeFailedError
from repro.core.stats import MigrationRecord
from repro.net.messages import Message, MsgType
from repro.obs.tracing import maybe_span

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess
    from repro.core.thread import DexThread


class MigrationService:
    """Per-process migration machinery."""

    def __init__(self, proc: "DexProcess"):
        self.proc = proc

    def migrate(self, thread: "DexThread", dest: int) -> Generator:
        """Relocate *thread* to node *dest*.  A no-op when already there."""
        proc = self.proc
        cluster = proc.cluster
        if not 0 <= dest < cluster.num_nodes:
            raise MigrationError(f"no such node: {dest}")
        if not thread.alive:
            raise MigrationError(f"thread {thread.tid} is not running")
        proc.check_failed()
        if cluster.chaos is not None and cluster.chaos.is_fenced(dest):
            raise NodeFailedError(
                dest, f"cannot migrate thread {thread.tid} to a failed node"
            )
        src = thread.current_node
        if dest == src:
            return
        if dest == proc.origin:
            yield from self._migrate_back(thread)
        else:
            yield from self._migrate_forward(thread, dest)

    # ------------------------------------------------------------------

    def _migrate_forward(self, thread: "DexThread", dest: int) -> Generator:
        # the span covers exactly the MigrationRecord [start_us, end_us]
        # interval, so per-phase attribution agrees with Table II totals
        with maybe_span(
            self.proc.obs, "migration.forward",
            node=thread.current_node, tid=thread.tid, dest=dest,
        ):
            yield from self._migrate_forward_impl(thread, dest)

    def _migrate_forward_impl(self, thread: "DexThread", dest: int) -> Generator:
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        src = thread.current_node
        start = engine.now
        components: Dict[str, float] = {}

        # source side: collect pt_regs / mm identifiers
        source_cost = params.context_collect_cost
        if src == proc.origin and not proc.ever_migrated:
            # first migration out of this process: origin-side per-process
            # bookkeeping (pairing structures, migration state)
            source_cost += params.origin_process_setup_cost
        elif src == proc.origin:
            source_cost += params.origin_resume_cost
        yield engine.timeout(source_cost)
        components["context_collect"] = params.context_collect_cost
        proc.ever_migrated = True

        reply = yield from proc.cluster.net.request(
            Message(
                MsgType.MIGRATE,
                src=src,
                dst=dest,
                payload={"pid": proc.pid, "tid": thread.tid},
            )
        )
        components.update(reply.payload["components"])
        remote_us = reply.payload["remote_us"]
        first_on_node = "remote_worker" in components
        # the thread now runs at the destination; its paired original
        # thread (conceptually) sleeps awaiting delegation requests
        thread.current_node = dest
        thread.migration_count += 1
        proc.stats.migrations.append(
            MigrationRecord(
                tid=thread.tid,
                src=src,
                dst=dest,
                kind="forward",
                first_on_node=first_on_node,
                start_us=start,
                end_us=engine.now,
                origin_us=source_cost,
                remote_us=remote_us,
                components=components,
            )
        )

    def handle_migrate_msg(self, msg: Message) -> Generator:
        """Destination-side handler: reconstruct the thread from the
        received execution context."""
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        dest = msg.dst
        arrival = engine.now
        components: Dict[str, float] = {}
        ready = proc.worker_ready.get(dest)
        if ready is None:
            # first thread of this process here: create the remote worker
            # and the per-process address-space skeleton (§III-A: "DeX
            # starts the remote worker with the given address space
            # information"), the dominant cost of a first migration.
            # Concurrent arrivals wait on the setup event below.
            ready = proc.worker_ready[dest] = engine.event(
                name=f"worker_ready@{dest}"
            )
            with maybe_span(proc.obs, "migration.remote_worker", node=dest):
                yield engine.timeout(params.remote_worker_setup_cost)
            components["remote_worker"] = params.remote_worker_setup_cost
            proc.nodes_with_worker.add(dest)
            proc.node_state(dest)  # materialize page table / frames / VMA replica
            chaos = proc.cluster.chaos
            if chaos is not None:
                # the new worker starts renewing its lease with the origin;
                # silence beyond lease_timeout_us declares the node failed
                chaos.register_lease(proc, dest)
            ready.succeed()
        else:
            if not ready.triggered:
                # the worker is mid-setup for another migration: wait
                yield ready
            # wake the sleeping remote worker so it can fork for us
            with maybe_span(proc.obs, "migration.worker_wake", node=dest):
                yield engine.timeout(params.worker_wake_cost)
            components["worker_wake"] = params.worker_wake_cost
        # fork a remote thread from the remote worker (CLONE_THREAD)
        with maybe_span(proc.obs, "migration.thread_fork", node=dest):
            yield engine.timeout(params.remote_thread_fork_cost)
        components["thread_fork"] = params.remote_thread_fork_cost
        with maybe_span(proc.obs, "migration.context_restore", node=dest):
            yield engine.timeout(params.remote_context_restore_cost)
        components["context_restore"] = params.remote_context_restore_cost
        with maybe_span(proc.obs, "migration.schedule", node=dest):
            yield engine.timeout(params.remote_sched_cost)
        components["schedule"] = params.remote_sched_cost
        yield from proc.cluster.net.send(
            msg.make_reply(
                MsgType.MIGRATE_DONE,
                {"remote_us": engine.now - arrival, "components": components},
            )
        )

    # ------------------------------------------------------------------

    def _migrate_back(self, thread: "DexThread") -> Generator:
        """Backward migration: ship the up-to-date context home and resume
        the original thread (§III-A)."""
        with maybe_span(
            self.proc.obs, "migration.backward",
            node=thread.current_node, tid=thread.tid, dest=self.proc.origin,
        ):
            yield from self._migrate_back_impl(thread)

    def _migrate_back_impl(self, thread: "DexThread") -> Generator:
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        src = thread.current_node
        start = engine.now
        # remote side: collect the remote thread's context
        yield engine.timeout(params.context_collect_cost)
        reply = yield from proc.cluster.net.request(
            Message(
                MsgType.MIGRATE_BACK,
                src=src,
                dst=proc.origin,
                payload={"pid": proc.pid, "tid": thread.tid},
            )
        )
        # the remote thread exits; the original thread resumes at the origin
        thread.current_node = proc.origin
        thread.migration_count += 1
        proc.stats.migrations.append(
            MigrationRecord(
                tid=thread.tid,
                src=src,
                dst=proc.origin,
                kind="backward",
                first_on_node=False,
                start_us=start,
                end_us=engine.now,
                origin_us=reply.payload["origin_us"],
                remote_us=params.context_collect_cost,
                components={
                    "context_collect": params.context_collect_cost,
                    "context_update": reply.payload["origin_us"],
                },
            )
        )

    def handle_migrate_back_msg(self, msg: Message) -> Generator:
        """Origin-side handler: update the original thread's context with
        the received state and mark it runnable."""
        proc = self.proc
        engine = proc.cluster.engine
        params = proc.cluster.params
        yield engine.timeout(params.backward_update_cost)
        yield from proc.cluster.net.send(
            msg.make_reply(
                MsgType.MIGRATE_DONE, {"origin_us": params.backward_update_cost}
            )
        )
