"""The pluggable coherence-directory layer.

DeX (§III-B) tracks page ownership "at the origin": every ownership
request, grant, and revocation serializes at the process's origin node,
which makes the origin a hotspot exactly when fault traffic grows with the
node count.  This module turns that hard-wired choice into a policy:

* :class:`CoherenceDirectory` — the abstract interface the consistency
  protocol programs against.  It answers two questions: *where* does page
  metadata live (``home(vpn)``), and *what* is the metadata
  (:class:`PageEntry` lookup / creation / teardown).
* :class:`OriginDirectory` — the paper's design: one shard, resident at
  the origin; ``home(vpn) == origin`` for every page.
* :class:`ShardedDirectory` — a home-node directory in the spirit of
  Mitosis' replicated page tables and the decentralized coherence
  metadata argued for by "Elasticizing Linux via Joint Disaggregation":
  each VPN hashes to a *home node* (``home(vpn) = shard_map[vpn %
  nshards]``) and ownership requests resolve at the page's home instead
  of always at the origin.

Storage is uniform across backends: every node hosts a
:class:`DirectoryShard` inside its :class:`~repro.core.process.
NodeProcessState`; the backends differ only in the home-assignment policy
and therefore in which shards ever hold entries.

Pages with no directory entry anywhere are implicitly owned exclusively
by the origin ("initially, the origin exclusively owns all pages of the
process"), so a process that never migrates pays nothing under either
backend: entries materialize only when a page first participates in the
protocol.

Shard-map visibility model (sharded backend): the home-assignment map is
*owned by the origin* (it is part of the per-process metadata the origin
creates, and a future rebalancer may remap shards).  A node always knows
which shards it hosts itself, and the origin knows the whole map; any
other node must resolve ``vpn -> home`` through the origin once and then
caches the answer in its per-node :class:`OwnerHintCache` (an LRU of
last-known metadata owners, validated on use: a mis-routed request is
redirected by the receiver).  Repeat faults therefore skip the resolution
hop — the cache's hit rate is reported by the bench harness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.memory.radix_tree import RadixTree

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess

DIRECTORY_BACKENDS = ("origin", "sharded")


@dataclass
class PageEntry:
    """Directory state for one virtual page.

    ``data_version`` is the version of the page's current contents; each
    node's PTE remembers the version it last held so the home can skip
    the data transfer on a grant when the requester is already up to date
    (§III-B's traffic optimization).
    """

    vpn: int
    owners: Set[int] = field(default_factory=set)
    writer: Optional[int] = None
    data_version: int = 0
    #: a protocol operation is in flight for this page; concurrent requests
    #: are told to retry (the race §V-D's contended faults lose)
    busy: bool = False
    #: busy-collisions this page has caused (how often a requester was
    #: told to retry because an operation was already in flight here)
    busy_retries: int = 0

    def is_owner(self, node: int) -> bool:
        return node in self.owners


class DirectoryShard:
    """The slice of the coherence directory one node hosts: a
    radix-tree-indexed map of :class:`PageEntry`, plus serving counters."""

    def __init__(self, node: int = -1):
        self.node = node
        self.tree = RadixTree()
        self.requests_served = 0
        self.entries_created = 0

    def __len__(self) -> int:
        return len(self.tree)


class OwnerHintCache:
    """Per-node LRU of last-known metadata owners (``vpn -> home node``).

    A remote node that faulted on a page before remembers which node
    answered for it; on the next fault it routes the ownership request
    straight there instead of resolving the home through the origin
    first.  Hints are *validated on use*: the receiver checks that it
    really is the page's home and redirects otherwise, so a stale hint
    costs one extra hop but never correctness.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"hint-cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lru: "OrderedDict[int, int]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lru)

    def get(self, vpn: int) -> Optional[int]:
        node = self._lru.get(vpn)
        if node is not None:
            self._lru.move_to_end(vpn)
        return node

    def insert(self, vpn: int, node: int) -> None:
        self._lru[vpn] = node
        self._lru.move_to_end(vpn)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self.evictions += 1

    def invalidate(self, vpn: int) -> None:
        self._lru.pop(vpn, None)


class CoherenceDirectory:
    """Abstract interface between the consistency protocol and the
    placement/storage of page-ownership metadata.

    The protocol only ever asks: where is *vpn*'s metadata
    (:meth:`home`), is it here (:meth:`hosts`), and give me / drop the
    entries (:meth:`lookup`, :meth:`get_or_create`, :meth:`drop_range`).
    Whole-directory iteration (:meth:`entries`) is a control-plane and
    test convenience — the data plane never iterates globally.
    """

    #: backend name, as selected by ``SimParams.directory``
    backend: str = "abstract"

    def __init__(self, proc: "DexProcess"):
        self.proc = proc
        self.origin = proc.origin

    # -- placement policy ---------------------------------------------------

    def home(self, vpn: int) -> int:
        """The node hosting *vpn*'s directory entry."""
        raise NotImplementedError

    def hosts(self, node: int, vpn: int) -> bool:
        """Whether *node* hosts *vpn*'s entry — this is *local* knowledge
        (a node always knows its own shard assignment), unlike
        :meth:`home` for arbitrary pages, which remote nodes must resolve
        through the origin under the sharded backend."""
        return self.home(vpn) == node

    def shard_nodes(self) -> List[int]:
        """Nodes that may host directory entries under this policy."""
        raise NotImplementedError

    # -- storage ------------------------------------------------------------

    def shard(self, node: int) -> DirectoryShard:
        """The shard hosted at *node* (created on first touch)."""
        state = self.proc.node_state(node)
        if state.directory_shard.node < 0:
            state.directory_shard.node = node
        return state.directory_shard

    def requests_by_home(self) -> Dict[int, int]:
        """``{hosting node: requests_served}`` over shards that exist.

        Read-only, unlike :meth:`shard`: it walks only node states already
        materialized, never creating one — so the DexScope sampler can call
        it without perturbing lazily-created state (and the run stays
        bit-identical with sampling on)."""
        out: Dict[int, int] = {}
        for node, state in self.proc.iter_node_states():
            shard = state.directory_shard
            if shard.requests_served or len(shard):
                out[node] = shard.requests_served
        return out

    def lookup(self, vpn: int) -> Optional[PageEntry]:
        return self.shard(self.home(vpn)).tree.get(vpn)

    def get_or_create(self, vpn: int) -> Tuple[PageEntry, bool]:
        """The entry for *vpn*, plus whether it was just materialized (in
        which case the caller must install the origin's implicit-exclusive
        PTE state)."""
        shard = self.shard(self.home(vpn))
        entry = shard.tree.get(vpn)
        if entry is not None:
            return entry, False
        entry = PageEntry(vpn=vpn, owners={self.origin}, writer=self.origin)
        shard.tree.insert(vpn, entry)
        shard.entries_created += 1
        return entry, True

    def drop_range(self, vpn_start: int, vpn_end: int) -> int:
        """Remove entries for a VMA shrink; returns how many were dropped.
        Rides on the eager ``VMA_SHRINK`` broadcast (§III-D), which already
        reaches every node, so no extra messages are modeled."""
        dropped = 0
        for node in self.shard_nodes():
            tree = self.shard(node).tree
            victims = [vpn for vpn, _ in tree.iter_range(vpn_start, vpn_end)]
            for vpn in victims:
                tree.delete(vpn)
            dropped += len(victims)
        return dropped

    def entries(self) -> Iterator[Tuple[int, PageEntry]]:
        for node in self.shard_nodes():
            yield from self.shard(node).tree.items()

    def entries_in_range(
        self, vpn_start: int, vpn_end: int
    ) -> List[Tuple[int, PageEntry]]:
        out: List[Tuple[int, PageEntry]] = []
        for node in self.shard_nodes():
            out.extend(self.shard(node).tree.iter_range(vpn_start, vpn_end))
        return out

    def drop_entry(self, vpn: int) -> bool:
        """Remove a single entry.  Fail-stop recovery uses this when the
        entry's only current copy died with a node and cannot be reclaimed;
        the process is being failed, and a dangling entry would trip the
        teardown invariant checks.  Returns whether an entry existed."""
        return self.drop_range(vpn, vpn + 1) > 0

    def entries_hosted(self, node: int) -> int:
        """How many directory entries *node* currently hosts.  The
        interface teardown code uses instead of peeking at shard storage
        (a node hosting entries must keep its state alive)."""
        return len(self.shard(node))

    def __len__(self) -> int:
        return sum(len(self.shard(node)) for node in self.shard_nodes())

    # -- invariants ---------------------------------------------------------

    def check_entry(
        self, vpn: int, entry: PageEntry, hosted_at: Optional[int] = None
    ) -> None:
        """Per-entry multiple-reader/single-writer assertions.  Applied to
        every entry by :meth:`check_invariants` at quiescent points, and
        by the coherence sanitizer on **every ownership transition** —
        right when a grant commits, not just at teardown."""
        if hosted_at is not None:
            assert self.home(vpn) == hosted_at, (
                f"page {vpn:#x}: entry hosted at node {hosted_at} but its "
                f"home is {self.home(vpn)}"
            )
        assert entry.owners, f"page {vpn:#x}: entry with no owners"
        if entry.writer is not None:
            assert entry.owners == {entry.writer}, (
                f"page {vpn:#x}: writer {entry.writer} coexists with "
                f"owners {entry.owners}"
            )

    def check_invariants(self) -> None:
        """Raise AssertionError when the multiple-reader/single-writer
        invariant is broken, or when an entry sits in the wrong shard.
        Called by tests after every protocol step."""
        for node in self.shard_nodes():
            for vpn, entry in self.shard(node).tree.items():
                self.check_entry(vpn, entry, hosted_at=node)


class OriginDirectory(CoherenceDirectory):
    """The paper's §III-B design: one shard, resident at the origin.

    Every page's home is the origin, so ownership requests from any node
    funnel into the origin's NIC and handler — the serialization point the
    sharded backend exists to relieve.
    """

    backend = "origin"

    def home(self, vpn: int) -> int:
        return self.origin

    def shard_nodes(self) -> List[int]:
        return [self.origin]


def _next_prime(n: int) -> int:
    """The smallest prime strictly greater than *n*."""
    candidate = max(n + 1, 2)
    while True:
        if all(candidate % p for p in range(2, int(candidate**0.5) + 1)):
            return candidate
        candidate += 1


class ShardedDirectory(CoherenceDirectory):
    """Home-node directory: VPNs hash across per-node shards.

    ``home(vpn) = shard_map[vpn % nshards]`` — the DeX kernel extension is
    loaded on every node of the rack (§II), so any node can host directory
    shards for any process, whether or not the process ever runs threads
    there.  The page's *data* plane follows the metadata: revocation
    flushes land at the home, and grants are served from the home's frame,
    so the origin's NIC no longer carries every page of protocol traffic.

    The default shard count is the smallest prime greater than the node
    count: segment base addresses are power-of-two aligned, so a
    power-of-two shard count resonates with them and pins every segment's
    first (usually hottest) page to the origin — the one node sharding is
    supposed to relieve.
    """

    backend = "sharded"

    def __init__(self, proc: "DexProcess"):
        super().__init__(proc)
        params = proc.cluster.params
        num_nodes = proc.cluster.num_nodes
        nshards = params.directory_shards or _next_prime(num_nodes)
        if nshards < 1:
            raise ValueError(f"directory_shards must be >= 1, got {nshards}")
        self.nshards = nshards
        #: shard index -> hosting node; owned by the origin (a rebalancer
        #: may remap it), learned lazily by remote nodes via home lookups
        self.shard_map: List[int] = [i % num_nodes for i in range(nshards)]

    def home(self, vpn: int) -> int:
        return self.shard_map[vpn % self.nshards]

    def shard_nodes(self) -> List[int]:
        return sorted(set(self.shard_map))


def make_directory(proc: "DexProcess") -> CoherenceDirectory:
    """Instantiate the backend selected by ``SimParams.directory``."""
    backend = proc.cluster.params.directory
    if backend == "origin":
        return OriginDirectory(proc)
    if backend == "sharded":
        return ShardedDirectory(proc)
    raise ValueError(
        f"unknown directory backend {backend!r}; expected one of "
        f"{DIRECTORY_BACKENDS}"
    )
