"""Work delegation to the origin (§III-A).

"Remote threads can ask their corresponding original threads to work at the
origin on their behalf. [...] When a remote thread requires a stateful
kernel feature, the request is handed to the original thread, performed at
the origin, and only its result is transferred back to the remote thread."

A delegated operation runs as a generator *at the origin* against the
origin's authoritative state (futex queues, VMA map).  When the calling
thread is already at the origin the dispatch is a direct call — the
"identical to handling the request from a local thread" case.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator

from repro.core.errors import DexError
from repro.net.messages import Message, MsgType
from repro.obs.tracing import maybe_span

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess


class OriginExecContext:
    """Execution context of the sleeping original thread: delegated
    operations that touch memory (e.g. the futex value check) fault pages
    in at the origin through this."""

    def __init__(self, proc: "DexProcess", tid: int):
        self.proc = proc
        self.tid = tid

    def fault_in(self, addr: int, nbytes: int, write: bool) -> Generator:
        yield from self.proc.faults.ensure_range(
            self.proc.origin, self.tid, addr, nbytes, write, site="delegation"
        )


class DelegationService:
    """Registry + transport for delegated operations."""

    def __init__(self, proc: "DexProcess"):
        self.proc = proc
        self._ops: Dict[str, Callable[..., Generator]] = {}
        self._register_builtin_ops()

    def register(self, name: str, op: Callable[..., Generator]) -> None:
        """Register *op(origin_ctx, **kwargs) -> result* as a delegated
        operation.  The result must be message-serializable."""
        if name in self._ops:
            raise DexError(f"delegated op {name!r} already registered")
        self._ops[name] = op

    def _register_builtin_ops(self) -> None:
        proc = self.proc

        def futex_wait(ctx, addr: int, expected: int) -> Generator:
            result = yield from proc.futex.wait(ctx, addr, expected)
            return result

        def futex_wake(ctx, addr: int, count: int) -> Generator:
            result = yield from proc.futex.wake(ctx, addr, count)
            return result

        def mmap(ctx, length: int, prot: int, tag: str) -> Generator:
            start = yield from proc.do_mmap(length, prot, tag)
            return start

        def munmap(ctx, start: int, length: int) -> Generator:
            yield from proc.do_munmap(start, length)
            return 0

        def mprotect(ctx, start: int, length: int, prot: int) -> Generator:
            yield from proc.do_mprotect(start, length, prot)
            return 0

        def noop(ctx) -> Generator:
            # used by the delegation microbenchmark
            yield proc.cluster.engine.timeout(0.0)
            return "ok"

        for name, op in (
            ("futex_wait", futex_wait),
            ("futex_wake", futex_wake),
            ("mmap", mmap),
            ("munmap", munmap),
            ("mprotect", mprotect),
            ("noop", noop),
        ):
            self.register(name, op)

    # -- calling side --------------------------------------------------------

    def call(self, node: int, tid: int, op: str, **kwargs: Any) -> Generator:
        """Invoke *op* at the origin on behalf of thread *tid* currently at
        *node*; returns the op's result."""
        proc = self.proc
        proc.check_failed()
        if op not in self._ops:
            raise DexError(f"unknown delegated op {op!r}")
        ctx = OriginExecContext(proc, tid)
        if node == proc.origin:
            result = yield from self._ops[op](ctx, **kwargs)
            return result
        proc.stats.delegations += 1
        detector = proc.deadlocks
        if detector is not None:
            detector.on_delegation_call(tid, op, node)
        try:
            with maybe_span(
                proc.obs, "delegation.call", node=node, tid=tid, op=op
            ):
                reply = yield from proc.cluster.net.request(
                    Message(
                        MsgType.DELEGATE,
                        src=node,
                        dst=proc.origin,
                        payload={"pid": proc.pid, "tid": tid, "op": op, "kwargs": kwargs},
                    )
                )
        finally:
            if detector is not None:
                detector.on_delegation_return(tid)
        if "error" in reply.payload:
            kind = reply.payload.get("error_kind")
            if kind == "DeadlockError":
                # re-raise detector findings with their own type so the
                # caller can tell a wait-for cycle from an errno
                from repro.check import DeadlockError

                raise DeadlockError(reply.payload["error"])
            if kind == "NodeFailedError":
                # fail-stop recovery verdicts keep their type across the
                # delegation round-trip
                from repro.core.errors import NodeFailedError

                raise NodeFailedError(
                    reply.payload.get("error_node", -1), reply.payload["error"]
                )
            raise DexError(reply.payload["error"])
        return reply.payload["result"]

    # -- origin side -----------------------------------------------------------

    def handle_delegate(self, msg: Message) -> Generator:
        """Origin handler for :data:`MsgType.DELEGATE`: wake the sleeping
        original thread, run the op in its context, reply with the result."""
        proc = self.proc
        params = proc.cluster.params
        yield proc.cluster.engine.timeout(params.delegation_dispatch_cost)
        ctx = OriginExecContext(proc, msg.payload["tid"])
        op = self._ops.get(msg.payload["op"])
        if op is None:
            payload = {"error": f"unknown delegated op {msg.payload['op']!r}"}
        else:
            try:
                result = yield from op(ctx, **msg.payload["kwargs"])
                payload = {"result": result}
            except DexError as err:
                # the op failed at the origin: ship the errno back, the
                # way a failed syscall returns to a local caller (the
                # error kind lets checker findings keep their type)
                payload = {"error": str(err), "error_kind": type(err).__name__}
                node = getattr(err, "node", None)
                if node is not None:
                    payload["error_node"] = node
        yield from proc.cluster.net.send(
            msg.make_reply(MsgType.DELEGATE_REPLY, payload)
        )
