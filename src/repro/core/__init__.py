"""The DeX core: thread migration + distributed shared memory (§III).

Public surface:

* :class:`DexCluster` — a simulated rack with DeX loaded on every node;
* :class:`DexProcess` — a process whose threads can span the rack;
* :class:`ThreadContext` — the handle application code programs against;
* the protocol internals (:class:`ConsistencyProtocol`, the
  :class:`CoherenceDirectory` backends, :class:`FaultHandler`, ...) for
  tests, tools, and ablation studies.
"""

from repro.core.balancer import AffinityBalancer, LoadBalancer, MigrationHints
from repro.core.cluster import DexCluster, DexNode
from repro.core.delegation import DelegationService
from repro.core.directory import (
    DIRECTORY_BACKENDS,
    CoherenceDirectory,
    DirectoryShard,
    OriginDirectory,
    OwnerHintCache,
    PageEntry,
    ShardedDirectory,
)
from repro.core.errors import DexError, MigrationError, ProtocolError, SegmentationFault
from repro.core.fault import FaultHandler, InFlightFault
from repro.core.futex import FutexTable
from repro.core.migration import MigrationService
from repro.core.ownership import OwnershipDirectory
from repro.core.process import (
    GLOBALS_BASE,
    GLOBALS_SIZE,
    HEAP_BASE,
    MMAP_BASE,
    STACK_BASE,
    STACK_SIZE,
    DexProcess,
    NodeProcessState,
)
from repro.core.protocol import ConsistencyProtocol
from repro.core.stats import DexStats, FaultRecord, MigrationRecord
from repro.core.thread import DexThread, ThreadContext

__all__ = [
    "AffinityBalancer",
    "CoherenceDirectory",
    "ConsistencyProtocol",
    "DIRECTORY_BACKENDS",
    "DirectoryShard",
    "LoadBalancer",
    "MigrationHints",
    "DelegationService",
    "DexCluster",
    "DexError",
    "DexNode",
    "DexProcess",
    "DexStats",
    "DexThread",
    "FaultHandler",
    "FaultRecord",
    "FutexTable",
    "GLOBALS_BASE",
    "GLOBALS_SIZE",
    "HEAP_BASE",
    "InFlightFault",
    "MMAP_BASE",
    "MigrationError",
    "MigrationRecord",
    "MigrationService",
    "NodeProcessState",
    "OriginDirectory",
    "OwnerHintCache",
    "OwnershipDirectory",
    "PageEntry",
    "ShardedDirectory",
    "ProtocolError",
    "STACK_BASE",
    "STACK_SIZE",
    "SegmentationFault",
    "ThreadContext",
]
