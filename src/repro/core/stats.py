"""Counters and logs collected by a running DeX process.

Everything the evaluation section reports is derived from these:
per-fault latencies (the bimodal distribution of §V-D), migration breakdowns
(Table II / Figure 3), protocol message counts, and transfer-skip hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MigrationRecord:
    """One thread migration, with the per-side costs Table II reports and
    the remote-side component breakdown Figure 3 plots."""

    tid: int
    src: int
    dst: int
    kind: str  # "forward" | "backward"
    first_on_node: bool
    start_us: float
    end_us: float
    origin_us: float = 0.0
    remote_us: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class FaultRecord:
    """Latency sample for one completed page fault."""

    vpn: int
    node: int
    write: bool
    latency_us: float
    retries: int
    coalesced: bool  # resolved as a follower


@dataclass
class DexStats:
    """Aggregated per-process statistics."""

    faults_read: int = 0
    faults_write: int = 0
    faults_coalesced: int = 0
    fault_retries: int = 0
    pages_transferred: int = 0
    transfers_skipped: int = 0
    invalidations_sent: int = 0
    vma_queries: int = 0
    vma_shrink_broadcasts: int = 0
    delegations: int = 0
    futex_waits: int = 0
    futex_wakes: int = 0
    migrations: List[MigrationRecord] = field(default_factory=list)
    fault_latencies: List[FaultRecord] = field(default_factory=list)
    #: cap on retained latency samples; counters keep counting past it
    max_latency_samples: int = 500_000

    @property
    def total_faults(self) -> int:
        return self.faults_read + self.faults_write

    def record_fault(self, record: FaultRecord) -> None:
        if record.write:
            self.faults_write += 1
        else:
            self.faults_read += 1
        if record.coalesced:
            self.faults_coalesced += 1
        self.fault_retries += record.retries
        if len(self.fault_latencies) < self.max_latency_samples:
            self.fault_latencies.append(record)

    def latency_summary(self) -> Dict[str, float]:
        """Mean fault latency split by contended (retried) vs fast-path —
        the two modes of the §V-D distribution."""
        fast = [r.latency_us for r in self.fault_latencies if r.retries == 0 and not r.coalesced]
        slow = [r.latency_us for r in self.fault_latencies if r.retries > 0]
        out: Dict[str, float] = {}
        if fast:
            out["fast_path_mean_us"] = sum(fast) / len(fast)
            out["fast_path_count"] = float(len(fast))
        if slow:
            out["contended_mean_us"] = sum(slow) / len(slow)
            out["contended_count"] = float(len(slow))
        return out
