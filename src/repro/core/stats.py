"""Counters and logs collected by a running DeX process.

Everything the evaluation section reports is derived from these:
per-fault latencies (the bimodal distribution of §V-D), migration breakdowns
(Table II / Figure 3), protocol message counts, transfer-skip hits, and the
coherence-directory layer's routing counters (home-lookup traffic and the
owner-hint cache hit rate under the sharded backend).

:class:`DexStats` is a typed facade over a
:class:`repro.obs.metrics.MetricsRegistry`: the scalar counters read/write
registry :class:`Counter` objects through attribute properties (so
``stats.faults_write += 1`` still works everywhere), the per-home and
per-page dicts are label families, and fault latencies feed bounded
log-bucket histograms (one per §V-D mode) so long runs cannot grow memory
without bound — the retained :class:`FaultRecord` list is capped, but the
histograms see **every** sample, so means/counts stay exact past the cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry


@dataclass
class MigrationRecord:
    """One thread migration, with the per-side costs Table II reports and
    the remote-side component breakdown Figure 3 plots."""

    tid: int
    src: int
    dst: int
    kind: str  # "forward" | "backward"
    first_on_node: bool
    start_us: float
    end_us: float
    origin_us: float = 0.0
    remote_us: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class FaultRecord:
    """Latency sample for one completed page fault."""

    vpn: int
    node: int
    write: bool
    latency_us: float
    retries: int
    coalesced: bool  # resolved as a follower


#: the scalar counters of the facade, with their registry help strings
_COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("faults_read", "read page faults"),
    ("faults_write", "write page faults"),
    ("faults_coalesced", "faults resolved as a follower (§III-C)"),
    ("fault_retries", "busy-retry round trips across all faults"),
    ("pages_transferred", "page payloads that crossed the wire"),
    ("transfers_skipped", "grants that skipped the data transfer"),
    ("invalidations_sent", "ownership revocations sent to remote owners"),
    ("vma_queries", "on-demand VMA sync queries (§III-D)"),
    ("vma_shrink_broadcasts", "eager VMA shrink broadcasts"),
    ("delegations", "operations delegated to the origin (§III-A)"),
    ("futex_waits", "futex_wait operations at the origin"),
    ("futex_wakes", "futex_wake operations at the origin"),
    ("hint_hits", "owner-hint cache hits (sharded directory)"),
    ("hint_misses", "owner-hint cache misses"),
    ("hint_stale", "stale owner hints caught by a redirect"),
    ("home_lookups", "home resolutions through the origin"),
)

#: §V-D latency modes, keyed by how the fault resolved
_MODE_FAST = "fast"
_MODE_CONTENDED = "contended"
_MODE_COALESCED = "coalesced"


class DexStats:
    """Aggregated per-process statistics (facade over a metrics registry)."""

    def __init__(self, max_latency_samples: int = 500_000) -> None:
        reg = self.registry = MetricsRegistry()
        self._counters: Dict[str, object] = {
            name: reg.counter(name, help) for name, help in _COUNTERS
        }
        #: ownership requests served per directory-hosting node (who carries
        #: the metadata load — all-origin under the origin backend)
        self._directory_requests = reg.counter(
            "directory_requests",
            "ownership requests served, by directory-hosting node",
            labelnames=("home",),
        )
        #: busy-retries per page (how often each page made a requester back
        #: off), feeding the contended_pages top-N of latency_summary()
        self._busy_retries = reg.counter(
            "busy_retries",
            "busy-retry backoffs, by faulting page",
            labelnames=("vpn",),
        )
        #: fault latency, split by §V-D mode; sees every sample regardless
        #: of the retained-record cap (sub-µs start, ~sqrt(2) buckets)
        self.fault_latency: Histogram = reg.histogram(
            "fault_latency_us",
            "page-fault latency by §V-D mode",
            labelnames=("mode",),
        )
        self.migrations: List[MigrationRecord] = []
        self.fault_latencies: List[FaultRecord] = []
        #: cap on retained per-fault records; histograms keep counting past it
        self.max_latency_samples = max_latency_samples
        #: fault records not retained because the cap was hit
        self.latency_samples_dropped = 0

    # -- derived -----------------------------------------------------------

    @property
    def total_faults(self) -> int:
        return self.faults_read + self.faults_write

    @property
    def hint_hit_rate(self) -> Optional[float]:
        """Owner-hint cache hit rate, or None when no resolution ever ran
        (single node, or the origin backend)."""
        total = self.hint_hits + self.hint_misses
        if total == 0:
            return None
        return self.hint_hits / total

    @property
    def directory_requests(self) -> Dict[int, int]:
        """Per-home served-request counts, as a plain dict view."""
        return self._directory_requests.value_by_label()

    @property
    def busy_retries_by_page(self) -> Dict[int, int]:
        """Per-page busy-retry counts, as a plain dict view."""
        return self._busy_retries.value_by_label()

    # -- recording ----------------------------------------------------------

    def record_fault(self, record: FaultRecord) -> None:
        if record.write:
            self.faults_write += 1
        else:
            self.faults_read += 1
        if record.coalesced:
            self.faults_coalesced += 1
            mode = _MODE_COALESCED
        elif record.retries > 0:
            mode = _MODE_CONTENDED
        else:
            mode = _MODE_FAST
        self.fault_retries += record.retries
        self.fault_latency.labels(mode=mode).observe(record.latency_us)
        if len(self.fault_latencies) < self.max_latency_samples:
            self.fault_latencies.append(record)
        else:
            self.latency_samples_dropped += 1

    def record_busy_retry(self, vpn: int) -> None:
        self._busy_retries.labels(vpn=vpn).inc()

    def record_directory_request(self, home: int) -> None:
        self._directory_requests.labels(home=home).inc()

    # -- reporting -----------------------------------------------------------

    def contended_pages(self, top_n: int = 5) -> List[Tuple[int, int]]:
        """The *top_n* pages by busy-retry count, worst first — which pages
        the §V-D contended mode is attributable to."""
        ranked = sorted(
            self.busy_retries_by_page.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:top_n]

    def fault_latency_percentile(self, p: float, mode: Optional[str] = None) -> float:
        """Approximate fault-latency percentile (bucket resolution), over
        all modes or one of ``"fast"``/``"contended"``/``"coalesced"``."""
        hist = self.fault_latency if mode is None else self.fault_latency.labels(mode=mode)
        return hist.percentile(p)

    def latency_summary(self, top_n: int = 5) -> Dict[str, object]:
        """Mean fault latency split by contended (retried) vs fast-path —
        the two modes of the §V-D distribution — plus the pages that caused
        the contention.  Computed from the histograms, so the means and
        counts cover every fault even past the retained-record cap."""
        fast = self.fault_latency.labels(mode=_MODE_FAST)
        slow = self.fault_latency.labels(mode=_MODE_CONTENDED)
        out: Dict[str, object] = {}
        if fast.count:
            out["fast_path_mean_us"] = fast.mean
            out["fast_path_count"] = float(fast.count)
        if slow.count:
            out["contended_mean_us"] = slow.mean
            out["contended_count"] = float(slow.count)
        contended = self.contended_pages(top_n)
        if contended:
            out["contended_pages"] = contended
        return out

    def report(self) -> str:
        """Text dump of every non-zero metric (single snapshot path)."""
        return self.registry.report()


def _counter_property(name: str) -> property:
    def _get(self: DexStats) -> int:
        return self._counters[name].value

    def _set(self: DexStats, value: int) -> None:
        self._counters[name].value = value

    return property(_get, _set)


# attribute-style access to the scalar counters: `stats.faults_write += 1`
# reads and writes the underlying registry Counter
for _name, _help in _COUNTERS:
    setattr(DexStats, _name, _counter_property(_name))
del _name, _help
