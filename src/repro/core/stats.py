"""Counters and logs collected by a running DeX process.

Everything the evaluation section reports is derived from these:
per-fault latencies (the bimodal distribution of §V-D), migration breakdowns
(Table II / Figure 3), protocol message counts, transfer-skip hits, and the
coherence-directory layer's routing counters (home-lookup traffic and the
owner-hint cache hit rate under the sharded backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class MigrationRecord:
    """One thread migration, with the per-side costs Table II reports and
    the remote-side component breakdown Figure 3 plots."""

    tid: int
    src: int
    dst: int
    kind: str  # "forward" | "backward"
    first_on_node: bool
    start_us: float
    end_us: float
    origin_us: float = 0.0
    remote_us: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class FaultRecord:
    """Latency sample for one completed page fault."""

    vpn: int
    node: int
    write: bool
    latency_us: float
    retries: int
    coalesced: bool  # resolved as a follower


@dataclass
class DexStats:
    """Aggregated per-process statistics."""

    faults_read: int = 0
    faults_write: int = 0
    faults_coalesced: int = 0
    fault_retries: int = 0
    pages_transferred: int = 0
    transfers_skipped: int = 0
    invalidations_sent: int = 0
    vma_queries: int = 0
    vma_shrink_broadcasts: int = 0
    delegations: int = 0
    futex_waits: int = 0
    futex_wakes: int = 0
    #: owner-hint cache (sharded directory): home resolutions answered
    #: locally vs through the origin, plus hints caught stale by a redirect
    hint_hits: int = 0
    hint_misses: int = 0
    hint_stale: int = 0
    home_lookups: int = 0
    #: ownership requests served per directory-hosting node (who carries
    #: the metadata load — all-origin under the origin backend)
    directory_requests: Dict[int, int] = field(default_factory=dict)
    #: busy-retries per page (how often each page made a requester back
    #: off), feeding the contended_pages top-N of latency_summary()
    busy_retries_by_page: Dict[int, int] = field(default_factory=dict)
    migrations: List[MigrationRecord] = field(default_factory=list)
    fault_latencies: List[FaultRecord] = field(default_factory=list)
    #: cap on retained latency samples; counters keep counting past it
    max_latency_samples: int = 500_000

    @property
    def total_faults(self) -> int:
        return self.faults_read + self.faults_write

    @property
    def hint_hit_rate(self) -> Optional[float]:
        """Owner-hint cache hit rate, or None when no resolution ever ran
        (single node, or the origin backend)."""
        total = self.hint_hits + self.hint_misses
        if total == 0:
            return None
        return self.hint_hits / total

    def record_fault(self, record: FaultRecord) -> None:
        if record.write:
            self.faults_write += 1
        else:
            self.faults_read += 1
        if record.coalesced:
            self.faults_coalesced += 1
        self.fault_retries += record.retries
        if len(self.fault_latencies) < self.max_latency_samples:
            self.fault_latencies.append(record)

    def record_busy_retry(self, vpn: int) -> None:
        self.busy_retries_by_page[vpn] = self.busy_retries_by_page.get(vpn, 0) + 1

    def record_directory_request(self, home: int) -> None:
        self.directory_requests[home] = self.directory_requests.get(home, 0) + 1

    def contended_pages(self, top_n: int = 5) -> List[Tuple[int, int]]:
        """The *top_n* pages by busy-retry count, worst first — which pages
        the §V-D contended mode is attributable to."""
        ranked = sorted(
            self.busy_retries_by_page.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:top_n]

    def latency_summary(self, top_n: int = 5) -> Dict[str, object]:
        """Mean fault latency split by contended (retried) vs fast-path —
        the two modes of the §V-D distribution — plus the pages that caused
        the contention."""
        fast = [r.latency_us for r in self.fault_latencies if r.retries == 0 and not r.coalesced]
        slow = [r.latency_us for r in self.fault_latencies if r.retries > 0]
        out: Dict[str, object] = {}
        if fast:
            out["fast_path_mean_us"] = sum(fast) / len(fast)
            out["fast_path_count"] = float(len(fast))
        if slow:
            out["contended_mean_us"] = sum(slow) / len(slow)
            out["contended_count"] = float(len(slow))
        contended = self.contended_pages(top_n)
        if contended:
            out["contended_pages"] = contended
        return out
