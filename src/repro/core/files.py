"""File I/O through work delegation (§III-A).

"Practically, it is infeasible to re-implement all OS features (such as
futexes and file I/O) to support a distributed execution environment.
Instead, DeX reuses existing implementations through the work delegation."

The file table, the open-file descriptors, and the file contents live at
the origin (the testbed mounts a shared NFS image, so the origin's view is
authoritative).  A remote thread's ``open``/``read``/``write``/``close``
travel to the origin as delegated operations and execute against the
origin-side table exactly as a local call would — the kernel "is identical
to handling the request from a local thread".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator

from repro.core.errors import DexError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import DexProcess

#: charge per byte moved through a file op (page-cache copy at the origin)
_FILE_COPY_BANDWIDTH = 20_000.0  # bytes/us
_FILE_OP_COST = 1.5  # descriptor lookup + bookkeeping


@dataclass
class _OpenFile:
    path: str
    offset: int = 0
    writable: bool = False


class FileService:
    """The per-process origin-side file table, plus the delegated ops."""

    def __init__(self, proc: "DexProcess"):
        self.proc = proc
        self._contents: Dict[str, bytearray] = {}
        self._descriptors: Dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0-2 reserved, as tradition demands
        self.ops = 0
        self._register_ops()

    # -- origin-side filesystem state -------------------------------------

    def preload(self, path: str, data: bytes) -> None:
        """Place a file on the shared filesystem (test/setup helper, the
        analogue of staging input data on the NFS share)."""
        self._contents[path] = bytearray(data)

    def contents(self, path: str) -> bytes:
        try:
            return bytes(self._contents[path])
        except KeyError:
            raise DexError(f"no such file: {path!r}")

    def exists(self, path: str) -> bool:
        return path in self._contents

    # -- the delegated operations ------------------------------------------

    def _register_ops(self) -> None:
        proc = self.proc
        engine_timeout = lambda us: proc.cluster.engine.timeout(us)  # noqa: E731

        def file_open(ctx, path: str, mode: str) -> Generator:
            yield engine_timeout(_FILE_OP_COST)
            self.ops += 1
            if mode not in ("r", "w", "a", "r+"):
                raise DexError(f"bad open mode {mode!r}")
            if mode == "r" and path not in self._contents:
                return -1  # ENOENT, reported as a result not an exception
            if mode == "w" or path not in self._contents:
                self._contents.setdefault(path, bytearray())
                if mode == "w":
                    self._contents[path] = bytearray()
            fd = self._next_fd
            self._next_fd += 1
            handle = _OpenFile(path=path, writable=mode != "r")
            if mode == "a":
                handle.offset = len(self._contents[path])
            self._descriptors[fd] = handle
            return fd

        def file_read(ctx, fd: int, length: int) -> Generator:
            handle = self._handle(fd)
            data = bytes(
                self._contents[handle.path][handle.offset:handle.offset + length]
            )
            handle.offset += len(data)
            yield engine_timeout(_FILE_OP_COST + len(data) / _FILE_COPY_BANDWIDTH)
            self.ops += 1
            # bytes must survive the message payload: ship as latin-1 text
            return data.decode("latin-1")

        def file_write(ctx, fd: int, data: str) -> Generator:
            handle = self._handle(fd)
            if not handle.writable:
                raise DexError(f"fd {fd} is read-only")
            raw = data.encode("latin-1")
            content = self._contents[handle.path]
            end = handle.offset + len(raw)
            if end > len(content):
                content.extend(b"\x00" * (end - len(content)))
            content[handle.offset:end] = raw
            handle.offset = end
            yield engine_timeout(_FILE_OP_COST + len(raw) / _FILE_COPY_BANDWIDTH)
            self.ops += 1
            return len(raw)

        def file_seek(ctx, fd: int, offset: int) -> Generator:
            handle = self._handle(fd)
            if offset < 0:
                raise DexError(f"negative seek offset {offset}")
            handle.offset = offset
            yield engine_timeout(_FILE_OP_COST)
            self.ops += 1
            return offset

        def file_close(ctx, fd: int) -> Generator:
            self._handle(fd)
            del self._descriptors[fd]
            yield engine_timeout(_FILE_OP_COST)
            self.ops += 1
            return 0

        for name, op in (
            ("file_open", file_open),
            ("file_read", file_read),
            ("file_write", file_write),
            ("file_seek", file_seek),
            ("file_close", file_close),
        ):
            proc.delegation.register(name, op)

    def _handle(self, fd: int) -> _OpenFile:
        try:
            return self._descriptors[fd]
        except KeyError:
            raise DexError(f"bad file descriptor: {fd}")
