"""A distributed process: threads + one address space spanning the rack.

:class:`DexProcess` owns the per-node virtual-memory state (page table,
frames, VMA replica, in-flight fault table), the consistency protocol and
its ownership directory, the migration/delegation/futex services, and the
thread table.  The address-space layout mirrors a conventional process:

* ``GLOBALS_BASE``  — the static data segment (one VMA, mapped at start);
* ``HEAP_BASE``     — malloc arena VMAs, created by ``mmap`` on demand;
* ``MMAP_BASE``     — anonymous mappings requested via ``ctx.mmap``;
* ``STACK_BASE``    — one small VMA per thread, tagged ``stack:<tid>``
  (stack-borne false sharing — §IV-B's first case — happens here).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.check import make_sanitizers
from repro.core.balancer import MigrationHints
from repro.core.delegation import DelegationService
from repro.core.directory import DirectoryShard, OwnerHintCache
from repro.core.errors import DexError
from repro.core.fault import FaultHandler, InFlightFault
from repro.core.files import FileService
from repro.core.futex import FutexTable
from repro.core.migration import MigrationService
from repro.core.protocol import ConsistencyProtocol
from repro.core.stats import DexStats
from repro.core.thread import DexThread, ThreadContext
from repro.core.vma_sync import VmaSync
from repro.memory.frames import FrameStore
from repro.memory.page_table import PageTable
from repro.memory.vma import AddressSpaceMap, Protection
from repro.net.messages import Message, MsgType
from repro.sim import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cluster import DexCluster

GLOBALS_BASE = 0x1000_0000
GLOBALS_SIZE = 64 * 1024 * 1024
HEAP_BASE = 0x4000_0000
MMAP_BASE = 0x6000_0000
STACK_BASE = 0x7000_0000
STACK_SIZE = 64 * 1024


@dataclass
class NodeProcessState:
    """Everything one node keeps for one distributed process."""

    page_table: PageTable = field(default_factory=PageTable)
    frames: FrameStore = field(default_factory=FrameStore)
    vma_map: AddressSpaceMap = field(default_factory=AddressSpaceMap)
    #: vpn -> in-flight faults (the §III-C hash table)
    inflight: Dict[int, List[InFlightFault]] = field(default_factory=dict)
    #: this node's slice of the coherence directory (only the page homes
    #: selected by the configured backend ever hold entries here)
    directory_shard: DirectoryShard = field(default_factory=DirectoryShard)
    #: LRU of last-known page homes (sharded backend's hop-skipping cache)
    owner_hints: OwnerHintCache = field(default_factory=OwnerHintCache)


class DexProcess:
    """One application process whose threads may span the whole rack."""

    _pids = itertools.count(1)

    def __init__(self, cluster: "DexCluster", origin: int = 0, name: str = ""):
        self.cluster = cluster
        self.pid = next(self._pids)
        self.origin = origin
        self.name = name or f"proc{self.pid}"
        self.stats = DexStats()
        self.tracer = None  # set via attach_tracer()
        #: the cluster's repro.obs span tracer, or None when tracing is off;
        #: every instrumented hot path guards on this single attribute
        self.obs = cluster.tracer

        self._node_states: Dict[int, NodeProcessState] = {}
        #: bumped whenever a node's state is dropped; ThreadContext keys
        #: its memoised node-state fast path on this so a recreated state
        #: can never be shadowed by a stale cache
        self.state_gen = 0
        self.nodes_with_worker: Set[int] = set()
        #: node -> event triggered once the remote worker there is set up;
        #: concurrent first migrations serialize on it
        self.worker_ready: Dict[int, Any] = {}
        self.ever_migrated = False
        #: set by fail-stop recovery (repro.chaos) when the process cannot
        #: survive a node failure; every blocking service entry point calls
        #: :meth:`check_failed` so live threads observe the verdict
        self.failed: Optional[BaseException] = None

        #: pending scheduler-initiated migration targets (see
        #: :mod:`repro.core.balancer`); honoured at ``ctx.checkpoint()``
        self.migration_hints = MigrationHints()

        self.protocol = ConsistencyProtocol(self)
        self.faults = FaultHandler(self)
        self.migration = MigrationService(self)
        self.delegation = DelegationService(self)
        self.futex = FutexTable(self)
        self.vma_sync = VmaSync(self)
        self.files = FileService(self)
        #: the repro.check dynamic checkers (None unless DEX_SANITIZE /
        #: SimParams.sanitize enables them); every instrumentation site
        #: in the fault/protocol/futex layers guards on these
        self.sanitizer, self.deadlocks = make_sanitizers(self)

        self.threads: List[DexThread] = []
        self._next_tid = 0
        self._mmap_cursor = MMAP_BASE
        self._heap_cursor = HEAP_BASE
        self._next_stack = STACK_BASE

        # the static data segment exists from the start
        page = cluster.params.page_size
        state = self.node_state(origin)
        state.vma_map.mmap(
            GLOBALS_BASE, GLOBALS_SIZE, Protection.READ_WRITE, tag="globals"
        )

    # ------------------------------------------------------------------
    # per-node state
    # ------------------------------------------------------------------

    def node_state(self, node: int) -> NodeProcessState:
        state = self._node_states.get(node)
        if state is None:
            state = NodeProcessState()
            state.page_table = PageTable()
            state.frames = FrameStore(self.cluster.params.page_size)
            state.vma_map = AddressSpaceMap(self.cluster.params.page_size)
            state.owner_hints = OwnerHintCache(
                self.cluster.params.owner_hint_capacity
            )
            self._node_states[node] = state
        return state

    def iter_node_states(self) -> Iterator[Tuple[int, NodeProcessState]]:
        return iter(self._node_states.items())

    def drop_node_state(self, node: int) -> None:
        """Discard everything held at *node*.  Used by fail-stop recovery:
        a crashed node's page tables, frames, and any directory shard it
        hosted are gone, and keeping them would let invariant checks read
        state that no longer exists anywhere."""
        self._node_states.pop(node, None)
        self.state_gen += 1

    def check_failed(self) -> None:
        """Raise the recovery verdict if this process has been failed."""
        if self.failed is not None:
            raise self.failed

    def active_nodes(self) -> List[int]:
        """Nodes currently holding any state for this process."""
        return sorted(set(self._node_states) | {self.origin})

    # ------------------------------------------------------------------
    # threads
    # ------------------------------------------------------------------

    def spawn_thread(
        self,
        fn: Callable[..., Generator],
        *args: Any,
        name: str = "",
        at_node: Optional[int] = None,
        parent_tid: Optional[int] = None,
    ) -> DexThread:
        """Create and start a thread running *fn(ctx, *args)*.

        The thread gets its own stack VMA (tagged so the fault profiler can
        attribute stack-borne false sharing).  It starts at *at_node*
        (default: the origin).  *parent_tid* identifies the creating
        thread, giving the coherence sanitizer its spawn ordering edge."""
        thread = DexThread(self, self._next_tid, name=name)
        self._next_tid += 1
        if self.sanitizer is not None and parent_tid is not None:
            self.sanitizer.on_spawn(parent_tid, thread.tid)
        thread.current_node = self.origin if at_node is None else at_node
        origin_map = self.node_state(self.origin).vma_map
        thread.stack_base = self._next_stack
        origin_map.mmap(
            self._next_stack,
            STACK_SIZE,
            Protection.READ_WRITE,
            tag=f"stack:{thread.name}",
        )
        self._next_stack += STACK_SIZE * 2  # guard gap between stacks

        def runner() -> Generator:
            ctx = ThreadContext(thread)
            try:
                result = yield from fn(ctx, *args)
            except Interrupt as stop:
                if getattr(stop.cause, "halts_thread", False):
                    # fail-stop: the node executing this thread crashed.
                    # Park forever — recovery fails the sim process once
                    # the origin's failure detector notices, so joiners see
                    # the death at detection time, not at crash time.
                    yield stop.cause.parked
                raise
            return result

        thread.sim_process = self.cluster.engine.process(
            runner(), name=f"{self.name}.{thread.name}"
        )
        self.threads.append(thread)
        return thread

    def join_all(self, threads: Optional[List[DexThread]] = None) -> Generator:
        """Wait for *threads* (default: all spawned so far); returns their
        results in order."""
        targets = list(self.threads if threads is None else threads)
        results = yield self.cluster.engine.all_of(
            [t.sim_process for t in targets]
        )
        return results

    # ------------------------------------------------------------------
    # address-space services (always executed at the origin; remote
    # threads reach them through work delegation)
    # ------------------------------------------------------------------

    def do_mmap(self, length: int, prot: int, tag: str = "") -> Generator:
        params = self.cluster.params
        yield self.cluster.engine.timeout(params.vma_op_cost)
        page = params.page_size
        aligned = (length + page - 1) // page * page
        start = self._mmap_cursor
        self._mmap_cursor += aligned + page  # guard page
        self.node_state(self.origin).vma_map.mmap(
            start, aligned, Protection(prot), tag=tag
        )
        return start

    def do_munmap(self, start: int, length: int) -> Generator:
        params = self.cluster.params
        yield self.cluster.engine.timeout(params.vma_op_cost)
        page = params.page_size
        end = (start + length + page - 1) // page * page
        start -= start % page
        state = self.node_state(self.origin)
        state.vma_map.munmap(start, end - start)
        vpn_start, vpn_end = start // page, end // page
        state.page_table.drop_range(vpn_start, vpn_end)
        state.frames.drop_range(vpn_start, vpn_end)
        self.protocol.directory.drop_range(vpn_start, vpn_end)
        if self.sanitizer is not None:
            self.sanitizer.on_unmap(vpn_start, vpn_end)
        # shrinks are broadcast eagerly (§III-D)
        yield from self.vma_sync.broadcast_shrink(start, end)

    def do_mprotect(self, start: int, length: int, prot: int) -> Generator:
        params = self.cluster.params
        yield self.cluster.engine.timeout(params.vma_op_cost)
        page = params.page_size
        end = (start + length + page - 1) // page * page
        start -= start % page
        origin_map = self.node_state(self.origin).vma_map
        old = origin_map.find_overlapping(start, end)
        downgrade = any(
            (vma.prot & ~Protection(prot)) != Protection.NONE for vma in old
        )
        origin_map.mprotect(start, end - start, Protection(prot))
        if downgrade:
            yield from self.vma_sync.broadcast_shrink(start, end, new_prot=prot)
            # revoke remote ownership so stale write-capable PTEs cannot
            # bypass the downgraded protection
            yield from self.protocol.revoke_range(
                start // page, (end + page - 1) // page
            )

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def shutdown(self) -> Generator:
        """Broadcast process exit to every remote worker and drop their
        state ("original process exit [is] delivered to the remote worker",
        §III-A)."""
        engine = self.cluster.engine
        targets = sorted(self.nodes_with_worker)
        pending = []
        for node in targets:
            msg = Message(
                MsgType.PROCESS_EXIT,
                src=self.origin,
                dst=node,
                payload={"pid": self.pid},
            )
            pending.append(engine.process(self.cluster.net.send(msg)))
        if pending:
            yield engine.all_of(pending)

    def handle_exit_msg(self, msg: Message) -> Generator:
        node = msg.dst
        yield self.cluster.engine.timeout(self.cluster.params.vma_op_cost)
        self.nodes_with_worker.discard(node)
        state = self._node_states.get(node)
        if state is not None and self.protocol.directory.entries_hosted(node) == 0:
            # a node hosting directory shard entries keeps its state: the
            # metadata outlives the worker thread that ran there
            self._node_states.pop(node, None)
            self.state_gen += 1

    def release(self) -> None:
        """Drop every per-node and per-thread structure this process
        holds, so a retired process costs nothing but its (small) object
        header until garbage collection takes the rest.

        Called by :meth:`DexCluster.retire_process` after the threads
        have finished; the cluster removes the pid from its routing table
        in the same step, so no message can reach the released state."""
        for node in list(self._node_states):
            self._node_states.pop(node, None)
        self.state_gen += 1
        self.threads.clear()
        self.worker_ready.clear()
        self.nodes_with_worker.clear()

    # ------------------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Install a page-fault tracer (see :mod:`repro.tools.tracer`)."""
        self.tracer = tracer

    def memory_bytes(self, node: int, addr: int, nbytes: int) -> bytes:
        """Test/diagnostic helper: raw frame bytes at *node* without going
        through the protocol."""
        return self.node_state(node).frames.read(addr, nbytes)
