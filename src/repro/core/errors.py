"""Exceptions raised by the DeX core."""

from __future__ import annotations


class DexError(Exception):
    """Base class for DeX runtime errors."""


class SegmentationFault(DexError):
    """An access fell outside every VMA — the distributed equivalent of a
    SIGSEGV.  §III-D: "If the access is invalid, the origin sends an error
    code to the remote which terminates the remote threads as if it
    performed an illegal memory access."""

    def __init__(self, node: int, addr: int, write: bool):
        super().__init__(
            f"segmentation fault: node {node}, addr {addr:#x}, "
            f"{'write' if write else 'read'}"
        )
        self.node = node
        self.addr = addr
        self.write = write


class MigrationError(DexError):
    """Illegal migration request (unknown node, migrating a dead thread...)."""


class ProtocolError(DexError):
    """Internal consistency-protocol invariant violation.  Raising this is
    always a bug in the protocol, never expected behaviour."""


class NodeFailedError(DexError):
    """A remote node fail-stopped (or became unreachable) and the affected
    operation cannot be completed.  Carries the failed node and a precise
    diagnostic of what was lost; raised by the retry transport on
    exhaustion, by the failure detector into pending waiters, and by
    recovery when a dead node held unrecoverable state."""

    def __init__(self, node: int, diagnostic: str):
        super().__init__(f"node {node} failed: {diagnostic}")
        self.node = node
        self.diagnostic = diagnostic
