"""Per-tenant, per-node request queues for DexServe.

The queue is the load-leveling buffer between the open-loop injector
and the tenant's bounded worker pool (the bulkhead).  Its mutation
surface is deliberately narrow: only an admission policy decides what
enters (`commit_admit`) or is evicted (`evict_oldest`); workers only
remove from the head (`take`) and park on `wait_token` when empty.
The DexVet ``serve-discipline`` rule enforces that split statically —
touching ``_backlog`` anywhere outside this module is a violation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

#: request lifecycle states (terminal ones feed the SLO report)
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
REJECTED = "rejected"
THROTTLED = "throttled"
SHED = "shed"
FAILED = "failed"


@dataclass
class Request:
    """One unit of tenant work, sized by an item range into the tenant's
    resident working set."""

    rid: int
    tenant: str
    node: int
    arrival_us: float
    item_lo: int
    item_hi: int
    status: str = QUEUED
    start_us: float = -1.0
    finish_us: float = -1.0

    @property
    def latency_us(self) -> float:
        return self.finish_us - self.arrival_us

    @property
    def queue_wait_us(self) -> float:
        return self.start_us - self.arrival_us


class ServeQueue:
    """A bounded FIFO of admitted requests for one (tenant, node) pair.

    ``capacity`` bounds the backlog; ``depth_hwm`` records the deepest
    the backlog ever got (a load-leveling health signal the scope
    samples).  Waiting workers park on engine events handed out by
    :meth:`wait_token` and are woken one-per-admit.
    """

    def __init__(self, engine, tenant: str, node: int, capacity: int):
        self.engine = engine
        self.tenant = tenant
        self.node = node
        self.capacity = capacity
        self.depth_hwm = 0
        self._backlog: Deque[Request] = deque()
        self._waiters: Deque[object] = deque()

    def __len__(self) -> int:
        return len(self._backlog)

    @property
    def full(self) -> bool:
        return len(self._backlog) >= self.capacity

    # -- policy-only mutation surface ---------------------------------

    def commit_admit(self, request: Request) -> None:
        """Enqueue an admitted request (admission policies only)."""
        self._backlog.append(request)
        if len(self._backlog) > self.depth_hwm:
            self.depth_hwm = len(self._backlog)
        self._wake_one()

    def evict_oldest(self) -> Optional[Request]:
        """Drop the head of the backlog to make room (shed-oldest
        policies only)."""
        if not self._backlog:
            return None
        victim = self._backlog.popleft()
        victim.status = SHED
        return victim

    # -- worker surface ------------------------------------------------

    def take(self) -> Optional[Request]:
        """Pop the next queued request, or None when empty."""
        if not self._backlog:
            return None
        return self._backlog.popleft()

    def wait_token(self):
        """An engine event the caller must yield; triggered by the next
        admit (or by :meth:`release_waiters` at shutdown)."""
        ev = self.engine.event()
        self._waiters.append(ev)
        return ev

    def _wake_one(self) -> None:
        while self._waiters:
            ev = self._waiters.popleft()
            if not ev.triggered:
                ev.succeed()
                return

    def release_waiters(self) -> None:
        """Wake every parked worker (shutdown / failure sweep)."""
        while self._waiters:
            ev = self._waiters.popleft()
            if not ev.triggered:
                ev.succeed()

    def drain(self) -> List[Request]:
        """Empty the backlog (failure sweep: the node died); returns the
        stranded requests for the manager to reroute or fail."""
        stranded = list(self._backlog)
        self._backlog.clear()
        return stranded
