"""The DexServe tenant manager: N tenants on one shared cluster.

One :class:`ServeManager` owns a :class:`~repro.core.cluster.DexCluster`
and drives the whole serving run inside a single ``simulate`` phase:

1. every tenant installs its working set in its own process (setup
   phases), then its worker pool migrates out and *warms* its nodes;
2. once all workers are warm, one open-loop injector per tenant fires
   the tenant's arrival process — requests are admitted (or rejected /
   shed / throttled) by the tenant's policy at their arrival node,
   regardless of how far behind the workers are;
3. workers drain their node's queue through the request adapters; a
   bounded pool per node is the bulkhead that keeps one tenant's
   overload from stealing another's cores;
4. the manager's main thread ticks alongside, sweeping failure state
   when chaos is active (draining dead nodes' queues, rerouting or
   failing stranded work) until every arrival reached a terminal state.

Everything is deterministic for a fixed seed: same seed, same arrival
times, same event interleaving, bit-identical SLO report.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.cluster import DexCluster
from repro.core.errors import DexError
from repro.obs.metrics import MetricsRegistry
from repro.params import SimParams

from .arrivals import arrival_times
from .policy import ADMIT, REJECT
from .queueing import DONE, FAILED, QUEUED, RUNNING, Request
from .report import build_report
from .tenant import Tenant, TenantSpec

#: manager sweep cadence; also bounds how stale the done-check can be
TICK_US = 250.0
#: Perfetto pid base for per-tenant scope tracks (above real node ids,
#: below the synthetic cluster track at 9999)
SERVE_PID_BASE = 9000


class ServeManager:
    """Build, run, and report one multi-tenant serving scenario."""

    def __init__(
        self,
        specs: Sequence[TenantSpec],
        num_nodes: int = 8,
        seed: int = 0,
        directory: Optional[str] = None,
        chaos: Any = None,
        scope: bool = False,
        trace: Any = None,
        params: Optional[SimParams] = None,
        fail_stop: Optional[Tuple[int, float]] = None,
    ):
        if not specs:
            raise ValueError("ServeManager needs at least one tenant")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.seed = seed
        # (node, offset_us): fail-stop `node` that long after serving
        # starts.  Serve-relative because warm-up time varies with the
        # tenant mix — an absolute crash time would land before serving
        # under one config and after it under another.
        self.fail_stop = fail_stop
        base = params if params is not None else SimParams()
        base = base.copy(seed=seed)
        if scope:
            base = base.copy(scope="1")
        self.cluster = DexCluster(
            num_nodes=num_nodes, params=base, directory=directory,
            trace=trace, chaos=chaos,
        )
        for spec in specs:
            bad = [n for n in spec.nodes if not 0 <= n < num_nodes]
            if bad:
                raise ValueError(
                    f"tenant {spec.name!r}: nodes {bad} outside the "
                    f"{num_nodes}-node cluster"
                )
        self.registry = MetricsRegistry()
        self.tenants = [
            Tenant(spec, self.cluster, self.registry) for spec in specs
        ]
        self._serve_start_us = 0.0
        if self.cluster.scope is not None:
            self.cluster.scope.attach_serve(self)

    # -- the run ---------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Execute the scenario; returns the SLO report dict."""
        for tenant in self.tenants:
            tenant.install()
        mgr_proc = self.cluster.create_process(name="serve-mgr")
        self.cluster.simulate(self._main, mgr_proc)
        report = build_report(self)
        # tenants are short-lived relative to the cluster: retire them so
        # a long-lived manager (or an embedding test) never accumulates
        # per-process state for finished runs.  force sweeps the parked
        # threads a fail-stopped node leaves behind.
        chaotic = self.cluster.chaos is not None
        for tenant in self.tenants:
            self.cluster.retire_process(tenant.proc, force=chaotic)
        self.cluster.retire_process(mgr_proc, force=chaotic)
        return report

    def _main(self, ctx) -> Generator:
        engine = self.cluster.engine
        ready: List[Any] = []
        workers: List[Any] = []
        for tenant in self.tenants:
            for node_idx, node in enumerate(tenant.spec.nodes):
                for w in range(tenant.spec.workers_per_node):
                    ev = engine.event(
                        name=f"{tenant.spec.name}.w{node_idx}.{w}.ready")
                    ready.append(ev)
                    workers.append(tenant.proc.spawn_thread(
                        self._worker, tenant, node,
                        (node, node_idx * tenant.spec.workers_per_node + w),
                        ev, name=f"serve-{tenant.spec.name}-n{node}w{w}",
                    ))
        # Wait for every worker to *settle* — warm (ready fired) or dead
        # (its node fail-stopped mid-migrate, its sim process was failed
        # by recovery, ...).  A plain all_of(ready) would park forever on
        # a worker chaos killed before it could warm.
        while not all(
            ev.triggered or not th.alive or th.failed is not None
            for ev, th in zip(ready, workers)
        ):
            yield engine.timeout(TICK_US)
            self._sweep_failures()
        self._serve_start_us = engine.now
        if self.fail_stop is not None and self.cluster.chaos is not None:
            node, offset = self.fail_stop
            engine._schedule_at(
                engine.now + offset, self._fail_stop_now, node)
        for tenant in self.tenants:
            engine.process(self._inject(tenant, engine.now),
                           name=f"inject.{tenant.spec.name}")

        while not self._done():
            yield engine.timeout(TICK_US)
            self._sweep_failures()

        for tenant in self.tenants:
            tenant.stop = True
            tenant.release_all_waiters()
        # same settle-or-die logic on the way out: never join a worker
        # that chaos may still kill under us
        while any(th.alive and th.failed is None for th in workers):
            yield engine.timeout(TICK_US)
            self._sweep_failures()

    def _fail_stop_now(self, node: int) -> None:
        chaos = self.cluster.chaos
        if not chaos.is_fenced(node):
            chaos.crash(node, "serve fail-stop")

    def _done(self) -> bool:
        return all(
            t.injection_done and t.accounted() >= t.spec.curve.requests
            for t in self.tenants
        )

    # -- workers ---------------------------------------------------------

    def _worker(self, ctx, tenant: Tenant, node: int,
                wkey: Tuple[int, int], ready: Any) -> Generator:
        engine = self.cluster.engine
        queue = tenant.queues[node]
        try:
            yield from ctx.migrate(node)
            yield from tenant.warm(ctx)
        except DexError:
            # the node died before this worker came up; the failure sweep
            # reroutes its queue, and settling (not warming) unblocks the
            # manager's start barrier
            if not ready.triggered:
                ready.succeed()
            return
        ready.succeed()
        while True:
            if tenant.stop or tenant.proc.failed is not None:
                break
            request = queue.take()
            if request is None:
                yield queue.wait_token()
                continue
            request.status = RUNNING
            request.start_us = engine.now
            tenant.running[wkey] = request
            try:
                result = yield from tenant.execute(ctx, request)
            except DexError:
                # the DSM op died under us (node failure mid-request);
                # the request fails, the worker survives unless its whole
                # process was failed
                if request.status == RUNNING:
                    request.status = FAILED
                    request.finish_us = engine.now
                    tenant.count("failed")
                tenant.running.pop(wkey, None)
                if tenant.proc.failed is not None:
                    break
                continue
            request.status = DONE
            request.finish_us = engine.now
            tenant.running.pop(wkey, None)
            tenant.on_complete(request, result)
        try:
            yield from ctx.migrate_back()
        except DexError:
            pass  # going home through a broken fabric is best-effort

    # -- open-loop injection ---------------------------------------------

    def _inject(self, tenant: Tenant, t0: float) -> Generator:
        """One tenant's client population: fire every arrival at its
        precomputed absolute time, never waiting for completions."""
        engine = self.cluster.engine
        times = arrival_times(tenant.spec.curve, seed=tenant.spec.seed)
        for rid in range(len(times)):
            delay = t0 + float(times[rid]) - engine.now
            if delay > 0.0:
                yield engine.timeout(delay)
            self._admit(tenant, rid, engine.now)
        tenant.injection_done = True

    def _admit(self, tenant: Tenant, rid: int, now: float) -> None:
        tenant.count("injected")
        lo, hi = tenant.request_span(rid)
        live = tenant.live_nodes(self.cluster.chaos)
        if tenant.proc.failed is not None or not live:
            request = Request(rid, tenant.spec.name, -1, now, lo, hi,
                              status=FAILED, finish_us=now)
            tenant.count("failed")
            return
        node = live[rid % len(live)]
        request = Request(rid, tenant.spec.name, node, now, lo, hi)
        decision = tenant.policy.decide(tenant.queues[node], request, now)
        self._count_decision(tenant, decision)

    def _count_decision(self, tenant: Tenant, decision: Any) -> None:
        if decision.action == ADMIT:
            tenant.count("admitted")
        elif decision.action == REJECT:
            tenant.count("rejected")
        else:
            tenant.count("throttled")
        for victim in decision.shed:
            tenant.count("shed")

    # -- failure sweep ----------------------------------------------------

    def _sweep_failures(self) -> None:
        chaos = self.cluster.chaos
        if chaos is None:
            return
        now = self.cluster.engine.now
        for tenant in self.tenants:
            if tenant.proc.failed is not None and not tenant.dead:
                # the whole tenant is gone: everything queued or running
                # fails with it
                tenant.dead = True
                for queue in tenant.queues.values():
                    for request in queue.drain():
                        request.status = FAILED
                        request.finish_us = now
                        tenant.count("failed")
                for wkey, request in list(tenant.running.items()):
                    if request.status == RUNNING:
                        request.status = FAILED
                        request.finish_us = now
                        tenant.count("failed")
                    tenant.running.pop(wkey, None)
                tenant.release_all_waiters()
                continue
            dead_nodes = {
                n for n in tenant.spec.nodes if chaos.is_fenced(n)
            }
            for node in sorted(dead_nodes):
                queue = tenant.queues[node]
                stranded = queue.drain()
                live = tenant.live_nodes(chaos)
                for request in stranded:
                    if live:
                        target = live[request.rid % len(live)]
                        request.node = target
                        request.status = QUEUED
                        decision = tenant.policy.decide(
                            tenant.queues[target], request, now)
                        tenant.count("rerouted")
                        if decision.action == REJECT:
                            tenant.count("rejected")
                        elif decision.action != ADMIT:
                            tenant.count("throttled")
                        for victim in decision.shed:
                            tenant.count("shed")
                    else:
                        request.status = FAILED
                        request.finish_us = now
                        tenant.count("failed")
                queue.release_waiters()
                for wkey, request in list(tenant.running.items()):
                    if wkey[0] == node and request.status == RUNNING:
                        request.status = FAILED
                        request.finish_us = now
                        tenant.count("failed")
                        tenant.running.pop(wkey, None)

    # -- DexScope feed -----------------------------------------------------

    def scope_series(self):
        """Per-tenant time-series points for the scope sampler: queue
        depth, in-flight work, and cumulative admission decisions.  Read
        -only; called on the sampling grid only when the scope is on."""
        out = []
        for idx, tenant in enumerate(self.tenants):
            pid = SERVE_PID_BASE + idx
            name = tenant.spec.name
            track = f"tenant {name} (DexServe)"
            counts = tenant.counts()
            out.append((f"serve.{name}.queue_depth", float(tenant.backlog()),
                        "mean", pid, track))
            out.append((f"serve.{name}.inflight", float(len(tenant.running)),
                        "mean", pid, track))
            for what in ("admitted", "rejected", "throttled", "shed",
                         "completed", "failed"):
                out.append((f"serve.{name}.{what}", float(counts[what]),
                            "last", pid, track))
        return out
