"""Open-loop arrival processes for DexServe.

A client population is modelled as a rate curve, not as a pool of
blocked callers: arrivals are generated up front from the curve and a
seed, and the injector fires them at those absolute simulated times
*whether or not* earlier requests have completed.  That open-loop shape
is the point — a closed-loop driver would slow its offered load the
moment queues build, hiding exactly the queueing delay a serving system
needs to report (Schroeder et al.'s closed/open distinction; the
ROADMAP's queue-based-load-leveling pattern assumes open arrivals).

Four curve kinds, all deterministic for a fixed ``(curve, seed)``:

* ``constant`` — evenly spaced at ``1e6 / rate`` microseconds;
* ``poisson``  — exponential interarrivals at the same mean, drawn from
  a ``numpy`` generator seeded by the caller (seed-reproducible);
* ``burst``    — piecewise-constant: the base spacing everywhere except
  a ``[burst_at_us, burst_at_us + burst_for_us)`` window running at
  ``burst_x`` times the base rate;
* ``ramp``     — rate climbs linearly from ``rate`` to ``ramp_to``
  across the whole request count (closed-form inversion of the
  cumulative arrival function, so millions of arrivals vectorize).

Times are offsets in microseconds from the start of the serving phase;
the injector adds the phase's absolute start time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

CURVE_KINDS = ("constant", "poisson", "burst", "ramp")


@dataclass(frozen=True)
class ArrivalCurve:
    """One tenant's offered-load specification (see module docstring)."""

    kind: str = "constant"
    #: base arrival rate, requests per second
    rate: float = 10_000.0
    #: total arrivals the curve produces
    requests: int = 1_000
    #: burst window (burst curves only)
    burst_at_us: float = 50_000.0
    burst_for_us: float = 20_000.0
    burst_x: float = 8.0
    #: final rate of a ramp (0 = four times the base rate)
    ramp_to: float = 0.0

    def validate(self) -> "ArrivalCurve":
        if self.kind not in CURVE_KINDS:
            raise ValueError(
                f"unknown arrival curve {self.kind!r} (one of {CURVE_KINDS})"
            )
        if self.rate <= 0.0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.kind == "burst":
            if self.burst_x <= 1.0:
                raise ValueError("burst_x must exceed 1.0")
            if self.burst_for_us <= 0.0:
                raise ValueError("burst_for_us must be positive")
        return self

    @property
    def ramp_final(self) -> float:
        return self.ramp_to if self.ramp_to > 0.0 else 4.0 * self.rate

    def rate_at(self, t_us: float) -> float:
        """The specified instantaneous rate (requests/s) at offset
        *t_us* — what the shape tests check generated arrivals against."""
        if self.kind == "burst":
            in_burst = (
                self.burst_at_us <= t_us < self.burst_at_us + self.burst_for_us
            )
            return self.rate * self.burst_x if in_burst else self.rate
        if self.kind == "ramp":
            span = self.span_us()
            frac = min(max(t_us / span, 0.0), 1.0) if span > 0 else 1.0
            return self.rate + (self.ramp_final - self.rate) * frac
        return self.rate

    def span_us(self) -> float:
        """Nominal duration of the whole curve in microseconds."""
        if self.kind == "ramp":
            # area under the linear rate curve equals the request count
            mean_rate = (self.rate + self.ramp_final) / 2.0
            return self.requests * 1e6 / mean_rate
        return self.requests * 1e6 / self.rate

    def scaled(self, requests: int) -> "ArrivalCurve":
        return replace(self, requests=requests)


def _constant_times(n: int, rate: float) -> np.ndarray:
    spacing = 1e6 / rate
    return np.arange(n, dtype=np.float64) * spacing


def _poisson_times(n: int, rate: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1e6 / rate, size=n)
    return np.cumsum(gaps)


def _burst_times(curve: ArrivalCurve) -> np.ndarray:
    base_gap = 1e6 / curve.rate
    burst_gap = base_gap / curve.burst_x
    times = np.empty(curve.requests, dtype=np.float64)
    t = 0.0
    i = 0
    burst_end = curve.burst_at_us + curve.burst_for_us
    while i < curve.requests:
        # emit a whole segment at once: everything up to the next rate edge
        if t < curve.burst_at_us:
            gap, edge = base_gap, curve.burst_at_us
        elif t < burst_end:
            gap, edge = burst_gap, burst_end
        else:
            gap, edge = base_gap, np.inf
        if np.isinf(edge):
            count = curve.requests - i
        else:
            count = min(int((edge - t) // gap) + 1, curve.requests - i)
        times[i : i + count] = t + np.arange(count, dtype=np.float64) * gap
        t = times[i + count - 1] + gap
        t = max(t, edge) if not np.isinf(edge) and t >= edge else t
        i += count
    return times


def _ramp_times(curve: ArrivalCurve) -> np.ndarray:
    # invert the cumulative arrival function of a linear rate curve:
    # with r(t) = a + b t (per-us rates), arrival k solves
    # a t + b t^2 / 2 = k
    span = curve.span_us()
    a = curve.rate / 1e6
    b = (curve.ramp_final - curve.rate) / 1e6 / span
    k = np.arange(curve.requests, dtype=np.float64)
    if abs(b) < 1e-18:
        return k / a
    return (-a + np.sqrt(a * a + 2.0 * b * k)) / b


def arrival_times(curve: ArrivalCurve, seed: int = 0) -> np.ndarray:
    """The curve's arrival offsets in microseconds, nondecreasing, length
    ``curve.requests``.  Only ``poisson`` draws randomness; every kind is
    bit-identical for a fixed ``(curve, seed)``."""
    curve.validate()
    if curve.kind == "constant":
        return _constant_times(curve.requests, curve.rate)
    if curve.kind == "poisson":
        return _poisson_times(curve.requests, curve.rate, seed)
    if curve.kind == "burst":
        return _burst_times(curve)
    return _ramp_times(curve)


def parse_curve(
    spec: str, rate: float, requests: int,
    burst_at_us: float = 50_000.0,
    burst_for_us: float = 20_000.0,
    burst_x: float = 8.0,
) -> ArrivalCurve:
    """CLI helper: an :class:`ArrivalCurve` from a kind name, with the
    shared rate/request knobs applied."""
    return ArrivalCurve(
        kind=spec, rate=rate, requests=requests,
        burst_at_us=burst_at_us, burst_for_us=burst_for_us, burst_x=burst_x,
    ).validate()


def curve_window(curve: ArrivalCurve) -> Tuple[float, float]:
    """The burst window as (start_us, end_us); the whole span for
    non-burst curves (used by report windowing)."""
    if curve.kind == "burst":
        return curve.burst_at_us, curve.burst_at_us + curve.burst_for_us
    return 0.0, curve.span_us()
