"""DexServe tenants: one named workload per DeX process.

A tenant bundles a workload kind (KMN model queries, GRP lookups, BLK
pricing calls, string-match scans), an arrival curve, a set of serving
nodes with a bounded worker pool per node (the bulkhead), an admission
policy, and a resident working set allocated in its own
:class:`~repro.core.process.DexProcess` — its own address space, page
tables, and stats namespace on the shared cluster.

Requests are *bounded* units of work: each covers one slot of the
working set and executes through the request adapters factored out of
the batch apps (:mod:`repro.apps.workloads`).  Every completed request
is verified against a host-side precomputed answer, so the SLO numbers
can never hide wrong results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.apps import workloads
from repro.apps.blackscholes import FIELDS, _price_arrays
from repro.apps.string_match import _count_starting_before
from repro.runtime import MemoryAllocator
from repro.runtime.array import alloc_array

from .arrivals import ArrivalCurve
from .policy import make_policy
from .queueing import Request, ServeQueue

WORKLOAD_KINDS = ("kmn", "grp", "blk", "scan")

#: default resident working-set size per kind (points / bytes / options)
DEFAULT_ITEMS = {"kmn": 32_768, "grp": 262_144, "blk": 65_536,
                 "scan": 262_144}
#: default request size per kind (items per query)
DEFAULT_REQUEST_ITEMS = {"kmn": 256, "grp": 4096, "blk": 512, "scan": 4096}

KMN_K = 8
WARM_CHUNK_BYTES = 64 * 1024
#: per-tenant latency-sample cap (each sample is one small tuple; the
#: registry histograms are unbounded-count / bounded-state regardless)
MAX_SAMPLES = 250_000


@dataclass(frozen=True)
class TenantSpec:
    """Static description of one tenant (everything the manager needs to
    build and drive it)."""

    name: str
    workload: str
    curve: ArrivalCurve
    nodes: Tuple[int, ...]
    workers_per_node: int = 2
    queue_capacity: int = 32
    policy: str = "reject"
    #: token-bucket sustained rate per node (0 = 1.25x the fair share of
    #: the curve's base rate)
    policy_rate_per_s: float = 0.0
    #: resident working-set items (0 = the kind's default)
    items: int = 0
    #: items per request (0 = the kind's default)
    request_items: int = 0
    slo_p99_us: float = 2_000.0
    seed: int = 0

    def validate(self) -> "TenantSpec":
        if self.workload not in WORKLOAD_KINDS:
            raise ValueError(
                f"tenant {self.name!r}: unknown workload {self.workload!r} "
                f"(one of {WORKLOAD_KINDS})"
            )
        if not self.nodes:
            raise ValueError(f"tenant {self.name!r}: needs at least one node")
        if self.workers_per_node < 1 or self.queue_capacity < 1:
            raise ValueError(
                f"tenant {self.name!r}: workers_per_node and queue_capacity "
                "must be >= 1"
            )
        self.curve.validate()
        return self

    @property
    def total_items(self) -> int:
        return self.items or DEFAULT_ITEMS[self.workload]

    @property
    def per_request(self) -> int:
        return self.request_items or DEFAULT_REQUEST_ITEMS[self.workload]

    @property
    def bucket_rate(self) -> float:
        """The token-bucket refill rate per node."""
        if self.policy_rate_per_s > 0.0:
            return self.policy_rate_per_s
        return 1.25 * self.curve.rate / len(self.nodes)


class Tenant:
    """Runtime state of one tenant on a shared cluster."""

    def __init__(self, spec: TenantSpec, cluster: Any, registry: Any):
        self.spec = spec.validate()
        self.cluster = cluster
        self.registry = registry
        self.proc = None
        self.policy = make_policy(
            spec.policy, rate_per_s=spec.bucket_rate
        )
        self.queues: Dict[int, ServeQueue] = {
            node: ServeQueue(cluster.engine, spec.name, node,
                             spec.queue_capacity)
            for node in spec.nodes
        }
        #: worker key -> in-flight request (the failure sweep's view)
        self.running: Dict[Tuple[int, int], Request] = {}
        #: (finish_us, latency_us) per completed request, for windowed
        #: before/during/after analysis in the report
        self.samples: List[Tuple[float, float]] = []
        self.injection_done = False
        self.stop = False
        self.dead = False
        self._expected: List[Any] = []
        self._arrays: Dict[str, Any] = {}
        # registry families shared across tenants; children per tenant
        self._latency = registry.histogram(
            "serve_latency_us", "request latency, arrival to completion",
            labelnames=("tenant",)).labels(tenant=spec.name)
        self._queue_wait = registry.histogram(
            "serve_queue_wait_us", "time from arrival to execution start",
            labelnames=("tenant",)).labels(tenant=spec.name)
        self._events = {
            status: registry.counter(
                f"serve_{status}_total", f"requests {status}, per tenant",
                labelnames=("tenant",)).labels(tenant=spec.name)
            for status in ("injected", "admitted", "rejected", "throttled",
                           "shed", "completed", "failed", "rerouted",
                           "mismatched")
        }

    # -- accounting -----------------------------------------------------

    def count(self, what: str, n: int = 1) -> None:
        self._events[what].inc(n)

    def counts(self) -> Dict[str, int]:
        return {what: c.value for what, c in self._events.items()}

    def accounted(self) -> int:
        """Arrivals that reached a terminal state."""
        c = self.counts()
        return (c["completed"] + c["rejected"] + c["throttled"] + c["shed"]
                + c["failed"])

    def on_complete(self, request: Request, result: Any) -> None:
        self._latency.observe(request.latency_us)
        self._queue_wait.observe(request.queue_wait_us)
        self.count("completed")
        if len(self.samples) < MAX_SAMPLES:
            self.samples.append((request.finish_us, request.latency_us))
        if not self._verify(request, result):
            self.count("mismatched")

    def live_nodes(self, chaos: Any) -> List[int]:
        """Serving nodes that are not fenced off.  Uses the same notion
        of dead the fabric itself uses (`is_fenced`: fail-stopped or
        declared failed) — migration refuses fenced destinations, so
        routing there would only burn a retry storm before failing."""
        if chaos is None:
            return list(self.spec.nodes)
        return [n for n in self.spec.nodes if not chaos.is_fenced(n)]

    # -- working set ----------------------------------------------------

    @property
    def n_slots(self) -> int:
        return max(self.spec.total_items // self.spec.per_request, 1)

    def request_span(self, rid: int) -> Tuple[int, int]:
        lo = (rid % self.n_slots) * self.spec.per_request
        return lo, min(lo + self.spec.per_request, self.spec.total_items)

    def install(self) -> None:
        """Create the tenant's process, allocate the working set, and
        write the input data (one setup simulate phase, before serving)."""
        spec = self.spec
        self.proc = self.cluster.create_process(name=f"tenant-{spec.name}")
        alloc = MemoryAllocator(self.proc)
        kind = spec.workload
        n = spec.total_items
        if kind == "kmn":
            points = workloads.clustered_points(n, KMN_K, seed=spec.seed + 11)
            centers = points[:KMN_K].copy()
            self._arrays["points"] = alloc_array(
                alloc, np.float64, n * 3, name=f"{spec.name}.points",
                page_aligned=True)
            self._arrays["centroids"] = alloc_array(
                alloc, np.float64, KMN_K * 3, name=f"{spec.name}.centroids",
                segment="globals", page_aligned=True)
            for slot in range(self.n_slots):
                lo, hi = slot * spec.per_request, min(
                    (slot + 1) * spec.per_request, n)
                d2 = ((points[lo:hi, None, :] - centers[None, :, :]) ** 2
                      ).sum(axis=2)
                self._expected.append(d2.argmin(axis=1))

            def setup(ctx):
                yield from self._arrays["points"].write(ctx, 0, points.ravel())
                yield from self._arrays["centroids"].write(
                    ctx, 0, centers.ravel())

        elif kind in ("grp", "scan"):
            text = workloads.text_corpus(n, seed=spec.seed + 7,
                                         plant_every=200)
            keys = workloads.DEFAULT_KEYS
            max_key = max(len(k) for k in keys)
            self._arrays["text"] = alloc_array(
                alloc, np.uint8, n, name=f"{spec.name}.text",
                page_aligned=True)
            if kind == "scan":
                self._arrays["hits"] = alloc_array(
                    alloc, np.int64, len(keys), name=f"{spec.name}.hits",
                    segment="globals", page_aligned=True)
            for slot in range(self.n_slots):
                lo, hi = slot * spec.per_request, min(
                    (slot + 1) * spec.per_request, n)
                take = hi - lo
                window = text[lo:lo + min(take + max_key - 1, n - lo)]
                self._expected.append(
                    [_count_starting_before(window, key, take)
                     for key in keys])

            def setup(ctx):
                yield from self._arrays["text"].write(
                    ctx, 0, np.frombuffer(text, dtype=np.uint8))

        else:  # blk
            batch = workloads.option_batch(n, seed=spec.seed + 13)
            for name in FIELDS:
                self._arrays[name] = alloc_array(
                    alloc, np.float64, n, name=f"{spec.name}.{name}",
                    page_aligned=True)
            self._arrays["flags"] = alloc_array(
                alloc, np.uint8, n, name=f"{spec.name}.flags",
                page_aligned=True)
            for slot in range(self.n_slots):
                lo, hi = slot * spec.per_request, min(
                    (slot + 1) * spec.per_request, n)
                self._expected.append(_price_arrays(
                    batch.spot[lo:hi], batch.strike[lo:hi],
                    batch.rate[lo:hi], batch.volatility[lo:hi],
                    batch.maturity[lo:hi], batch.is_call[lo:hi]))

            def setup(ctx):
                for name in FIELDS:
                    yield from self._arrays[name].write(
                        ctx, 0, getattr(batch, name))
                yield from ctx.write(
                    self._arrays["flags"].addr,
                    batch.is_call.astype(np.uint8).tobytes())

        self.cluster.simulate(setup, self.proc)

    def warm(self, ctx) -> Any:
        """Fault the whole working set in at the calling worker's node so
        serving-time latencies measure steady state, not cold faults."""
        kind = self.spec.workload
        if kind == "kmn":
            spans = [(self._arrays["points"],
                      self.spec.total_items * 3 * 8),
                     (self._arrays["centroids"], KMN_K * 3 * 8)]
        elif kind in ("grp", "scan"):
            spans = [(self._arrays["text"], self.spec.total_items)]
        else:
            spans = [(self._arrays[name], self.spec.total_items * 8)
                     for name in FIELDS]
            spans.append((self._arrays["flags"], self.spec.total_items))
        for arr, nbytes in spans:
            pos = 0
            while pos < nbytes:
                take = min(WARM_CHUNK_BYTES, nbytes - pos)
                yield from ctx.read(arr.addr + pos, take, site="serve:warm")
                pos += take

    # -- request execution ----------------------------------------------

    def execute(self, ctx, request: Request) -> Any:
        """Run one request through the matching adapter (a generator the
        worker thread drives)."""
        kind = self.spec.workload
        lo, hi = request.item_lo, request.item_hi
        if kind == "kmn":
            result = yield from workloads.kmn_query(
                ctx, self._arrays["points"], self._arrays["centroids"],
                KMN_K, lo, hi)
        elif kind == "grp":
            result = yield from workloads.grp_lookup(
                ctx, self._arrays["text"], self.spec.total_items,
                workloads.DEFAULT_KEYS, lo, hi)
        elif kind == "scan":
            result = yield from workloads.scan_query(
                ctx, self._arrays["text"], self.spec.total_items,
                workloads.DEFAULT_KEYS, self._arrays["hits"], lo, hi)
        else:
            result = yield from workloads.blk_price_query(
                ctx, {name: self._arrays[name] for name in FIELDS},
                self._arrays["flags"], lo, hi)
        return result

    def _verify(self, request: Request, result: Any) -> bool:
        slot = request.item_lo // self.spec.per_request
        expected = self._expected[slot]
        if self.spec.workload == "kmn":
            return bool(np.array_equal(result, expected))
        if self.spec.workload == "blk":
            return bool(np.allclose(result, expected))
        return list(result) == list(expected)

    # -- queue helpers ----------------------------------------------------

    def backlog(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def depth_hwm(self) -> int:
        return max((q.depth_hwm for q in self.queues.values()), default=0)

    def release_all_waiters(self) -> None:
        for q in self.queues.values():
            q.release_waiters()
