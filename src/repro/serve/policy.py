"""Admission-control policies for DexServe.

Every request passes through exactly one :meth:`AdmissionPolicy.decide`
call at its arrival node; the decision object says what happened and
the policy itself performs any queue mutation through the sanctioned
``commit_admit`` / ``evict_oldest`` surface.  Nothing else in the
serving layer may drop or enqueue work — the DexVet ``serve-discipline``
rule pins admission decisions to this module statically.

Three policies, matching the load-leveling patterns the ROADMAP names:

* ``reject``   — bounded queue, reject-with-503 once full (the classic
  load shedder: latency of admitted work stays bounded, overflow is
  pushed back to the client);
* ``shed-oldest`` — admit the newcomer, evict the head of the queue
  (freshness-biased: under overload, old queued work is the least
  likely to still matter);
* ``token-bucket`` — throttle to a sustained rate with a burst
  allowance, before the queue is even consulted (smooths bursts at the
  cost of refusing work the queue could briefly absorb).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .queueing import REJECTED, THROTTLED, Request, ServeQueue

POLICY_NAMES = ("reject", "shed-oldest", "token-bucket")

ADMIT = "admit"
REJECT = "reject"
THROTTLE = "throttle"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check: the action taken on *request*,
    plus any queued request shed to make room for it."""

    action: str
    request: Request
    shed: Tuple[Request, ...] = ()


class AdmissionPolicy:
    """Base: admit when the queue has room, reject otherwise."""

    name = "reject"

    def decide(
        self, queue: ServeQueue, request: Request, now_us: float
    ) -> AdmissionDecision:
        if queue.full:
            request.status = REJECTED
            request.finish_us = now_us
            return AdmissionDecision(REJECT, request)
        queue.commit_admit(request)
        return AdmissionDecision(ADMIT, request)


class RejectPolicy(AdmissionPolicy):
    """Bounded queue with reject-with-503 overflow (the base behaviour,
    named for CLI selection)."""

    name = "reject"


class ShedOldestPolicy(AdmissionPolicy):
    """Always admit the newest request; evict the oldest queued one when
    the backlog is full."""

    name = "shed-oldest"

    def decide(
        self, queue: ServeQueue, request: Request, now_us: float
    ) -> AdmissionDecision:
        shed = ()
        if queue.full:
            victim = queue.evict_oldest()
            if victim is not None:
                victim.finish_us = now_us
                shed = (victim,)
        queue.commit_admit(request)
        return AdmissionDecision(ADMIT, request, shed)


class TokenBucketPolicy(AdmissionPolicy):
    """Throttle to ``rate_per_s`` sustained with ``burst`` tokens of
    headroom; requests arriving with the bucket dry are throttled before
    the queue is consulted.  One bucket per node (admission is
    per-node)."""

    name = "token-bucket"

    def __init__(self, rate_per_s: float, burst: float = 16.0):
        if rate_per_s <= 0.0:
            raise ValueError("token-bucket rate must be positive")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens: Dict[int, float] = {}
        self._refilled_us: Dict[int, float] = {}

    def _refill(self, node: int, now_us: float) -> float:
        tokens = self._tokens.get(node, self.burst)
        last = self._refilled_us.get(node, now_us)
        tokens = min(self.burst, tokens + (now_us - last) * self.rate_per_s / 1e6)
        self._refilled_us[node] = now_us
        return tokens

    def decide(
        self, queue: ServeQueue, request: Request, now_us: float
    ) -> AdmissionDecision:
        node = queue.node
        tokens = self._refill(node, now_us)
        if tokens < 1.0:
            self._tokens[node] = tokens
            request.status = THROTTLED
            request.finish_us = now_us
            return AdmissionDecision(THROTTLE, request)
        if queue.full:
            self._tokens[node] = tokens
            request.status = REJECTED
            request.finish_us = now_us
            return AdmissionDecision(REJECT, request)
        self._tokens[node] = tokens - 1.0
        queue.commit_admit(request)
        return AdmissionDecision(ADMIT, request)


def make_policy(
    name: str, rate_per_s: float = 0.0, burst: float = 16.0
) -> AdmissionPolicy:
    """Build a policy by CLI name; ``rate_per_s`` feeds token-bucket
    (falls back to the tenant's base arrival rate)."""
    if name == "reject":
        return RejectPolicy()
    if name == "shed-oldest":
        return ShedOldestPolicy()
    if name == "token-bucket":
        return TokenBucketPolicy(rate_per_s or 1.0, burst)
    raise ValueError(f"unknown admission policy {name!r} (one of {POLICY_NAMES})")
