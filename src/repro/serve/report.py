"""Per-tenant SLO reporting for DexServe runs.

:func:`build_report` turns a finished :class:`ServeManager` run into a
plain-JSON dict — per-tenant p50/p99/p999 (from the metrics registry's
``quantiles()``), goodput/throughput, SLO attainment, admission
decisions, and (when chaos was active) an attribution section tying the
p99 spike to the failed node's tenants.  Every number is a pure function
of simulated time, so the same seed produces a byte-identical document
(``json.dumps(..., sort_keys=True)``).

:func:`render_report` prints the same document as the fixed-width table
the ``serve report`` CLI shows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .arrivals import curve_window

SCHEMA = "dex-serve-report/v1"


def _sample_p99(samples: List[Tuple[float, float]],
                lo: float, hi: float) -> Any:
    """p99 latency of the samples finishing in ``[lo, hi)`` (None when
    the window is empty).  Exact nearest-rank over the sorted window —
    small windows, no numpy dependence on platform quirks."""
    window = sorted(lat for (t, lat) in samples if lo <= t < hi)
    if not window:
        return None
    rank = max(int(len(window) * 0.99) - 1, 0)
    return round(window[rank], 3)


def build_report(manager: Any) -> Dict[str, Any]:
    cluster = manager.cluster
    start = manager._serve_start_us
    duration_us = cluster.engine.now - start
    duration_s = duration_us / 1e6 if duration_us > 0 else 1e-9
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "seed": manager.seed,
        "num_nodes": cluster.num_nodes,
        "directory": cluster.params.directory,
        "serve_start_us": round(start, 3),
        "duration_us": round(duration_us, 3),
        "tenants": {},
    }

    for tenant in manager.tenants:
        spec = tenant.spec
        counts = tenant.counts()
        qs = tenant._latency.quantiles(50, 99, 99.9)
        wait_qs = tenant._queue_wait.quantiles(50, 99)
        completed = counts["completed"]
        within_slo = sum(
            1 for (_, lat) in tenant.samples if lat <= spec.slo_p99_us)
        doc: Dict[str, Any] = {
            "workload": spec.workload,
            "nodes": list(spec.nodes),
            "workers_per_node": spec.workers_per_node,
            "policy": spec.policy,
            "curve": spec.curve.kind,
            "requests": spec.curve.requests,
            "counts": counts,
            "latency_us": {
                "p50": round(qs["p50"], 3),
                "p99": round(qs["p99"], 3),
                "p999": round(qs["p999"], 3),
                "mean": round(tenant._latency.mean, 3),
                "max": round(tenant._latency.max, 3) if completed else None,
                "count": tenant._latency.count,
            },
            "queue_wait_us": {
                "p50": round(wait_qs["p50"], 3),
                "p99": round(wait_qs["p99"], 3),
            },
            "queue_depth_hwm": tenant.depth_hwm(),
            "throughput_rps": round(completed / duration_s, 3),
            "goodput_rps": round(within_slo / duration_s, 3),
            "slo": {
                "target_p99_us": spec.slo_p99_us,
                "attainment": round(within_slo / completed, 4)
                if completed else 0.0,
            },
        }
        if spec.curve.kind == "burst":
            # p99 before / during / after the burst window, from the
            # per-request samples (windows in absolute sim time)
            b_lo, b_hi = curve_window(spec.curve)
            b_lo, b_hi = start + b_lo, start + b_hi
            doc["burst_window"] = {
                "p99_before": _sample_p99(tenant.samples, start, b_lo),
                "p99_during": _sample_p99(tenant.samples, b_lo, b_hi),
                "p99_after": _sample_p99(
                    tenant.samples, b_hi, start + duration_us + 1.0),
            }
        report["tenants"][spec.name] = doc

    chaos = cluster.chaos
    if chaos is not None:
        failed = sorted(chaos.failed | chaos.crashed)
        impacted = sorted(
            t.spec.name for t in manager.tenants
            if set(t.spec.nodes) & set(failed)
        )
        crash_times = [t for (t, what) in chaos.events if "fail-stop" in what]
        first_crash = min(crash_times) if crash_times else None
        attribution: Dict[str, Any] = {}
        if first_crash is not None:
            end = start + duration_us + 1.0
            for tenant in manager.tenants:
                before = _sample_p99(tenant.samples, start, first_crash)
                after = _sample_p99(tenant.samples, first_crash, end)
                attribution[tenant.spec.name] = {
                    "impacted": tenant.spec.name in impacted,
                    "p99_before_crash": before,
                    "p99_after_crash": after,
                }
        report["chaos"] = {
            "crashed_nodes": sorted(chaos.crashed),
            "failed_nodes": sorted(chaos.failed),
            "first_crash_us": round(first_crash, 3)
            if first_crash is not None else None,
            "impacted_tenants": impacted,
            "attribution": attribution,
            "events": [f"t={t:.1f}us {what}" for t, what in chaos.events],
        }
    return report


def _fmt(value: Any, width: int = 9) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.1f}".rjust(width)
    return str(value).rjust(width)


def render_report(report: Dict[str, Any]) -> str:
    """The ``serve report`` table: one row per tenant, then chaos
    attribution when present."""
    lines = [
        f"DexServe SLO report — seed {report['seed']}, "
        f"{report['num_nodes']} nodes, directory={report['directory']}, "
        f"{len(report['tenants'])} tenant(s), "
        f"{report['duration_us'] / 1000.0:.2f} ms served",
        f"{'tenant':<12} {'kind':<5} {'curve':<9} {'policy':<13}"
        f"{'requests':>9} {'done':>9} {'rej':>7} {'shed':>7} {'thr':>7}"
        f" {'fail':>7} {'p50us':>9} {'p99us':>9} {'p999us':>9}"
        f" {'goodput':>9} {'slo%':>7}",
    ]
    for name in sorted(report["tenants"]):
        doc = report["tenants"][name]
        counts = doc["counts"]
        lat = doc["latency_us"]
        lines.append(
            f"{name:<12} {doc['workload']:<5} {doc['curve']:<9} "
            f"{doc['policy']:<12}"
            f"{_fmt(doc['requests'])} {_fmt(counts['completed'])}"
            f" {_fmt(counts['rejected'], 7)} {_fmt(counts['shed'], 7)}"
            f" {_fmt(counts['throttled'], 7)} {_fmt(counts['failed'], 7)}"
            f" {_fmt(lat['p50'])} {_fmt(lat['p99'])} {_fmt(lat['p999'])}"
            f" {_fmt(doc['goodput_rps'])}"
            f" {_fmt(doc['slo']['attainment'] * 100.0, 7)}"
        )
        burst = doc.get("burst_window")
        if burst:
            lines.append(
                f"{'':<12} burst p99: before={_fmt(burst['p99_before'], 1)}"
                f" during={_fmt(burst['p99_during'], 1)}"
                f" after={_fmt(burst['p99_after'], 1)} (us)"
            )
    chaos = report.get("chaos")
    if chaos:
        lines.append(
            f"chaos: crashed={chaos['crashed_nodes']} "
            f"failed={chaos['failed_nodes']} "
            f"first_crash={chaos['first_crash_us']}us "
            f"impacted={', '.join(chaos['impacted_tenants']) or 'none'}"
        )
        for name in sorted(chaos.get("attribution", {})):
            att = chaos["attribution"][name]
            marker = "IMPACTED" if att["impacted"] else "ok"
            lines.append(
                f"  {name:<12} p99 before crash={_fmt(att['p99_before_crash'], 1)}us"
                f" after={_fmt(att['p99_after_crash'], 1)}us [{marker}]"
            )
    return "\n".join(lines)
