"""The DexServe CLI.

Run a multi-tenant serving scenario::

    python -m repro.serve --tenants kmn:constant,grp:constant,blk:constant,scan:burst \\
        --nodes 8 --seed 42 --requests 400 --rate 8000 --out serve-report.json

Compose with chaos ("node dies under peak load — what happens to p99?")::

    python -m repro.serve --chaos fail-stop --crash-node 2 --crash-at-us 100000

Re-render a saved report::

    python -m repro.serve report serve-report.json

Exit status is nonzero when any tenant saw a result mismatch (serving
must never trade correctness for latency).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.serve.arrivals import parse_curve
from repro.serve.manager import ServeManager
from repro.serve.policy import POLICY_NAMES
from repro.serve.report import render_report
from repro.serve.tenant import WORKLOAD_KINDS, TenantSpec

DEFAULT_TENANTS = "kmn:constant,grp:constant,blk:constant,scan:burst"


def _plan_placement(n_tenants: int, num_nodes: int) -> List[Tuple[int, ...]]:
    """Block-partition the nodes among the tenants (the bulkhead default:
    disjoint node sets when the rack is big enough, round-robin single
    nodes otherwise)."""
    if n_tenants <= num_nodes:
        chunk = num_nodes // n_tenants
        extra = num_nodes % n_tenants
        plans, nxt = [], 0
        for i in range(n_tenants):
            take = chunk + (1 if i < extra else 0)
            plans.append(tuple(range(nxt, nxt + take)))
            nxt += take
        return plans
    return [(i % num_nodes,) for i in range(n_tenants)]


def parse_tenants(spec: str, ns: argparse.Namespace) -> List[TenantSpec]:
    """``kind:curve[:name]`` comma-list -> TenantSpecs with block-
    partitioned node placement and the shared CLI knobs applied."""
    entries = [e.strip() for e in spec.split(",") if e.strip()]
    if not entries:
        raise ValueError("--tenants is empty")
    plans = _plan_placement(len(entries), ns.nodes)
    specs = []
    for i, entry in enumerate(entries):
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"tenant spec {entry!r} is not kind:curve[:name]")
        kind, curve_kind = parts[0], parts[1]
        if kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"tenant spec {entry!r}: unknown workload {kind!r} "
                f"(one of {WORKLOAD_KINDS})")
        name = parts[2] if len(parts) == 3 else f"{kind}-{i}"
        curve = parse_curve(
            curve_kind, ns.rate, ns.requests,
            burst_at_us=ns.burst_at_us, burst_for_us=ns.burst_for_us,
            burst_x=ns.burst_x,
        )
        specs.append(TenantSpec(
            name=name, workload=kind, curve=curve, nodes=plans[i],
            workers_per_node=ns.workers_per_node,
            queue_capacity=ns.queue_capacity, policy=ns.policy,
            items=ns.items, request_items=ns.request_items,
            slo_p99_us=ns.slo_p99_us, seed=ns.seed + i,
        ))
    return specs


def _resolve_chaos(ns: argparse.Namespace, num_nodes: int):
    """Returns (chaos, fail_stop) for the manager.  ``fail-stop`` crashes
    a node ``--crash-at-us`` after *serving starts* (warm-up time varies
    with the tenant mix, so absolute times would be untenable)."""
    if not ns.chaos:
        return None, None
    if ns.chaos != "fail-stop":
        # a scenario JSON path: hand it to the cluster untouched
        return ns.chaos, None
    from repro.chaos import ChaosScenario

    node = ns.crash_node if ns.crash_node is not None else num_nodes - 1
    chaos = ChaosScenario(
        rules=[], seed=ns.seed, on_exclusive_loss=ns.loss_policy,
    )
    return chaos, (node, ns.crash_at_us)


def cmd_run(ns: argparse.Namespace) -> int:
    specs = parse_tenants(ns.tenants, ns)
    want_export = bool(ns.trace_out)
    chaos, fail_stop = _resolve_chaos(ns, ns.nodes)
    manager = ServeManager(
        specs,
        num_nodes=ns.nodes,
        seed=ns.seed,
        directory=ns.directory,
        chaos=chaos,
        scope=ns.scope or want_export,
        fail_stop=fail_stop,
    )
    report = manager.run()
    if ns.out:
        with open(ns.out, "w") as fh:
            json.dump(report, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"wrote SLO report to {ns.out}")
    if want_export:
        from repro.obs.export import write_chrome_trace

        tracer = manager.cluster.tracer
        spans = tracer.spans if tracer is not None else []
        dropped = tracer.dropped if tracer is not None else 0
        counters = manager.cluster.scope.counter_events()
        count = write_chrome_trace(
            ns.trace_out, spans, dropped=dropped, counters=counters)
        print(f"wrote {count} trace events to {ns.trace_out} "
              "(open at ui.perfetto.dev)")
    if not ns.quiet:
        print(render_report(report))
    mismatches = sum(
        doc["counts"].get("mismatched", 0)
        for doc in report["tenants"].values()
    )
    if mismatches:
        print(f"ERROR: {mismatches} request(s) returned wrong results",
              file=sys.stderr)
        return 1
    return 0


def cmd_report(path: str) -> int:
    with open(path) as fh:
        report = json.load(fh)
    if report.get("schema") != "dex-serve-report/v1":
        print(f"{path}: not a DexServe report "
              f"(schema={report.get('schema')!r})", file=sys.stderr)
        return 2
    print(render_report(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant DeX serving: open-loop load, admission "
                    "control, per-tenant SLO reporting",
    )
    parser.add_argument("--tenants", default=DEFAULT_TENANTS,
                        help="comma list of kind:curve[:name] "
                             f"(default {DEFAULT_TENANTS})")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--requests", type=int, default=400,
                        help="arrivals per tenant")
    parser.add_argument("--rate", type=float, default=8000.0,
                        help="base arrival rate per tenant, requests/s")
    parser.add_argument("--workers-per-node", type=int, default=2,
                        help="bulkhead: worker threads per serving node")
    parser.add_argument("--queue-capacity", type=int, default=32)
    parser.add_argument("--items", type=int, default=0,
                        help="working-set items per tenant (0 = kind default)")
    parser.add_argument("--request-items", type=int, default=0,
                        help="items per request (0 = kind default)")
    parser.add_argument("--policy", choices=POLICY_NAMES, default="reject")
    parser.add_argument("--slo-p99-us", type=float, default=2000.0)
    parser.add_argument("--burst-at-us", type=float, default=50_000.0)
    parser.add_argument("--burst-for-us", type=float, default=20_000.0)
    parser.add_argument("--burst-x", type=float, default=8.0)
    parser.add_argument("--directory", choices=("origin", "sharded"),
                        default=None)
    parser.add_argument("--chaos", default="",
                        help='"fail-stop" or a scenario JSON path')
    parser.add_argument("--crash-node", type=int, default=None,
                        help="fail-stop target (default: last node)")
    parser.add_argument("--crash-at-us", type=float, default=30_000.0,
                        help="fail-stop this long after serving starts")
    parser.add_argument("--loss-policy", choices=("fail", "rollback"),
                        default="rollback")
    parser.add_argument("--scope", action="store_true",
                        help="enable DexScope time-series sampling")
    parser.add_argument("--trace-out", default="",
                        help="write a Perfetto trace (implies --scope)")
    parser.add_argument("--out", default="", help="write the report JSON")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "report":
        if len(argv) != 2:
            print("usage: python -m repro.serve report <report.json>",
                  file=sys.stderr)
            return 2
        return cmd_report(argv[1])
    if argv and argv[0] == "run":
        argv = argv[1:]
    return cmd_run(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
