"""DexServe: a multi-tenant serving layer over the DeX fabric.

N tenants (KMN model queries, GRP lookups, BLK pricing, string-match
scans) share one :class:`~repro.core.cluster.DexCluster` under
deterministic open-loop load, with per-node admission control,
queue-based load leveling, bulkheaded worker pools, and per-tenant SLO
reporting through the DexTrace/DexScope stack.

Nothing in the core simulator imports this package: serving is strictly
a layer on top, and a run without it pays nothing for its existence
(asserted by the zero-cost guard in ``tests/test_serve.py``).

Entry points::

    python -m repro.serve                # run a scenario
    python -m repro.serve report x.json  # re-render a saved report

or programmatically::

    from repro.serve import ArrivalCurve, ServeManager, TenantSpec

    spec = TenantSpec("pricing", "blk",
                      ArrivalCurve("constant", rate=8000, requests=2000),
                      nodes=(6, 7))
    report = ServeManager([spec], num_nodes=8, seed=42).run()
"""

from repro.serve.arrivals import ArrivalCurve, arrival_times, parse_curve
from repro.serve.manager import ServeManager
from repro.serve.policy import (
    AdmissionDecision,
    AdmissionPolicy,
    RejectPolicy,
    ShedOldestPolicy,
    TokenBucketPolicy,
    make_policy,
)
from repro.serve.queueing import Request, ServeQueue
from repro.serve.report import build_report, render_report
from repro.serve.tenant import Tenant, TenantSpec

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "ArrivalCurve",
    "RejectPolicy",
    "Request",
    "ServeManager",
    "ServeQueue",
    "ShedOldestPolicy",
    "Tenant",
    "TenantSpec",
    "TokenBucketPolicy",
    "arrival_times",
    "build_report",
    "make_policy",
    "parse_curve",
    "render_report",
]
