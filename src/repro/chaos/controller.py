"""The chaos controller: injection, crash bookkeeping, and the failure
detector.

One controller exists per :class:`~repro.core.cluster.DexCluster` when
``DEX_CHAOS`` (or ``SimParams.chaos``/``chaos_scenario``) enables the
subsystem; when it is off the cluster holds ``None`` and every hook in the
fabric reduces to one ``is None`` check, keeping sim time bit-identical.

Three concerns live here:

* **Injection** — :meth:`ChaosController.on_deliver` is consulted by the
  fabric at delivery time and turns scenario rules into a
  :class:`ChaosVerdict` (drop / extra delay / duplicate / reorder);
  predicate crash rules also fire here.
* **Fail-stop** — :meth:`crash` marks a node dead.  The fabric drops
  everything the dead node sends or would receive; threads executing there
  halt mid-instruction (parked, not failed — the origin has not noticed
  yet).
* **Detection & recovery** — remote workers renew a per-(process, node)
  lease with ``LEASE_RENEW`` keepalives; an origin-side monitor declares a
  node failed after ``lease_timeout_us`` of silence (retry exhaustion in
  the transport is the second detection path).  Declaring failure aborts
  in-flight requests toward the node and runs
  :func:`repro.chaos.recovery.recover_process` on every process.

The keepalive and monitor are self-rescheduling engine callbacks, not
processes: they stop re-arming when the cluster goes idle (so
``engine.run()`` still terminates) and resume on the next ``simulate``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.chaos.scenario import ChaosError, ChaosRule, ChaosScenario
from repro.core.errors import NodeFailedError
from repro.net.messages import Message, MsgType
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import maybe_span


class ChaosVerdict:
    """What the fabric should do with one delivery."""

    __slots__ = ("drop", "duplicate", "reorder", "extra_delay_us")

    def __init__(self) -> None:
        self.drop = False
        self.duplicate = False
        self.reorder = False
        self.extra_delay_us = 0.0


class ThreadHalt:
    """Interrupt cause for threads on a fail-stopped node: the thread
    parks forever on :attr:`parked` (the node ceased to exist) until the
    origin's recovery fails its process event with the diagnostic."""

    halts_thread = True

    def __init__(self, engine: Any, node: int):
        self.node = node
        self.parked = engine.event(name=f"halted@n{node}")


class _Lease:
    __slots__ = ("proc", "node", "last_renew", "ticking")

    def __init__(self, proc: Any, node: int, now: float):
        self.proc = proc
        self.node = node
        self.last_renew = now
        self.ticking = False


class ChaosController:
    """Per-cluster fault injector and failure detector."""

    def __init__(self, engine: Any, params: Any, scenario: ChaosScenario):
        self.engine = engine
        self.params = params
        self.scenario = scenario.validate()
        # backref for the harness: apps build their cluster internally, so
        # the scenario object is the only handle the caller keeps
        scenario.last_controller = self
        self.cluster: Optional[Any] = None
        self.net: Optional[Any] = None
        #: ground truth: nodes that fail-stopped
        self.crashed: Set[int] = set()
        #: what the origin has detected (and fenced + reclaimed)
        self.failed: Set[int] = set()
        #: human-readable (sim_time, what) log for harness reports
        self.events: List[Tuple[float, str]] = []
        self._wire_rules = [r for r in scenario.rules if not r.scheduled]
        self._scheduled_rules = [r for r in scenario.rules if r.scheduled]
        self._leases: Dict[Tuple[int, int], _Lease] = {}
        self._services_active = False
        self._monitor_ticking = False
        #: in-flight requests by destination, failed fast on detection
        self._pending_to: Dict[int, Dict[int, Any]] = {}
        self.metrics = MetricsRegistry()
        self.injections = self.metrics.counter(
            "chaos_injections_total", "faults injected by the scenario",
            labelnames=("kind",),
        )
        self.retransmissions = self.metrics.counter(
            "chaos_retransmissions_total", "request retransmissions")
        self.request_acks = self.metrics.counter(
            "chaos_request_acks_total", "duplicate-request acks sent")
        self.replies_resent = self.metrics.counter(
            "chaos_replies_resent_total", "cached replies re-sent")
        self.lease_renewals = self.metrics.counter(
            "chaos_lease_renewals_total", "keepalives posted")
        self.lease_expiries = self.metrics.counter(
            "chaos_lease_expiries_total", "leases that timed out")
        self.node_failures = self.metrics.counter(
            "chaos_node_failures_total", "nodes declared failed")
        self.requests_aborted = self.metrics.counter(
            "chaos_requests_aborted_total",
            "in-flight requests failed by the detector")
        self.suppressed_sends = self.metrics.counter(
            "chaos_suppressed_sends_total", "sends discarded at dead nodes")

    # -- wiring ----------------------------------------------------------

    def attach(self, cluster: Any) -> None:
        self.cluster = cluster
        self.net = cluster.net
        for rule in self._scheduled_rules:
            if rule.fired:
                continue  # consumed by an earlier run of this scenario
            when = max(rule.at_us or 0.0, self.engine.now)
            self.engine._schedule_at(when, self._fire_scheduled_crash, rule)

    def _fire_scheduled_crash(self, rule: ChaosRule) -> None:
        if rule.fired:
            return
        rule.fired += 1
        self.crash(rule.node, f"scenario: {rule.describe()}")

    # -- fail-stop -------------------------------------------------------

    def is_crashed(self, node: int) -> bool:
        return node in self.crashed

    def is_fenced(self, node: int) -> bool:
        """Dead for fabric purposes: fail-stopped, or declared failed and
        fenced off so a wrongly-suspected node cannot disturb reclaimed
        state."""
        return node in self.crashed or node in self.failed

    def crash(self, node: int, reason: str = "") -> None:
        """Fail-stop *node*: from this instant it sends nothing, receives
        nothing, and every thread executing on it halts mid-instruction."""
        if node in self.crashed:
            return
        if node == 0:
            raise ChaosError("cannot crash node 0 (the origin)")
        self.crashed.add(node)
        self.injections.labels(kind="crash").inc()
        self._log(f"node {node} fail-stop ({reason or 'unscheduled'})")
        if self.cluster is None:
            return
        for proc in self.cluster.processes.values():
            for thread in proc.threads:
                if thread.alive and thread.current_node == node:
                    thread.sim_process.interrupt(ThreadHalt(self.engine, node))

    # -- injection (called from the fabric's wire process) ----------------

    def on_send(self, msg: Message) -> bool:
        """True if the send must be suppressed (source is dead/fenced)."""
        if self.is_fenced(msg.src):
            self.suppressed_sends.inc()
            return True
        return False

    def on_deliver(self, msg: Message, wire_bytes: int) -> Optional[ChaosVerdict]:
        """Consult the scenario for one delivery; None means 'untouched'."""
        verdict: Optional[ChaosVerdict] = None
        now = self.engine.now
        for rule in self._wire_rules:
            if not rule.matches(msg, now):
                continue
            rule.matched += 1
            if not rule.should_fire(self.engine.rng):
                continue
            rule.fired += 1
            if rule.kind == "crash":
                self.crash(rule.node, f"scenario: {rule.describe()}")
                continue
            if verdict is None:
                verdict = ChaosVerdict()
            self.injections.labels(kind=rule.kind).inc()
            if rule.kind == "drop":
                verdict.drop = True
            elif rule.kind == "duplicate":
                verdict.duplicate = True
            elif rule.kind == "reorder":
                verdict.reorder = True
            elif rule.kind == "delay":
                verdict.extra_delay_us += rule.delay_us
            elif rule.kind == "degrade":
                # modeled as the extra serialization time of a link running
                # at 1/factor of its bandwidth
                extra = wire_bytes / self.params.link_bandwidth * (rule.factor - 1.0)
                verdict.extra_delay_us += extra
            with maybe_span(
                self.engine.tracer, f"chaos.{rule.kind}", node=msg.dst,
                msg_type=msg.msg_type.value, src=msg.src, msg_id=msg.msg_id,
            ):
                pass
        # fail-stop fencing is a delivery effect too: nothing is delivered
        # to — or accepted from — a dead node
        if verdict is None or not verdict.drop:
            if self.is_fenced(msg.dst) or self.is_fenced(msg.src):
                if verdict is None:
                    verdict = ChaosVerdict()
                verdict.drop = True
        return verdict

    # -- retry-transport accounting ---------------------------------------

    def track_request(self, msg: Message, reply_event: Any) -> None:
        self._pending_to.setdefault(msg.dst, {})[msg.msg_id] = reply_event

    def untrack_request(self, msg: Message) -> None:
        pending = self._pending_to.get(msg.dst)
        if pending is not None:
            pending.pop(msg.msg_id, None)

    def note_retransmit(self, msg: Message, attempt: int) -> None:
        self.retransmissions.inc()

    def inflight_requests(self) -> int:
        """Reliable requests currently awaiting a reply, across all
        destinations (read-only; the DexScope in-flight gauge)."""
        return sum(len(pending) for pending in self._pending_to.values())

    def note_unreachable(self, node: int, msg: Message) -> None:
        """Retry exhaustion: the second detection path next to the lease."""
        self.declare_failed(
            node,
            f"no reply to {msg.msg_type.value}#{msg.msg_id} after "
            f"{self.params.retry_max_attempts} attempts",
        )

    # -- lease / keepalive failure detector --------------------------------

    def register_lease(self, proc: Any, node: int) -> None:
        """Start (or refresh) the keepalive for a remote worker of *proc*
        at *node*.  Called when migration creates the worker."""
        key = (proc.pid, node)
        lease = self._leases.get(key)
        if lease is None:
            lease = _Lease(proc, node, self.engine.now)
            self._leases[key] = lease
        else:
            lease.last_renew = self.engine.now
        if not self._services_active:
            # between simulate phases (or after the main thread finished):
            # record the lease but do not tick — a self-rescheduling tick
            # with nobody left to suspend it would keep the queue alive
            # forever.  resume_services re-arms it on the next phase.
            return
        self._start_lease(lease)
        if not self._monitor_ticking:
            self._monitor_ticking = True
            self.engine._schedule_at(
                self.engine.now + self.params.lease_check_us, self._monitor_tick
            )

    def _start_lease(self, lease: _Lease) -> None:
        if lease.ticking:
            return
        lease.ticking = True
        self.engine._schedule_at(
            self.engine.now + self.params.lease_interval_us,
            self._keepalive_tick, lease,
        )

    def _keepalive_tick(self, lease: _Lease) -> None:
        if not self._services_active:
            lease.ticking = False
            return
        proc, node = lease.proc, lease.node
        if node not in proc.nodes_with_worker:
            # worker exited cleanly (or was reclaimed); lease is over
            lease.ticking = False
            self._leases.pop((proc.pid, node), None)
            return
        if not self.is_fenced(node):
            # the renewal is a real message: a dead node cannot send it,
            # which is exactly how the origin finds out
            self.lease_renewals.inc()
            self.net.post(Message(
                MsgType.LEASE_RENEW, src=node, dst=proc.origin,
                payload={"pid": proc.pid, "node": node},
            ))
        self.engine._schedule_at(
            self.engine.now + self.params.lease_interval_us,
            self._keepalive_tick, lease,
        )

    def on_lease_renew(self, pid: int, node: int) -> None:
        """Origin-side handler effect for a received LEASE_RENEW."""
        lease = self._leases.get((pid, node))
        if lease is not None:
            lease.last_renew = self.engine.now

    def _monitor_tick(self) -> None:
        if not self._services_active or not self._leases:
            self._monitor_ticking = False
            return
        now = self.engine.now
        for (pid, node), lease in list(self._leases.items()):
            if node in self.failed:
                continue
            silence = now - lease.last_renew
            if silence > self.params.lease_timeout_us:
                self.lease_expiries.inc()
                self.declare_failed(
                    node, f"lease expired ({silence:.1f}us without renewal)"
                )
        self.engine._schedule_at(now + self.params.lease_check_us, self._monitor_tick)

    def suspend_services(self) -> None:
        """Stop re-arming keepalive/monitor ticks (cluster going idle)."""
        self._services_active = False

    def resume_services(self) -> None:
        """Mark a ``simulate`` phase active and re-arm any leases."""
        self._services_active = True
        if not self._leases:
            return
        now = self.engine.now
        for lease in self._leases.values():
            lease.last_renew = now
            self._start_lease(lease)
        if not self._monitor_ticking:
            self._monitor_ticking = True
            self.engine._schedule_at(
                now + self.params.lease_check_us, self._monitor_tick
            )

    # -- detection & recovery ----------------------------------------------

    def declare_failed(self, node: int, reason: str) -> None:
        """The origin gives up on *node*: fence it, abort everything
        waiting on it, and reclaim what it held."""
        if node in self.failed:
            return
        self.failed.add(node)
        self.node_failures.inc()
        self._log(f"node {node} declared failed: {reason}")
        with maybe_span(
            self.engine.tracer, "chaos.node_failed", node=node, reason=reason,
        ):
            pass
        exc = NodeFailedError(node, reason)
        for reply_event in list(self._pending_to.pop(node, {}).values()):
            if not reply_event.triggered:
                self.requests_aborted.inc()
                reply_event.fail(exc)
        if self.cluster is not None:
            from repro.chaos.recovery import recover_process

            for proc in list(self.cluster.processes.values()):
                recover_process(self, proc, node, reason)

    # -- reporting ---------------------------------------------------------

    def _log(self, what: str) -> None:
        self.events.append((self.engine.now, what))

    def report(self) -> Dict[str, Any]:
        injected = self.injections.value_by_label()
        return {
            "injections": injected,
            "retransmissions": self.retransmissions.value,
            "request_acks": self.request_acks.value,
            "replies_resent": self.replies_resent.value,
            "lease_renewals": self.lease_renewals.value,
            "lease_expiries": self.lease_expiries.value,
            "node_failures": self.node_failures.value,
            "requests_aborted": self.requests_aborted.value,
            "suppressed_sends": self.suppressed_sends.value,
            "crashed": sorted(self.crashed),
            "failed": sorted(self.failed),
            "events": [f"t={t:.1f}us {what}" for t, what in self.events],
        }
