"""Chaos scenario spec: which faults to inject, where, and when.

A scenario is a seed plus an ordered list of :class:`ChaosRule`\\ s.  Each
rule names a fault ``kind`` (``drop``, ``delay``, ``duplicate``,
``reorder``, ``degrade``, or ``crash``) and a match: message type, source,
destination, a sim-time window, an ``nth``-match predicate ("the 3rd
PAGE_INVALIDATE from node 2"), or a probability drawn from the engine-owned
RNG.  Crash rules may instead fire at an absolute sim time (``at_us``).

Rule state (match and fire counters) lives on the rule objects and is
intentionally **shared across restart attempts** of the harness: a crash
that already fired stays consumed, so a restarted run completes.

Scenarios load from JSON::

    {
      "seed": 42,
      "on_exclusive_loss": "fail",
      "rules": [
        {"kind": "drop", "msg_type": "page_request", "nth": 1},
        {"kind": "crash", "node": 2, "at_us": 30000.0},
        {"kind": "crash", "node": 3, "msg_type": "page_invalidate",
         "src": 3, "nth": 3}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.errors import DexError

KINDS = ("drop", "delay", "duplicate", "reorder", "degrade", "crash")

#: what recovery does when a fail-stopped node held the only current copy
#: of a page: "fail" the process with a precise diagnostic, or "rollback"
#: the page to the last downgrade-flushed copy at its home
EXCLUSIVE_LOSS_POLICIES = ("fail", "rollback")


class ChaosError(DexError):
    """Invalid scenario spec or illegal chaos operation."""


@dataclass
class ChaosRule:
    """One fault-injection rule.  See the module docstring for semantics."""

    kind: str
    #: message match (ignored by time-scheduled crashes): MsgType value
    #: string, or None for any type
    msg_type: Optional[str] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    #: fire exactly on the nth matching message (1-based), once
    nth: Optional[int] = None
    #: else fire on each match with this probability (engine RNG)
    probability: Optional[float] = None
    #: cap on total firings; None = unlimited (nth-rules always fire once)
    times: Optional[int] = 1
    #: sim-time match window
    after_us: float = 0.0
    before_us: Optional[float] = None
    #: extra delivery latency for "delay" rules
    delay_us: float = 0.0
    #: bandwidth-division factor for "degrade" rules (2.0 = half speed)
    factor: float = 1.0
    #: the node a "crash" rule kills
    node: Optional[int] = None
    #: absolute sim time of a scheduled crash (alternative to a predicate)
    at_us: Optional[float] = None
    # -- runtime state, shared across harness restarts on purpose --------
    matched: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise ChaosError(f"unknown rule kind {self.kind!r} (one of {KINDS})")
        if self.kind == "crash":
            if self.node is None:
                raise ChaosError("crash rule needs a 'node'")
            if self.node == 0:
                raise ChaosError(
                    "node 0 is the origin of every simulated process; "
                    "origin fail-stop is outside the DeX failure model"
                )
            if self.at_us is None and not self._has_message_match():
                raise ChaosError(
                    "crash rule needs 'at_us' or a message predicate "
                    "(msg_type/src/dst/nth)"
                )
        if self.kind == "delay" and self.delay_us <= 0:
            raise ChaosError("delay rule needs delay_us > 0")
        if self.kind == "degrade" and self.factor <= 1.0:
            raise ChaosError("degrade rule needs factor > 1.0")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ChaosError(f"probability {self.probability} outside (0, 1]")
        if self.nth is not None and self.nth < 1:
            raise ChaosError("nth is 1-based")

    def _has_message_match(self) -> bool:
        return any(v is not None for v in (self.msg_type, self.src, self.dst, self.nth))

    @property
    def scheduled(self) -> bool:
        """True for crashes fired by absolute sim time, not by predicate."""
        return self.kind == "crash" and self.at_us is not None

    def matches(self, msg: Any, now: float) -> bool:
        if self.msg_type is not None and msg.msg_type.value != self.msg_type:
            return False
        if self.src is not None and msg.src != self.src:
            return False
        if self.dst is not None and msg.dst != self.dst:
            return False
        if now < self.after_us:
            return False
        if self.before_us is not None and now > self.before_us:
            return False
        return True

    def should_fire(self, rng: Any) -> bool:
        """Call after incrementing :attr:`matched` for a matching message."""
        if self.nth is not None:
            return self.matched == self.nth and self.fired == 0
        if self.times is not None and self.fired >= self.times:
            return False
        if self.probability is not None:
            return float(rng.random()) < self.probability
        return True

    def describe(self) -> str:
        match = [p for p in (
            self.msg_type,
            f"src={self.src}" if self.src is not None else None,
            f"dst={self.dst}" if self.dst is not None else None,
            f"nth={self.nth}" if self.nth is not None else None,
            f"p={self.probability}" if self.probability is not None else None,
            f"at={self.at_us}us" if self.at_us is not None else None,
        ) if p]
        target = f" node {self.node}" if self.node is not None else ""
        return f"{self.kind}{target}[{' '.join(match) or 'any'}]"


@dataclass
class ChaosScenario:
    """A seed, a recovery policy, and the rules to inject."""

    rules: List[ChaosRule] = field(default_factory=list)
    #: seeds the engine RNG when SimParams.seed is unset
    seed: Optional[int] = None
    on_exclusive_loss: str = "fail"

    def validate(self) -> "ChaosScenario":
        if self.on_exclusive_loss not in EXCLUSIVE_LOSS_POLICIES:
            raise ChaosError(
                f"on_exclusive_loss {self.on_exclusive_loss!r} "
                f"(one of {EXCLUSIVE_LOSS_POLICIES})"
            )
        for rule in self.rules:
            rule.validate()
        return self

    @classmethod
    def from_json(cls, text: str) -> "ChaosScenario":
        try:
            doc = json.loads(text)
        except ValueError as err:
            raise ChaosError(f"scenario is not valid JSON: {err}") from err
        if not isinstance(doc, dict):
            raise ChaosError("scenario JSON must be an object")
        known = {f for f in ChaosRule.__dataclass_fields__ if f not in ("matched", "fired")}
        rules = []
        for i, spec in enumerate(doc.get("rules", [])):
            extra = set(spec) - known
            if extra:
                raise ChaosError(f"rule {i}: unknown fields {sorted(extra)}")
            rules.append(ChaosRule(**spec))
        return cls(
            rules=rules,
            seed=doc.get("seed"),
            on_exclusive_loss=doc.get("on_exclusive_loss", "fail"),
        ).validate()

    @classmethod
    def from_file(cls, path: str) -> "ChaosScenario":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as err:
            raise ChaosError(f"cannot read scenario file {path!r}: {err}") from err
        return cls.from_json(text)

    def to_json(self) -> str:
        doc: Dict[str, Any] = {
            "seed": self.seed,
            "on_exclusive_loss": self.on_exclusive_loss,
            "rules": [],
        }
        for rule in self.rules:
            spec = {k: v for k, v in asdict(rule).items()
                    if k not in ("matched", "fired") and v is not None}
            doc["rules"].append(spec)
        return json.dumps(doc, indent=2)
