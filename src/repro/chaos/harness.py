"""Run workloads under a chaos scenario and check they still finish right.

Two entry points:

* :func:`run_pagefault_micro` — a fixed-iteration two-node workload that
  exercises every request-class control message (page faults, invalidation
  ping-pong, migration both ways, delegation, VMA query/shrink), so a
  "drop each message type once" sweep has something to drop.  Correctness
  is exact: the shared counter must equal the iteration count.
* :func:`run_under_chaos` — any Figure-2 app under a scenario, with a
  fail-stop restart policy: when a run dies of :class:`NodeFailedError`
  the app is re-run on a fresh cluster with the *same* scenario object.
  Rule state (``matched``/``fired``) is shared across attempts, so a crash
  that already fired stays consumed and the restarted run completes.

``python -m repro.chaos`` wraps both (see ``__main__.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chaos.scenario import ChaosScenario
from repro.core import DexCluster
from repro.core.errors import NodeFailedError
from repro.params import SimParams
from repro.runtime import Barrier, MemoryAllocator


def _chaos_params(
    params: Optional[SimParams],
    scenario: Optional[ChaosScenario],
    directory: Optional[str],
    sanitize: bool,
    seed: Optional[int],
) -> SimParams:
    base = params if params is not None else SimParams()
    overrides: Dict[str, Any] = {}
    if scenario is not None:
        overrides["chaos_scenario"] = scenario
    if directory is not None:
        overrides["directory"] = directory
    if sanitize:
        overrides["sanitize"] = "1"
    if seed is not None:
        overrides["seed"] = seed
    return base.copy(**overrides) if overrides else base


# ---------------------------------------------------------------------------
# the two-node pagefault micro


def run_pagefault_micro(
    scenario: Optional[ChaosScenario] = None,
    *,
    directory: Optional[str] = None,
    sanitize: bool = True,
    seed: Optional[int] = None,
    iters: int = 40,
    params: Optional[SimParams] = None,
) -> Dict[str, Any]:
    """Two threads hammer one shared counter — one at the origin, one
    migrated to node 1 — then rendezvous on a futex barrier; the remote
    thread also maps/touches/unmaps a scratch region so delegation and the
    eager VMA-shrink broadcast run too.  Returns a result dict with
    ``ok`` (exact-count correctness), the chaos ``report`` (None when the
    subsystem is off), and the final sim time."""
    run_params = _chaos_params(params, scenario, directory, sanitize, seed)
    cluster = DexCluster(num_nodes=2, params=run_params)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    var = alloc.alloc_global(8, tag="chaos_micro")
    barrier = Barrier(alloc, 2, name="micro")
    expected = 2 * iters

    def remote(ctx):
        yield from ctx.migrate(1)
        # delegated mmap; the replica learns the VMA on first touch
        # (VMA_QUERY), and the delegated munmap triggers the origin's
        # eager VMA_SHRINK broadcast back to this node
        scratch = yield from ctx.mmap(4096, tag="scratch")
        yield from ctx.write_i64(scratch, 1, site="micro:scratch")
        for _ in range(iters):
            yield from ctx.atomic_add_i64(var, 1, site="micro:remote")
            yield from ctx.compute(cpu_us=0.2)
        yield from ctx.munmap(scratch, 4096)
        yield from barrier.wait(ctx)
        yield from ctx.migrate_back()
        return iters

    def local(ctx):
        for _ in range(iters):
            yield from ctx.atomic_add_i64(var, 1, site="micro:local")
            yield from ctx.compute(cpu_us=0.2)
        yield from barrier.wait(ctx)
        return iters

    t_remote = proc.spawn_thread(remote, name="remote")
    t_local = proc.spawn_thread(local, name="local")

    def main(ctx):
        yield from proc.join_all([t_remote, t_local])
        value = yield from ctx.read_i64(var)
        return value

    value = cluster.simulate(main, proc)
    return {
        "ok": value == expected,
        "value": value,
        "expected": expected,
        "elapsed_us": cluster.now,
        "report": cluster.chaos.report() if cluster.chaos is not None else None,
    }


# ---------------------------------------------------------------------------
# apps under chaos, with fail-stop restart


@dataclass
class ChaosRunReport:
    """Outcome of :func:`run_under_chaos`."""

    app: str
    variant: str
    num_nodes: int
    #: per-attempt outcome lines ("completed" or the failure diagnostic)
    attempts: List[str] = field(default_factory=list)
    #: the successful AppResult, or None if every attempt failed
    result: Optional[Any] = None
    #: the last attempt's controller report (injection/retry/lease counters)
    report: Optional[Dict[str, Any]] = None

    @property
    def completed(self) -> bool:
        return self.result is not None

    @property
    def correct(self) -> bool:
        """True when the app completed *and* verified its own output."""
        return self.result is not None and bool(self.result.correct)


def run_under_chaos(
    app: str,
    variant: str = "initial",
    num_nodes: int = 4,
    scale: str = "small",
    *,
    scenario: Optional[ChaosScenario] = None,
    directory: Optional[str] = None,
    sanitize: bool = True,
    seed: Optional[int] = None,
    max_restarts: int = 1,
    params: Optional[SimParams] = None,
    **overrides: Any,
) -> ChaosRunReport:
    """Run one Figure-2 app under *scenario*; on fail-stop, restart on a
    fresh cluster up to *max_restarts* times (consumed crash rules do not
    re-fire).  The final attempt's exception propagates when the budget is
    exhausted, so an un-survivable scenario is loud, not silently wrong."""
    from repro.bench.runner import run_point

    if scenario is None:
        scenario = ChaosScenario()
    run_params = _chaos_params(params, scenario, directory, sanitize, seed)
    outcome = ChaosRunReport(app=app, variant=variant, num_nodes=num_nodes)
    for attempt in range(max_restarts + 1):
        try:
            result = run_point(app, variant, num_nodes, scale,
                               params=run_params, **overrides)
        except NodeFailedError as err:
            outcome.attempts.append(f"attempt {attempt + 1}: {err}")
            controller = getattr(scenario, "last_controller", None)
            outcome.report = controller.report() if controller else None
            if attempt >= max_restarts:
                raise
            continue
        outcome.attempts.append(f"attempt {attempt + 1}: completed")
        outcome.result = result
        controller = getattr(scenario, "last_controller", None)
        outcome.report = controller.report() if controller else None
        return outcome
    return outcome  # pragma: no cover - loop always returns or raises
