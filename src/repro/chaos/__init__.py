"""DexChaos: deterministic fault injection and fail-stop recovery.

The subsystem has three pieces:

* :mod:`repro.chaos.scenario` — the declarative fault spec: which messages
  to drop/delay/duplicate/reorder, which links to degrade, which nodes to
  crash, scheduled by sim time or by message predicate.  Seedable and
  bit-for-bit reproducible.
* :mod:`repro.chaos.controller` — the runtime: injects the faults into the
  fabric, runs the lease/keepalive failure detector at the origin, and on
  fail-stop drives :mod:`repro.chaos.recovery`.
* ``python -m repro.chaos`` — the harness: runs any Figure-2 application
  under a scenario (sanitizer on) and checks end-to-end correctness.

**Zero cost when off.**  Chaos is enabled only when ``SimParams.chaos`` /
``DEX_CHAOS`` or an explicit scenario says so; otherwise the cluster keeps
``chaos=None`` and every hot-path hook is a single ``is None`` test, the
transport takes its original non-retrying path, and sim time is
bit-identical to a build without the subsystem.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.chaos.controller import ChaosController, ThreadHalt
from repro.chaos.scenario import ChaosError, ChaosRule, ChaosScenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.params import SimParams

__all__ = [
    "ChaosController",
    "ChaosError",
    "ChaosRule",
    "ChaosRunReport",
    "ChaosScenario",
    "ThreadHalt",
    "resolve_chaos_mode",
    "resolve_scenario",
    "run_pagefault_micro",
    "run_under_chaos",
]

#: harness entry points, resolved lazily: the harness builds clusters, and
#: core.cluster imports this package at module load (chaos resolution), so
#: a top-level import would be circular
_HARNESS_EXPORTS = ("ChaosRunReport", "run_pagefault_micro", "run_under_chaos")


def __getattr__(name: str):
    if name in _HARNESS_EXPORTS:
        from repro.chaos import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

_OFF = frozenset({"", "0", "off", "none", "false", "no"})
_ON = frozenset({"1", "on", "true", "yes"})


def resolve_chaos_mode(setting: Optional[str]) -> Optional[str]:
    """Resolve a chaos setting against the ``DEX_CHAOS`` env var.

    ``None`` defers to the environment.  Off-values return ``None``; an
    on-value returns the normalized flag; anything else is treated as a
    path to a scenario JSON file and returned verbatim.
    """
    if setting is None:
        setting = os.environ.get("DEX_CHAOS", "")
    text = setting.strip()
    if text.lower() in _OFF:
        return None
    if text.lower() in _ON:
        return "on"
    return text


def resolve_scenario(params: "SimParams") -> Optional[ChaosScenario]:
    """The scenario to run under, or ``None`` when chaos is off.

    An explicit ``SimParams.chaos_scenario`` object wins; otherwise the
    ``chaos`` setting (or ``DEX_CHAOS``) either turns on an empty scenario
    (faults can still come from programmatic rules added later) or names a
    scenario JSON file to load.
    """
    if params.chaos_scenario is not None:
        scenario = params.chaos_scenario
        if not isinstance(scenario, ChaosScenario):
            raise ChaosError(
                f"chaos_scenario must be a ChaosScenario, got {type(scenario).__name__}"
            )
        return scenario.validate()
    mode = resolve_chaos_mode(params.chaos)
    if mode is None:
        return None
    if mode == "on":
        return ChaosScenario()
    return ChaosScenario.from_file(mode)
