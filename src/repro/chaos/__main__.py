"""``python -m repro.chaos`` — run a workload under fault injection.

Examples::

    # the two-node pagefault micro, dropping the first PAGE_REQUEST
    python -m repro.chaos --drop page_request

    # kmeans on 4 nodes, node 2 fail-stops mid-run; one restart allowed
    python -m repro.chaos --app kmeans --nodes 4 --crash-node 2 \\
        --crash-at 30000 --max-restarts 1

    # a full scenario file, sanitizer on, sharded directory
    python -m repro.chaos --app string_match --scenario chaos.json \\
        --directory sharded

Exit status is 0 iff the workload completed with a correct result.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.chaos.harness import run_pagefault_micro, run_under_chaos
from repro.chaos.scenario import (
    EXCLUSIVE_LOSS_POLICIES,
    ChaosError,
    ChaosRule,
    ChaosScenario,
)
from repro.core.errors import NodeFailedError

_ALIASES = {
    "string_match": "GRP", "grep": "GRP", "grp": "GRP",
    "kmeans": "KMN", "kmn": "KMN",
    "blackscholes": "BLK", "blk": "BLK",
    "bt": "BT", "ep": "EP", "ft": "FT",
    "bfs": "BFS", "bp": "BP", "pagerank": "BP",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="run a workload under a chaos scenario",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__.split("Examples::", 1)[1],
    )
    parser.add_argument("--app", default="micro",
                        help="application (default: the 2-node pagefault "
                        "micro); one of micro, kmeans, string_match, "
                        "blackscholes, bt, ep, ft, bfs, bp")
    parser.add_argument("--variant", default="initial",
                        choices=("unmodified", "initial", "optimized"))
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--scale", default="small", choices=("small", "paper"))
    parser.add_argument("--directory", default=None,
                        choices=("origin", "sharded"))
    parser.add_argument("--seed", type=int, default=None,
                        help="engine RNG seed (default: the scenario's, "
                        "else 0)")
    parser.add_argument("--iters", type=int, default=40,
                        help="micro only: per-thread iteration count")
    parser.add_argument("--no-sanitize", action="store_true",
                        help="run without the DexCheck coherence sanitizer")
    parser.add_argument("--max-restarts", type=int, default=1,
                        help="app runs: restarts allowed after a fail-stop")
    # scenario sources
    parser.add_argument("--scenario", default=None, metavar="FILE",
                        help="scenario JSON file (inline rule flags append)")
    parser.add_argument("--policy", default=None,
                        choices=EXCLUSIVE_LOSS_POLICIES,
                        help="what to do when a dead node held the only "
                        "current copy of a page")
    # inline rules
    parser.add_argument("--drop", action="append", default=[],
                        metavar="MSG_TYPE",
                        help="drop the first message of this type "
                        "(repeatable)")
    parser.add_argument("--drop-nth", type=int, default=1,
                        help="which match the --drop rules fire on")
    parser.add_argument("--delay", action="append", default=[],
                        metavar="MSG_TYPE:US",
                        help="delay the first message of this type by US "
                        "microseconds (repeatable)")
    parser.add_argument("--duplicate", action="append", default=[],
                        metavar="MSG_TYPE",
                        help="duplicate the first message of this type")
    parser.add_argument("--degrade", type=float, default=None, metavar="FACTOR",
                        help="divide link bandwidth by FACTOR for every "
                        "delivery")
    parser.add_argument("--crash-node", type=int, default=None,
                        help="fail-stop this node")
    parser.add_argument("--crash-at", type=float, default=None, metavar="US",
                        help="sim time of the --crash-node fail-stop")
    return parser


def _build_scenario(ns: argparse.Namespace) -> Optional[ChaosScenario]:
    scenario = (ChaosScenario.from_file(ns.scenario)
                if ns.scenario else ChaosScenario())
    for msg_type in ns.drop:
        scenario.rules.append(
            ChaosRule(kind="drop", msg_type=msg_type, nth=ns.drop_nth))
    for spec in ns.delay:
        msg_type, _, us = spec.partition(":")
        scenario.rules.append(ChaosRule(
            kind="delay", msg_type=msg_type, nth=1,
            delay_us=float(us or "0")))
    for msg_type in ns.duplicate:
        scenario.rules.append(
            ChaosRule(kind="duplicate", msg_type=msg_type, nth=1))
    if ns.degrade is not None:
        scenario.rules.append(
            ChaosRule(kind="degrade", factor=ns.degrade, times=None))
    if ns.crash_node is not None:
        scenario.rules.append(
            ChaosRule(kind="crash", node=ns.crash_node, at_us=ns.crash_at))
    elif ns.crash_at is not None:
        raise ChaosError("--crash-at needs --crash-node")
    if ns.policy is not None:
        scenario.on_exclusive_loss = ns.policy
    if ns.seed is not None:
        scenario.seed = ns.seed
    return scenario.validate()


def _print_report(report: Optional[dict]) -> None:
    if report is None:
        return
    counters = {k: v for k, v in report.items() if k != "events"}
    print("chaos report:", json.dumps(counters, sort_keys=True))
    for line in report["events"]:
        print("  " + line)


def main(argv: Optional[List[str]] = None) -> int:
    ns = _build_parser().parse_args(argv)
    try:
        scenario = _build_scenario(ns)
    except ChaosError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    if ns.app == "micro":
        result = run_pagefault_micro(
            scenario,
            directory=ns.directory,
            sanitize=not ns.no_sanitize,
            seed=ns.seed,
            iters=ns.iters,
        )
        ok = result["ok"]
        print(f"pagefault micro: value={result['value']} "
              f"expected={result['expected']} "
              f"elapsed={result['elapsed_us']:.1f}us "
              f"{'OK' if ok else 'WRONG'}")
        _print_report(result["report"])
        return 0 if ok else 1

    app = _ALIASES.get(ns.app.lower(), ns.app.upper())
    try:
        outcome = run_under_chaos(
            app,
            variant=ns.variant,
            num_nodes=ns.nodes,
            scale=ns.scale,
            scenario=scenario,
            directory=ns.directory,
            sanitize=not ns.no_sanitize,
            seed=ns.seed,
            max_restarts=ns.max_restarts,
        )
    except NodeFailedError as err:
        print(f"{app}: did not survive the scenario: {err}", file=sys.stderr)
        controller = getattr(scenario, "last_controller", None)
        _print_report(controller.report() if controller else None)
        return 1
    for line in outcome.attempts:
        print(f"{app}: {line}")
    result = outcome.result
    print(f"{app} {ns.variant} nodes={ns.nodes}: "
          f"elapsed={result.elapsed_us:.1f}us "
          f"correct={result.correct} "
          f"({len(outcome.attempts)} attempt(s))")
    _print_report(outcome.report)
    return 0 if outcome.correct else 1


if __name__ == "__main__":
    sys.exit(main())
