"""Fail-stop recovery: reclaiming what a dead node held.

Runs at the origin when the failure detector declares a node dead (lease
expiry or retry exhaustion).  For each process the dead node touched:

* **Directory ownership** is reclaimed.  Shared copies at the dead node
  are simply dropped (re-seating the page at its home if the dead node was
  the last reader).  A page held *exclusively* by the dead node lost its
  only current copy: under the ``rollback`` policy it is restored from the
  last downgrade-flushed copy at its home (the lost versions are logged);
  under the default ``fail`` policy — or when no flushed copy exists — the
  process is failed with a precise diagnostic.
* **Threads** that were executing on the dead node are marked dead and
  their sim processes failed, so joiners observe :class:`NodeFailedError`
  instead of hanging.
* **Futex waiters** belonging to dead threads are dequeued; when the
  process is failed, *every* waiter is errored out (a lock whose holder
  died will never be released).
* The dead node's per-process state and worker bookkeeping are dropped, so
  quiescent invariant checks stay meaningful after recovery.

The walk mutates directory entries that may concurrently be mid-operation
(``busy``): that is deliberate — the in-flight operation's request toward
the dead node has already been failed by the controller, and the
revocation path treats an already-reclaimed loser as acknowledged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.errors import NodeFailedError
from repro.memory.page_table import PageState
from repro.obs.tracing import maybe_span

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.controller import ChaosController
    from repro.core.process import DexProcess


def recover_process(
    controller: "ChaosController", proc: "DexProcess", node: int, reason: str
) -> None:
    """Reclaim everything *proc* had at the failed *node*."""
    directory = proc.protocol.directory
    policy = controller.scenario.on_exclusive_loss
    sanitizer = proc.sanitizer
    fatal: List[str] = []
    recovered: List[str] = []
    shared_dropped = 0
    exclusive_rolled_back = 0

    with maybe_span(
        proc.obs, "chaos.recover", node=proc.origin, failed_node=node,
    ):
        hosted = directory.entries_hosted(node)
        if hosted:
            fatal.append(
                f"{hosted} directory entries were homed at node {node}; "
                "their ownership metadata died with it"
            )

        for vpn, entry in list(directory.entries()):
            home = directory.home(vpn)
            if home == node or node not in entry.owners:
                continue
            home_pte = proc.node_state(home).page_table.lookup(vpn)
            if entry.writer == node:
                lost_versions = entry.data_version - (
                    home_pte.data_version if home_pte is not None else 0
                )
                detail = (
                    f"page {vpn:#x} was exclusive at node {node} at version "
                    f"{entry.data_version}"
                )
                if home_pte is None:
                    fatal.append(
                        detail + "; no downgrade-flushed copy exists at its "
                        f"home (node {home}) — contents unrecoverable"
                    )
                    directory.drop_entry(vpn)
                    continue
                # restore the last downgrade-flushed copy at the home
                entry.data_version = home_pte.data_version
                entry.owners = {home}
                entry.writer = None
                home_pte.state = PageState.SHARED
                if sanitizer is not None:
                    sanitizer.on_revoke(vpn, node, downgrade=False, requester=home)
                    sanitizer.on_grant(vpn, home, write=False)
                exclusive_rolled_back += 1
                note = (
                    detail + f"; restored version {home_pte.data_version} from "
                    f"the last flush at node {home} ({lost_versions} "
                    "version(s) of writes lost)"
                )
                if policy == "rollback":
                    recovered.append(note)
                else:
                    fatal.append(note + " [on_exclusive_loss=fail]")
            else:
                entry.owners.discard(node)
                shared_dropped += 1
                if sanitizer is not None:
                    sanitizer.on_revoke(vpn, node, downgrade=False, requester=home)
                if not entry.owners:
                    if home_pte is not None and home_pte.data_version == entry.data_version:
                        entry.owners = {home}
                        entry.writer = None
                        home_pte.state = PageState.SHARED
                        if sanitizer is not None:
                            sanitizer.on_grant(vpn, home, write=False)
                    else:
                        fatal.append(
                            f"page {vpn:#x}: node {node} held the only reader "
                            f"copy and the home copy is stale — contents "
                            "unrecoverable"
                        )
                        directory.drop_entry(vpn)

        # threads that were executing on the dead node
        dead_threads = [
            t for t in proc.threads if t.alive and t.current_node == node
        ]
        for thread in dead_threads:
            diag = (
                f"thread {thread.name} (tid {thread.tid}) was running on "
                f"node {node} when it failed ({reason})"
            )
            thread.failed = diag
            thread.sim_process.fail(NodeFailedError(node, diag))
            if proc.deadlocks is not None:
                proc.deadlocks.on_thread_dead(thread.tid)

        exc = NodeFailedError(node, reason)
        proc.futex.drop_waiters({t.tid for t in dead_threads}, exc)
        if dead_threads:
            # the thread set is broken: a wake a surviving waiter counts on
            # (a barrier arrival, a mutex release) may never come, so every
            # pending waiter errors out and future waits raise — the run
            # fails with the diagnostic rather than hanging (the harness
            # restart policy then re-runs it on a fresh cluster)
            proc.futex.fail_all(exc)

        # worker + per-node state bookkeeping (after the walk: dropping the
        # state also drops any directory shard the dead node hosted)
        proc.nodes_with_worker.discard(node)
        proc.worker_ready.pop(node, None)
        proc.drop_node_state(node)
        if sanitizer is not None:
            sanitizer.on_node_dead(node)

        if dead_threads:
            # thread death is surfaced to joiners (sim_process.fail above),
            # not escalated to process failure: surviving threads continue
            controller._log(
                f"{proc.name}: {len(dead_threads)} migrated thread(s) died "
                f"with node {node}: " + ", ".join(t.name for t in dead_threads)
            )

        summary = (
            f"reclaimed from node {node}: {shared_dropped} shared cop(ies) "
            f"dropped, {exclusive_rolled_back} exclusive page(s) rolled back"
        )
        controller._log(f"{proc.name}: {summary}")
        for note in recovered:
            controller._log(f"{proc.name}: recovered: {note}")

        if fatal:
            diagnostic = f"{reason}; " + "; ".join(fatal)
            proc.failed = NodeFailedError(node, diagnostic)
            controller._log(f"{proc.name}: FAILED: {diagnostic}")
            # every remaining waiter errors out rather than hanging on a
            # wake that can no longer come
            proc.futex.fail_all(proc.failed)
