"""Bounded history rings: the crash flight recorder and the DexScope
time-series ring.

:class:`SeriesRing` is the storage behind every DexScope utilization
series (``repro.obs.scope``): a fixed-capacity list of ``(t, value)``
points that *decimates* instead of truncating — when full, adjacent
points merge pairwise and the accept stride doubles, so the same buffer
always covers the whole run at the finest resolution that fits.  It is
the slice-ring decay idea of the lens's :class:`SlidingWindow`, applied
to an ever-growing run instead of a fixed window.

The rest of this module is the crash flight recorder: fixed-size
per-node rings of recent spans and protocol messages, dumped as a
Perfetto-loadable snapshot on failure.

The recorder is a tracer sink (see :meth:`repro.obs.tracing.Tracer.add_sink`):
``on_span_close`` appends each closed span to its node's ring and
``on_message`` records a compact summary of every traced outbound message.
Rings are ``collections.deque(maxlen=...)`` — O(1) append, fixed memory,
the tail of history falls off the far end — so the recorder's cost and
footprint are independent of run length.

A dump combines three kinds of evidence:

* the ring spans (recent completed work, per node),
* every span still *open* at dump time (a deadlocked thread's blocked
  span never closes — the rings alone would miss the most important
  evidence), synthetically closed at the dump timestamp and marked
  ``unfinished`` in its args, and
* the message ring, rendered as instant events on a per-node lane.

The snapshot file is Chrome trace-event JSON (load at ui.perfetto.dev)
with extra top-level keys (``format``/``reason``/``spans``) that Perfetto
ignores but :func:`load_snapshot` round-trips, so the export-side tree
validators run on crash dumps unchanged.

``DexCluster.simulate`` triggers the dump automatically for any
:class:`~repro.core.errors.DexError` — deadlocks, sanitizer violations,
unrecovered chaos crashes — when the lens is on (``DEX_LENS=1``).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Tuple

from repro.obs.export import chrome_trace
from repro.obs.tracing import Span, Tracer

__all__ = ["FlightRecorder", "SeriesRing", "load_snapshot"]

SNAPSHOT_FORMAT = "dex-flightrec-v1"


class SeriesRing:
    """A bounded ``(t, value)`` time series with pairwise decay.

    Points arrive on the sampler's grid.  ``stride`` raw points are
    pre-aggregated into one stored point; when the store reaches
    *capacity*, adjacent stored points merge pairwise and the stride
    doubles.  Memory is therefore fixed while coverage is always the full
    run, at resolution ``stride * base_interval``.

    ``agg`` picks the aggregation: ``"mean"`` for level gauges (busy
    fraction, queue depth), ``"max"`` for spikes, ``"sum"`` for per-
    interval increments (rates), ``"last"`` for cumulative counters.
    """

    __slots__ = (
        "capacity", "agg", "stride",
        "_t", "_v", "_acc_t", "_acc_v", "_acc_n",
    )

    def __init__(self, capacity: int = 512, agg: str = "mean"):
        if capacity < 4:
            raise ValueError(f"series capacity must be >= 4, got {capacity}")
        if agg not in ("mean", "max", "sum", "last"):
            raise ValueError(f"unknown aggregation {agg!r}")
        self.capacity = capacity
        self.agg = agg
        #: raw samples folded into each stored point (doubles on overflow)
        self.stride = 1
        self._t: List[float] = []
        self._v: List[float] = []
        self._acc_t = 0.0
        self._acc_v = 0.0
        self._acc_n = 0

    def __len__(self) -> int:
        return len(self._t)

    def push(self, t: float, value: float) -> None:
        if self._acc_n == 0:
            self._acc_t = t
            self._acc_v = value
        elif self.agg == "max":
            if value > self._acc_v:
                self._acc_v = value
        elif self.agg == "last":
            self._acc_v = value
        else:  # mean and sum both accumulate; mean divides on store
            self._acc_v += value
        self._acc_n += 1
        if self._acc_n >= self.stride:
            value = (
                self._acc_v / self._acc_n if self.agg == "mean" else self._acc_v
            )
            self._t.append(self._acc_t)
            self._v.append(value)
            self._acc_n = 0
            if len(self._t) >= self.capacity:
                self._decimate()

    def _combine(self, a: float, b: float) -> float:
        if self.agg == "mean":
            return (a + b) / 2.0
        if self.agg == "max":
            return a if a > b else b
        if self.agg == "sum":
            return a + b
        return b  # last

    def _decimate(self) -> None:
        t, v = self._t, self._v
        half_t: List[float] = []
        half_v: List[float] = []
        i, n = 0, len(t)
        while i + 1 < n:
            half_t.append(t[i])
            half_v.append(self._combine(v[i], v[i + 1]))
            i += 2
        if i < n:  # odd tail point survives unmerged
            half_t.append(t[i])
            half_v.append(v[i])
        self._t, self._v = half_t, half_v
        self.stride *= 2

    def points(self) -> List[Tuple[float, float]]:
        """Stored points, oldest first (the partial accumulator included
        so the series never lags the last firing)."""
        out = list(zip(self._t, self._v))
        if self._acc_n:
            value = (
                self._acc_v / self._acc_n if self.agg == "mean" else self._acc_v
            )
            out.append((self._acc_t, value))
        return out

    def to_dict(self) -> Dict[str, Any]:
        pts = self.points()
        return {
            "agg": self.agg,
            "stride": self.stride,
            "t": [round(t, 3) for t, _ in pts],
            "v": [round(v, 6) for _, v in pts],
        }


class FlightRecorder:
    """Per-node bounded history of closed spans and outbound messages."""

    def __init__(
        self,
        tracer: Tracer,
        *,
        num_nodes: int,
        ring_spans: int = 4096,
        ring_msgs: int = 2048,
    ):
        self.tracer = tracer
        self.num_nodes = num_nodes
        self.ring_spans = ring_spans
        self.ring_msgs = ring_msgs
        # node -1 (unbound service work) gets its own ring at index num_nodes
        self._spans: List[deque] = [
            deque(maxlen=ring_spans) for _ in range(num_nodes + 1)
        ]
        self._msgs: List[deque] = [
            deque(maxlen=ring_msgs) for _ in range(num_nodes + 1)
        ]
        self.spans_seen = 0
        self.msgs_seen = 0

    def _ring_index(self, node: int) -> int:
        return node if 0 <= node < self.num_nodes else self.num_nodes

    # -- sink protocol -------------------------------------------------------

    def on_span_close(self, span: Span) -> None:
        self._spans[self._ring_index(span.node)].append(span)
        self.spans_seen += 1

    def on_message(self, now: float, msg) -> None:
        self._msgs[self._ring_index(msg.src)].append((
            now, msg.msg_type, msg.src, msg.dst, msg.trace_id, msg.parent_span,
        ))
        self.msgs_seen += 1

    # -- snapshot ------------------------------------------------------------

    def snapshot_spans(self) -> List[Span]:
        """Ring contents plus currently-open spans, deduped by span id (an
        adopted root can close into the ring between dump decision and
        write), oldest first."""
        seen: Dict[int, Span] = {}
        for ring in self._spans:
            for span in ring:
                seen[span.span_id] = span
        now = self.tracer.engine.now
        for span in self.tracer.open_spans():
            if span.span_id in seen:
                continue
            attrs = dict(span.attrs)
            attrs["unfinished"] = True
            seen[span.span_id] = Span(
                span.name, span.span_id, span.trace_id, span.parent_id,
                span.node, span.tid, span.start_us, now, attrs,
            )
        return [seen[k] for k in sorted(seen)]

    def snapshot_messages(self) -> List[Tuple]:
        out: List[Tuple] = []
        for ring in self._msgs:
            out.extend(ring)
        out.sort(key=lambda rec: rec[0])
        return out

    def dump(self, path: str, *, reason: str = "") -> Dict[str, Any]:
        """Write the snapshot to *path*; returns the document."""
        spans = self.snapshot_spans()
        doc = chrome_trace(spans, dropped=self.tracer.dropped)
        for now, msg_type, src, dst, trace_id, parent_span in self.snapshot_messages():
            doc["traceEvents"].append({
                "name": f"{msg_type} ->n{dst}",
                "cat": "msg",
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": src if src >= 0 else 0,
                "tid": 999,  # dedicated message lane, below the service lanes
                "ts": now,
                "args": {"trace": trace_id, "parent_span": parent_span},
            })
        doc["format"] = SNAPSHOT_FORMAT
        doc["reason"] = reason
        doc["spans"] = [s.to_dict() for s in spans]
        doc["otherData"]["reason"] = reason
        doc["otherData"]["spans_in_rings"] = sum(len(r) for r in self._spans)
        doc["otherData"]["spans_seen"] = self.spans_seen
        doc["otherData"]["msgs_seen"] = self.msgs_seen
        with open(path, "w") as fh:
            json.dump(doc, fh)
        return doc


def load_snapshot(path: str) -> Tuple[List[Span], Dict[str, Any]]:
    """Load a flight-recorder snapshot; returns ``(spans, meta)`` where
    meta carries ``format``/``reason`` and the Perfetto ``otherData``.
    Raises ``ValueError`` for files that aren't flight-recorder dumps."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"{path!r} is not a flight-recorder snapshot"
            f" (format={doc.get('format')!r})"
        )
    spans = [Span.from_dict(d) for d in doc.get("spans", [])]
    meta = {
        "format": doc["format"],
        "reason": doc.get("reason", ""),
        "otherData": doc.get("otherData", {}),
        "events": len(doc.get("traceEvents", [])),
    }
    return spans, meta
